"""Unit tests for repro._types."""

import numpy as np
import pytest

from repro._types import (
    EMPTY_KEY,
    MAX_KEY,
    NULL_VALUE,
    OpKind,
    is_query_kind_array,
    is_update_kind_array,
)


class TestOpKind:
    def test_update_class_members(self):
        assert OpKind.UPDATE.is_update_class
        assert OpKind.INSERT.is_update_class
        assert OpKind.DELETE.is_update_class
        assert not OpKind.QUERY.is_update_class
        assert not OpKind.RANGE.is_update_class

    def test_query_class_members(self):
        assert OpKind.QUERY.is_query_class
        assert OpKind.RANGE.is_query_class
        assert not OpKind.UPDATE.is_query_class

    def test_classes_partition_all_kinds(self):
        for kind in OpKind:
            assert kind.is_update_class != kind.is_query_class

    def test_int_values_are_stable(self):
        # batch encodings depend on these exact values
        assert OpKind.QUERY == 0
        assert OpKind.UPDATE == 1
        assert OpKind.INSERT == 2
        assert OpKind.DELETE == 3
        assert OpKind.RANGE == 4


class TestKindArrays:
    def test_vectorized_update_class_matches_scalar(self):
        kinds = np.array([k.value for k in OpKind], dtype=np.int8)
        vec = is_update_kind_array(kinds)
        for i, kind in enumerate(OpKind):
            assert vec[i] == kind.is_update_class

    def test_vectorized_query_class_matches_scalar(self):
        kinds = np.array([k.value for k in OpKind], dtype=np.int8)
        vec = is_query_kind_array(kinds)
        for i, kind in enumerate(OpKind):
            assert vec[i] == kind.is_query_class

    def test_empty_array(self):
        kinds = np.zeros(0, dtype=np.int8)
        assert is_update_kind_array(kinds).size == 0
        assert is_query_kind_array(kinds).size == 0


class TestSentinels:
    def test_empty_key_sorts_after_max_key(self):
        assert EMPTY_KEY > MAX_KEY

    def test_null_value_is_negative(self):
        # workloads only generate positive values, so NULL can't collide
        assert NULL_VALUE < 0

    def test_empty_key_is_int64_max(self):
        assert EMPTY_KEY == np.iinfo(np.int64).max

"""End-to-end property test: Eirene on a real tree is linearizable.

Unlike tests/test_combining.py (which checks the combining *logic* against
a dict model), this drives the full EireneTree — real B+tree, real kernels,
real RESULT_CAL — under hypothesis-generated batches, on both engines.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    DeviceConfig,
    OpKind,
    TreeConfig,
    build_key_pool,
    check_linearizable,
    make_system,
)
from repro.lincheck import SequentialReference
from repro.workloads import RequestBatch

KEY_SPACE = 48


@st.composite
def batches(draw):
    n = draw(st.integers(1, 64))
    ops = []
    for _ in range(n):
        kind = draw(st.sampled_from(list(OpKind)))
        key = draw(st.integers(0, KEY_SPACE - 1))
        if kind in (OpKind.UPDATE, OpKind.INSERT):
            ops.append((kind, key, draw(st.integers(1, 500))))
        elif kind == OpKind.RANGE:
            ops.append((kind, key, draw(st.integers(key, KEY_SPACE + 4))))
        else:
            ops.append((kind, key))
    return ops


def fresh_system():
    keys = np.arange(0, KEY_SPACE, 3, dtype=np.int64)
    values = keys * 7 + 1
    sys_ = make_system(
        "eirene", keys, values,
        tree_config=TreeConfig(fanout=4, arena_headroom=8.0),
        device=DeviceConfig(num_sms=2),
    )
    return sys_, SequentialReference(keys, values)


class TestEireneEndToEnd:
    @given(batches())
    @settings(max_examples=50, deadline=None)
    def test_vector_engine_linearizable(self, ops):
        sys_, ref = fresh_system()
        batch = RequestBatch.from_ops(ops)
        expected = ref.execute(batch)
        out = sys_.process_batch(batch, engine="vector")
        rep = check_linearizable(
            batch, out.results, expected,
            got_items=sys_.tree.items(), expected_items=ref.items(),
        )
        assert rep.ok, rep.describe(batch)
        sys_.tree.validate()

    @given(batches())
    @settings(max_examples=25, deadline=None)
    def test_simt_engine_linearizable(self, ops):
        sys_, ref = fresh_system()
        batch = RequestBatch.from_ops(ops)
        expected = ref.execute(batch)
        out = sys_.process_batch(batch, engine="simt")
        rep = check_linearizable(
            batch, out.results, expected,
            got_items=sys_.tree.items(), expected_items=ref.items(),
        )
        assert rep.ok, rep.describe(batch)
        sys_.tree.validate()

    @given(st.lists(batches(), min_size=2, max_size=3))
    @settings(max_examples=15, deadline=None)
    def test_vector_engine_multibatch(self, batch_ops):
        sys_, ref = fresh_system()
        for ops in batch_ops:
            batch = RequestBatch.from_ops(ops)
            expected = ref.execute(batch)
            out = sys_.process_batch(batch, engine="vector")
            rep = check_linearizable(batch, out.results, expected)
            assert rep.ok, rep.describe(batch)
        gk, gv = sys_.tree.items()
        ek, ev = ref.items()
        assert np.array_equal(gk, ek) and np.array_equal(gv, ev)

    def test_cross_engine_results_agree(self):
        """Same batch, two engines, two fresh trees: identical results
        (both are linearizable, so both must equal the reference)."""
        rng = np.random.default_rng(123)
        ops = []
        for _ in range(200):
            kind = OpKind(int(rng.integers(0, 5)))
            key = int(rng.integers(0, KEY_SPACE))
            if kind in (OpKind.UPDATE, OpKind.INSERT):
                ops.append((kind, key, int(rng.integers(1, 500))))
            elif kind == OpKind.RANGE:
                ops.append((kind, key, key + int(rng.integers(0, 6))))
            else:
                ops.append((kind, key))
        batch = RequestBatch.from_ops(ops)
        sys_v, _ = fresh_system()
        sys_s, _ = fresh_system()
        out_v = sys_v.process_batch(batch, engine="vector")
        out_s = sys_s.process_batch(batch, engine="simt")
        assert np.array_equal(out_v.results.values, out_s.results.values)
        for i in np.flatnonzero(batch.kinds == OpKind.RANGE):
            kv, vv = out_v.results.range_result(int(i))
            ks, vs = out_s.results.range_result(int(i))
            assert np.array_equal(kv, ks) and np.array_equal(vv, vs)

"""Tests for the factory helpers and the public package surface."""

import numpy as np
import pytest

import repro
from repro import (
    DeviceConfig,
    EireneTree,
    LockGBTree,
    NoCCGBTree,
    StmGBTree,
    TreeConfig,
    build_key_pool,
    build_tree,
    make_system,
)


class TestBuildTree:
    def test_with_stm_tables(self, rng):
        keys, values = build_key_pool(256, rng)
        tree, region, smo = build_tree(keys, values)
        assert region is not None
        tree.validate()
        # metadata tables cover every node word
        assert region.nwords == tree.layout.arena_words(tree.max_nodes)
        assert smo > 0

    def test_without_stm_tables(self, rng):
        keys, values = build_key_pool(256, rng)
        tree, region, smo = build_tree(keys, values, with_stm_tables=False)
        assert region is None
        tree.validate()


class TestMakeSystem:
    @pytest.mark.parametrize(
        "name,cls",
        [
            ("nocc", NoCCGBTree),
            ("stm", StmGBTree),
            ("lock", LockGBTree),
            ("eirene", EireneTree),
        ],
    )
    def test_builds_correct_class(self, name, cls, rng):
        keys, values = build_key_pool(128, rng)
        sys_ = make_system(name, keys, values, tree_config=TreeConfig(fanout=8))
        assert isinstance(sys_, cls)
        sys_.tree.validate()

    def test_unknown_name_rejected(self, rng):
        keys, values = build_key_pool(64, rng)
        with pytest.raises(ValueError):
            make_system("btrfs", keys, values)

    def test_device_config_propagates(self, rng):
        keys, values = build_key_pool(64, rng)
        dev = DeviceConfig(num_sms=2)
        sys_ = make_system("eirene", keys, values, device=dev)
        assert sys_.device.num_sms == 2

    def test_case_insensitive(self, rng):
        keys, values = build_key_pool(64, rng)
        assert isinstance(make_system("EIRENE", keys, values), EireneTree)


class TestPublicApi:
    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        assert repro.__version__

    def test_quickstart_docstring_flow(self, rng):
        """The README/docstring quickstart must actually run."""
        keys, values = build_key_pool(2**10, rng)
        eirene = make_system("eirene", keys, values, tree_config=TreeConfig(fanout=8))
        batch = repro.YcsbWorkload(pool=keys).generate(512, rng)
        outcome = eirene.process_batch(batch)
        assert outcome.throughput.per_second > 0
        assert "Mreq/s" in outcome.throughput.describe()

"""CLI smoke tests and concurrency invariants under the SIMT engine."""

import numpy as np
import pytest

from repro import (
    DeviceConfig,
    TreeConfig,
    YcsbMix,
    YcsbWorkload,
    build_key_pool,
    make_system,
)
from repro.harness.__main__ import RUNNERS, build_parser, main
from repro.stm import FREE


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig07" in out and "ablation-skew" in out

    def test_parser_rejects_unknown_target(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig99"])

    def test_runner_table_covers_every_paper_figure(self):
        for fig in ("fig01", "fig02", "fig07", "fig08", "fig09", "fig10",
                    "fig11", "fig12", "fig13"):
            assert fig in RUNNERS

    def test_small_figure_run(self, capsys):
        code = main(["fig01", "--tree-size", "10", "--batch-size", "9",
                     "--batches", "1", "--fanout", "16", "--sms", "4"])
        assert code == 0
        assert "Fig. 1" in capsys.readouterr().out


class TestConcurrencyInvariants:
    """Global invariants that must hold after any SIMT batch."""

    def _run(self, name, mix, rng):
        keys, values = build_key_pool(512, rng)
        sys_ = make_system(
            name, keys, values,
            tree_config=TreeConfig(fanout=8, arena_headroom=4.0),
            device=DeviceConfig(num_sms=4),
        )
        batch = YcsbWorkload(pool=keys, mix=mix).generate(384, rng)
        out = sys_.process_batch(batch, engine="simt")
        return sys_, out

    def test_lock_acquires_match_releases(self, rng):
        sys_, _ = self._run("lock", YcsbMix(query=0.6, update=0.4), rng)
        stats = sys_.latches.stats
        assert stats.acquires == stats.releases
        # no latch word left held anywhere in the node arena
        from repro.btree.layout import OFF_LOCK

        lay = sys_.tree.layout
        held = [
            n for n in range(sys_.tree.node_count)
            if sys_.tree.arena.data[lay.addr(n, OFF_LOCK)] != FREE
        ]
        assert held == []

    def test_stm_ownership_fully_released(self, rng):
        sys_, _ = self._run("stm", YcsbMix(query=0.5, update=0.3, insert=0.2), rng)
        region = sys_.stm.region
        owners = sys_.tree.arena.data[
            region.owner_base : region.owner_base + region.nwords
        ]
        assert np.count_nonzero(owners) == 0
        assert sys_.stm.stats.begins == sys_.stm.stats.commits + sys_.stm.stats.aborts

    def test_eirene_smo_latch_released(self, rng):
        sys_, _ = self._run("eirene", YcsbMix(query=0.4, update=0.2, insert=0.4), rng)
        assert sys_.tree.arena.data[sys_.smo_lock_addr] == FREE
        region = sys_.stm.region
        owners = sys_.tree.arena.data[
            region.owner_base : region.owner_base + region.nwords
        ]
        assert np.count_nonzero(owners) == 0

    def test_every_request_retires_exactly_once(self, rng):
        _, out = self._run("eirene", YcsbMix(query=0.9, update=0.1), rng)
        # every issued request got a finish cycle; unissued stay NaN
        finished = np.isfinite(out.counters.finish_cycle)
        assert finished.sum() == out.extras["plan"].n_runs

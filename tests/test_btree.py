"""Unit + property tests for the B+tree substrate."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro._types import EMPTY_KEY, NO_NODE, NULL_VALUE
from repro.btree import (
    BPlusTree,
    NodeLayout,
    batch_find_leaf,
    batch_horizontal_find_leaf,
    batch_leaf_lookup,
    leaf_max_keys,
    leaf_rf_values,
)
from repro.btree.layout import HEADER_WORDS, OFF_KEYS
from repro.config import TreeConfig
from repro.errors import TreeError
from repro.memory import MemoryArena


def build(n=500, fanout=8, fill=0.7, seed=0):
    rng = np.random.default_rng(seed)
    keys = np.sort(rng.choice(n * 10, size=n, replace=False)).astype(np.int64)
    values = keys * 2 + 1
    tree = BPlusTree.build(keys, values, TreeConfig(fanout=fanout), fill_factor=fill)
    return tree, keys, values


class TestLayout:
    def test_node_words(self):
        lay = NodeLayout(fanout=16)
        assert lay.node_words == HEADER_WORDS + 16 + 17

    def test_stride_is_segment_multiple(self):
        lay = NodeLayout(fanout=16)
        assert lay.stride % lay.words_per_segment == 0
        assert lay.stride >= lay.node_words

    def test_addresses_do_not_overlap(self):
        lay = NodeLayout(fanout=8)
        assert lay.node_base(1) >= lay.node_base(0) + lay.node_words
        assert lay.key_addr(0, 0) == lay.node_base(0) + OFF_KEYS

    def test_base_offset_applies(self):
        lay = NodeLayout(fanout=8, base=100)
        assert lay.node_base(0) == 100


class TestBulkBuild:
    def test_contents_roundtrip(self):
        tree, keys, values = build()
        ks, vs = tree.items()
        assert np.array_equal(ks, keys)
        assert np.array_equal(vs, values)

    def test_validates(self):
        tree, _, _ = build()
        tree.validate()

    def test_len(self):
        tree, keys, _ = build(n=321)
        assert len(tree) == 321

    def test_unsorted_input_is_sorted(self):
        keys = np.array([5, 1, 9, 3], dtype=np.int64)
        vals = np.array([50, 10, 90, 30], dtype=np.int64)
        tree = BPlusTree.build(keys, vals, TreeConfig(fanout=4))
        ks, vs = tree.items()
        assert np.array_equal(ks, [1, 3, 5, 9])
        assert np.array_equal(vs, [10, 30, 50, 90])

    def test_duplicate_keys_rejected(self):
        with pytest.raises(TreeError):
            BPlusTree.build(np.array([1, 1]), np.array([2, 3]))

    def test_empty_rejected(self):
        with pytest.raises(TreeError):
            BPlusTree.build(np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64))

    def test_single_key_tree(self):
        tree = BPlusTree.build(np.array([42]), np.array([1]))
        assert tree.height == 1
        assert tree.search(42) == 1
        tree.validate()

    def test_leaf_chain_is_complete(self):
        tree, keys, _ = build(n=300, fanout=8)
        leaves = tree.leaf_ids()
        total = sum(
            int(tree.arena.data[tree.layout.addr(leaf, 0)]) for leaf in leaves
        )
        assert total == 300

    def test_height_grows_with_size(self):
        small, _, _ = build(n=20, fanout=8)
        large, _, _ = build(n=5000, fanout=8)
        assert large.height > small.height

    def test_fill_factor_controls_leaf_count(self):
        packed, _, _ = build(n=1000, fill=1.0)
        loose, _, _ = build(n=1000, fill=0.5)
        assert len(loose.leaf_ids()) > len(packed.leaf_ids())

    def test_external_arena_placement(self):
        arena = MemoryArena(200_000)
        arena.alloc(100)
        keys = np.arange(100, dtype=np.int64)
        tree = BPlusTree.build(keys, keys, TreeConfig(fanout=8), arena=arena)
        assert tree.layout.base >= 100
        tree.validate()

    def test_plan_max_nodes_bounds_build(self):
        cfg = TreeConfig(fanout=8)
        for n in (1, 7, 64, 999):
            planned = BPlusTree.plan_max_nodes(n, cfg)
            keys = np.arange(n, dtype=np.int64)
            tree = BPlusTree.build(keys, keys, cfg)
            assert tree.node_count <= planned


class TestSearch:
    def test_hits(self):
        tree, keys, values = build()
        for k, v in zip(keys[::37], values[::37], strict=True):
            assert tree.search(int(k)) == int(v)

    def test_misses(self):
        tree, keys, _ = build()
        present = set(int(k) for k in keys)
        miss = next(k for k in range(10_000) if k not in present)
        assert tree.search(miss) == NULL_VALUE

    def test_find_leaf_steps_equal_height(self):
        tree, keys, _ = build()
        _, steps = tree.find_leaf(int(keys[0]))
        assert steps == tree.height


class TestUpsert:
    def test_overwrite_returns_old(self):
        tree, keys, values = build()
        k = int(keys[10])
        assert tree.upsert(k, 777) == int(values[10])
        assert tree.search(k) == 777

    def test_fresh_insert_returns_null(self):
        tree, keys, _ = build()
        assert tree.upsert(4_999_999, 5) == NULL_VALUE
        assert tree.search(4_999_999) == 5

    def test_many_inserts_split_and_stay_valid(self):
        rng = np.random.default_rng(3)
        base = np.sort(rng.choice(2000, size=200, replace=False)).astype(np.int64)
        tree = BPlusTree.build(
            base, base * 2 + 1,
            TreeConfig(fanout=8, arena_headroom=6.0), fill_factor=1.0,
        )
        fresh = rng.choice(100_000, size=500, replace=False)
        for k in fresh:
            tree.upsert(int(k) + 10_000_000, int(k))
        tree.validate()
        for k in fresh[:50]:
            assert tree.search(int(k) + 10_000_000) == int(k)
        assert len(tree.split_events) > 0

    def test_root_split_grows_height(self):
        keys = np.arange(4, dtype=np.int64)
        tree = BPlusTree.build(keys, keys, TreeConfig(fanout=4, arena_headroom=40.0), fill_factor=1.0)
        h0 = tree.height
        for k in range(100, 160):
            tree.upsert(k, k)
        tree.validate()
        assert tree.height > h0

    def test_ascending_and_descending_insert_orders(self):
        for order in (1, -1):
            tree = BPlusTree.build(np.array([500_000]), np.array([0]), TreeConfig(fanout=4, arena_headroom=2500.0))
            for k in range(1000)[::order]:
                tree.upsert(k, k + 1)
            tree.validate()
            ks, vs = tree.items()
            assert np.array_equal(ks[:-1], np.arange(1000))

    def test_out_of_range_key_rejected(self):
        tree, _, _ = build()
        with pytest.raises(TreeError):
            tree.upsert(-5, 1)


class TestDelete:
    def test_delete_returns_old_value(self):
        tree, keys, values = build()
        k = int(keys[5])
        assert tree.delete(k) == int(values[5])
        assert tree.search(k) == NULL_VALUE

    def test_delete_missing_returns_null(self):
        tree, _, _ = build()
        assert tree.delete(99_999_999) == NULL_VALUE

    def test_delete_all_keys_of_a_leaf(self):
        tree, keys, _ = build(n=64, fanout=8)
        for k in keys[:10]:
            tree.delete(int(k))
        tree.validate()
        ks, _ = tree.items()
        assert ks.size == 54

    def test_delete_then_reinsert(self):
        tree, keys, _ = build()
        k = int(keys[7])
        tree.delete(k)
        tree.upsert(k, 123)
        assert tree.search(k) == 123
        tree.validate()


class TestRangeScan:
    def test_matches_reference(self):
        tree, keys, values = build()
        lo, hi = int(keys[50]), int(keys[80])
        ks, vs = tree.range_scan(lo, hi)
        ref = (keys >= lo) & (keys <= hi)
        assert np.array_equal(ks, keys[ref])
        assert np.array_equal(vs, values[ref])

    def test_empty_range(self):
        tree, _, _ = build()
        ks, _ = tree.range_scan(10, 5)
        assert ks.size == 0

    def test_range_beyond_max_key(self):
        tree, keys, _ = build()
        ks, _ = tree.range_scan(int(keys[-1]) + 1, int(keys[-1]) + 100)
        assert ks.size == 0

    def test_full_range(self):
        tree, keys, _ = build(n=100)
        ks, _ = tree.range_scan(0, int(keys[-1]))
        assert np.array_equal(ks, keys)


class TestRF:
    def test_rf_initialized_to_hop_leaf_min_key(self):
        tree, _, _ = build(n=400, fanout=8)
        leaves = tree.leaf_ids()
        hop = tree.height + 1
        rf = leaf_rf_values(tree, np.array(leaves))
        for i, leaf in enumerate(leaves):
            if i + hop < len(leaves):
                expected = int(tree.nodes.host_keys(leaves[i + hop])[0])
                assert rf[i] == expected
            else:
                assert rf[i] == EMPTY_KEY

    def test_update_rf_noop_for_short_walk(self):
        tree, _, _ = build(n=400, fanout=8)
        leaf = tree.leaf_ids()[0]
        before = int(leaf_rf_values(tree, np.array([leaf]))[0])
        tree.update_rf(leaf, tree.height)  # not longer than height
        assert int(leaf_rf_values(tree, np.array([leaf]))[0]) == before


class TestBatchTraversal:
    def test_batch_find_leaf_matches_scalar(self):
        tree, keys, _ = build(n=600)
        probe = keys[::7]
        leaves, ev = batch_find_leaf(tree, probe)
        for k, leaf in zip(probe, leaves, strict=True):
            assert tree.find_leaf(int(k))[0] == int(leaf)
        assert ev.vertical_steps == probe.size * tree.height

    def test_batch_leaf_lookup_matches_search(self):
        tree, keys, _ = build(n=600)
        rng = np.random.default_rng(9)
        probe = rng.integers(0, 6000, size=300)
        leaves, _ = batch_find_leaf(tree, probe)
        vals, _ = batch_leaf_lookup(tree, leaves, probe)
        ref = np.array([tree.search(int(k)) for k in probe])
        assert np.array_equal(vals, ref)

    def test_horizontal_walk_finds_same_leaves(self):
        tree, keys, _ = build(n=600)
        targets = np.sort(keys[::5])
        start = np.full(targets.size, tree.leaf_ids()[0], dtype=np.int64)
        leaves, steps, _ = batch_horizontal_find_leaf(tree, start, targets)
        ref, _ = batch_find_leaf(tree, targets)
        assert np.array_equal(leaves, ref)
        assert np.all(steps >= 1)

    def test_horizontal_walk_falls_back_when_key_precedes_start(self):
        tree, keys, _ = build(n=600)
        last_leaf = tree.leaf_ids()[-1]
        targets = keys[:4]
        start = np.full(4, last_leaf, dtype=np.int64)
        leaves, steps, _ = batch_horizontal_find_leaf(tree, start, targets)
        ref, _ = batch_find_leaf(tree, targets)
        assert np.array_equal(leaves, ref)
        assert np.all(steps == tree.height)

    def test_leaf_max_keys(self):
        tree, keys, _ = build(n=100, fanout=8)
        leaves = np.array(tree.leaf_ids())
        maxes = leaf_max_keys(tree, leaves)
        assert int(maxes[-1]) == int(keys.max())
        assert np.all(np.diff(maxes) > 0)

    def test_empty_batch(self):
        tree, _, _ = build(n=50)
        leaves, ev = batch_find_leaf(tree, np.zeros(0, dtype=np.int64))
        assert leaves.size == 0
        assert ev.requests == 0


class TestValidateDetectsCorruption:
    def test_unsorted_keys_detected(self):
        tree, _, _ = build(n=100)
        leaf = tree.leaf_ids()[0]
        hk = tree.nodes.host_keys(leaf)
        hk[0], hk[1] = hk[1].copy(), hk[0].copy()
        with pytest.raises(TreeError):
            tree.validate()

    def test_bad_count_detected(self):
        tree, _, _ = build(n=100)
        leaf = tree.leaf_ids()[0]
        tree.arena.data[tree.layout.addr(leaf, 0)] = tree.layout.fanout + 5
        with pytest.raises(TreeError):
            tree.validate()


@st.composite
def op_sequences(draw):
    ops = draw(
        st.lists(
            st.tuples(
                st.sampled_from(["upsert", "delete", "search"]),
                st.integers(0, 60),
                st.integers(1, 100),
            ),
            min_size=1,
            max_size=120,
        )
    )
    return ops


class TestTreeModelProperty:
    @given(op_sequences())
    @settings(max_examples=60, deadline=None)
    def test_matches_dict_model(self, ops):
        keys = np.arange(0, 60, 7, dtype=np.int64)
        tree = BPlusTree.build(keys, keys * 3, TreeConfig(fanout=4))
        model = {int(k): int(k) * 3 for k in keys}
        for op, key, val in ops:
            if op == "upsert":
                got = tree.upsert(key, val)
                assert got == model.get(key, NULL_VALUE)
                model[key] = val
            elif op == "delete":
                got = tree.delete(key)
                assert got == model.pop(key, NULL_VALUE)
            else:
                assert tree.search(key) == model.get(key, NULL_VALUE)
        tree.validate()
        ks, vs = tree.items()
        assert np.array_equal(ks, np.array(sorted(model), dtype=np.int64))
        assert [int(v) for v in vs] == [model[int(k)] for k in ks]

"""Unit tests for device-plane tree operations (thread-program generators)."""

import numpy as np
import pytest

from repro._types import NULL_VALUE
from repro.btree import BPlusTree
from repro.btree.device_ops import (
    d_find_leaf,
    d_find_leaf_stm,
    d_leaf_covers,
    d_leaf_delete_device,
    d_leaf_delete_stm,
    d_leaf_upsert_device,
    d_leaf_upsert_stm,
    d_search_leaf,
    d_search_leaf_stm,
    d_smo_upsert,
    d_walk_leaves,
    plan_upsert_nodes,
)
from repro.btree.layout import OFF_COUNT, OFF_VERSION
from repro.config import TreeConfig
from repro.simt.warp import run_subroutine
from repro.stm import DeviceStm, StmRegion


@pytest.fixture
def setup():
    rng = np.random.default_rng(4)
    keys = np.sort(rng.choice(5000, size=400, replace=False)).astype(np.int64)
    tree = BPlusTree.build(keys, keys * 2, TreeConfig(fanout=8))
    nwords = tree.layout.arena_words(tree.max_nodes)
    # STM tables + SMO word appended after the nodes
    from repro.memory import MemoryArena

    arena2 = MemoryArena(nwords * 3 + 64)
    arena2.data[: tree.arena.data.size] = tree.arena.data
    tree.arena = arena2
    tree.nodes.arena = arena2
    arena2.alloc(nwords)
    region = StmRegion(arena2, tree.layout.base, nwords)
    smo = arena2.alloc(1)
    return tree, keys, DeviceStm(arena2, region), smo


class TestUnprotectedOps:
    def test_d_find_leaf_matches_host(self, setup):
        tree, keys, _, _ = setup
        for k in keys[::29]:
            leaf, steps = run_subroutine(d_find_leaf(tree, int(k)), tree.arena)
            assert leaf == tree.find_leaf(int(k))[0]
            assert steps == tree.height

    def test_d_search_leaf(self, setup):
        tree, keys, _, _ = setup
        k = int(keys[13])
        leaf, _ = tree.find_leaf(k)
        val = run_subroutine(d_search_leaf(tree, leaf, k), tree.arena)
        assert val == k * 2

    def test_d_search_leaf_miss(self, setup):
        tree, keys, _, _ = setup
        missing = int(keys[0]) + 1
        if missing in set(int(x) for x in keys):
            missing += 1
        leaf, _ = tree.find_leaf(missing)
        assert run_subroutine(d_search_leaf(tree, leaf, missing), tree.arena) == NULL_VALUE

    def test_d_walk_leaves_from_first_leaf(self, setup):
        tree, keys, _, _ = setup
        first = tree.leaf_ids()[0]
        target = int(keys[200])
        leaf, steps = run_subroutine(d_walk_leaves(tree, first, target), tree.arena)
        assert leaf == tree.find_leaf(target)[0]
        assert steps >= 1

    def test_d_leaf_covers_true_for_own_leaf(self, setup):
        tree, keys, _, _ = setup
        k = int(keys[50])
        leaf, _ = tree.find_leaf(k)
        assert run_subroutine(d_leaf_covers(tree, leaf, k), tree.arena)

    def test_d_leaf_covers_false_after_split_moves_range(self, setup):
        tree, keys, _, _ = setup
        k = int(keys[50])
        leaf, _ = tree.find_leaf(k)
        # force the leaf to split by filling it
        base = int(keys[50])
        added = 0
        probe = base
        while len(tree.split_events) == 0 and added < 50:
            probe += 1
            if tree.search(probe) == NULL_VALUE:
                tree.upsert(probe, 1)
                added += 1
        # keys moved right: a stale reference for a moved key must report
        # not-covered
        moved = tree.split_events[0]
        right_first = int(tree.nodes.host_keys(moved.new_node)[0])
        assert not run_subroutine(
            d_leaf_covers(tree, moved.node, right_first), tree.arena
        )


class TestDeviceLeafMutations:
    def test_upsert_device_overwrites(self, setup):
        tree, keys, _, _ = setup
        k = int(keys[3])
        leaf, _ = tree.find_leaf(k)
        ver0 = int(tree.arena.data[tree.layout.addr(leaf, OFF_VERSION)])
        old, split = run_subroutine(
            d_leaf_upsert_device(tree, leaf, k, 555), tree.arena
        )
        assert (old, split) == (k * 2, False)
        assert tree.search(k) == 555
        assert int(tree.arena.data[tree.layout.addr(leaf, OFF_VERSION)]) == ver0 + 1

    def test_upsert_device_inserts_when_room(self, setup):
        tree, keys, _, _ = setup
        # find a leaf with room and a key that belongs in it
        for leaf in tree.leaf_ids():
            cnt = int(tree.arena.data[tree.layout.addr(leaf, OFF_COUNT)])
            if cnt < tree.layout.fanout:
                hk = tree.nodes.host_keys(leaf)
                candidate = int(hk[0]) + 1
                if tree.search(candidate) == NULL_VALUE and tree.find_leaf(candidate)[0] == leaf:
                    old, split = run_subroutine(
                        d_leaf_upsert_device(tree, leaf, candidate, 9), tree.arena
                    )
                    assert (old, split) == (NULL_VALUE, False)
                    assert tree.search(candidate) == 9
                    tree.validate()
                    return
        pytest.skip("no suitable leaf found")

    def test_upsert_device_reports_split_needed(self, setup):
        tree, keys, _, _ = setup
        # fill one leaf completely
        leaf = tree.leaf_ids()[0]
        hk = tree.nodes.host_keys(leaf)
        lo = int(hk[0])
        k = lo
        while int(tree.arena.data[tree.layout.addr(leaf, OFF_COUNT)]) < tree.layout.fanout:
            k += 1
            if tree.find_leaf(k)[0] == leaf and tree.search(k) == NULL_VALUE:
                tree.upsert(k, 1)
        # next absent key in this leaf's range must report needs-split
        k += 1
        while tree.search(k) != NULL_VALUE:
            k += 1
        if tree.find_leaf(k)[0] != leaf:
            pytest.skip("range exhausted")
        old, split = run_subroutine(d_leaf_upsert_device(tree, leaf, k, 1), tree.arena)
        assert split is True

    def test_delete_device(self, setup):
        tree, keys, _, _ = setup
        k = int(keys[9])
        leaf, _ = tree.find_leaf(k)
        old = run_subroutine(d_leaf_delete_device(tree, leaf, k), tree.arena)
        assert old == k * 2
        assert tree.search(k) == NULL_VALUE
        tree.validate()

    def test_delete_device_missing(self, setup):
        tree, keys, _, _ = setup
        missing = 4999
        while tree.search(missing) != NULL_VALUE:
            missing -= 1
        leaf, _ = tree.find_leaf(missing)
        assert run_subroutine(d_leaf_delete_device(tree, leaf, missing), tree.arena) == NULL_VALUE


class TestStmOps:
    def test_stm_traversal_and_search(self, setup):
        tree, keys, stm, _ = setup
        k = int(keys[77])

        def prog():
            tx = stm.begin()
            leaf, steps = yield from d_find_leaf_stm(tree, stm, tx, k)
            val = yield from d_search_leaf_stm(tree, stm, tx, leaf, k)
            yield from stm.d_commit(tx)
            return val

        assert run_subroutine(prog(), tree.arena) == k * 2

    def test_stm_upsert_and_delete(self, setup):
        tree, keys, stm, _ = setup
        k = int(keys[21])
        leaf, _ = tree.find_leaf(k)

        def upsert():
            tx = stm.begin()
            old, split = yield from d_leaf_upsert_stm(tree, stm, tx, leaf, k, 321)
            yield from stm.d_commit(tx)
            return old, split

        old, split = run_subroutine(upsert(), tree.arena)
        assert (old, split) == (k * 2, False)
        assert tree.search(k) == 321

        def delete():
            tx = stm.begin()
            old = yield from d_leaf_delete_stm(tree, stm, tx, leaf, k)
            yield from stm.d_commit(tx)
            return old

        assert run_subroutine(delete(), tree.arena) == 321
        assert tree.search(k) == NULL_VALUE
        tree.validate()


class TestSmoPath:
    def test_plan_contains_leaf(self, setup):
        tree, keys, _, _ = setup
        plan = plan_upsert_nodes(tree, int(keys[0]))
        assert plan[0] == tree.find_leaf(int(keys[0]))[0]

    def test_smo_upsert_splits_and_preserves_contents(self, setup):
        tree, keys, stm, smo = setup
        # fill a leaf, then insert through the SMO path
        leaf = tree.leaf_ids()[2]
        hk = tree.nodes.host_keys(leaf)
        lo = int(hk[0])
        k = lo
        while int(tree.arena.data[tree.layout.addr(leaf, OFF_COUNT)]) < tree.layout.fanout:
            k += 1
            if tree.find_leaf(k)[0] == leaf and tree.search(k) == NULL_VALUE:
                tree.upsert(k, 1)
        k += 1
        while tree.search(k) != NULL_VALUE or tree.find_leaf(k)[0] != leaf:
            k += 1
            if k > lo + 10_000:
                pytest.skip("no absent key in leaf range")
        splits_before = len(tree.split_events)

        old = run_subroutine(
            d_smo_upsert(tree, stm, smo, owner=1, key=k, value=42), tree.arena
        )
        assert old == NULL_VALUE
        assert tree.search(k) == 42
        assert len(tree.split_events) > splits_before
        assert tree.arena.data[smo] == 0  # latch released
        tree.validate()

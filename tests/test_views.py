"""Typed node views: address arithmetic, planes, labels, vector helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro import EMPTY_KEY, TreeConfig
from repro.btree import BPlusTree
from repro.btree.layout import (
    HEADER_WORDS,
    OFF_COUNT,
    OFF_FENCE,
    OFF_KEYS,
    OFF_LEAF,
    OFF_LOCK,
    OFF_NEXT,
    OFF_RF,
    OFF_VERSION,
    NodeLayout,
)
from repro.btree.views import FIELD_BY_NAME, FIELDS, StructView
from repro.memory import MemoryArena


@pytest.fixture
def layout() -> NodeLayout:
    # non-zero base: views must honor the node region's offset in the arena
    return NodeLayout(fanout=8, base=64)


@pytest.fixture
def view(layout) -> StructView:
    arena = MemoryArena(layout.arena_words(16) + layout.base)
    arena.alloc(arena.capacity)
    return StructView(arena, layout)


class TestFieldTable:
    def test_one_field_per_header_word(self):
        assert len(FIELDS) == HEADER_WORDS
        assert sorted(f.offset for f in FIELDS) == list(range(HEADER_WORDS))

    def test_offsets_match_layout_constants(self):
        expect = {
            "count": OFF_COUNT,
            "leaf": OFF_LEAF,
            "version": OFF_VERSION,
            "rf": OFF_RF,
            "next_leaf": OFF_NEXT,
            "lock": OFF_LOCK,
            "fence": OFF_FENCE,
        }
        for name, off in expect.items():
            assert FIELD_BY_NAME[name].offset == off


class TestAddressPlane:
    @pytest.mark.parametrize("node", [0, 1, 7, 15])
    def test_header_addrs_match_layout(self, layout, view, node):
        a = view.addrs(node)
        assert a.count == layout.addr(node, OFF_COUNT)
        assert a.version == layout.addr(node, OFF_VERSION)
        assert a.rf == layout.addr(node, OFF_RF)
        assert a.next_leaf == layout.addr(node, OFF_NEXT)
        assert a.lock == layout.addr(node, OFF_LOCK)
        assert a.fence == layout.addr(node, OFF_FENCE)

    def test_key_and_payload_addrs(self, layout, view):
        a = view.addrs(3)
        for slot in range(layout.fanout):
            assert a.keys[slot] == layout.key_addr(3, slot)
        for slot in range(layout.fanout + 1):
            assert a.payload[slot] == layout.payload_addr(3, slot)
        np.testing.assert_array_equal(
            a.keys[:], layout.node_base(3) + OFF_KEYS + np.arange(layout.fanout)
        )
        assert a.children is a.payload or a.children[0] == a.payload[0]

    def test_words_cover_the_node(self, layout, view):
        w = view.addrs(2).words()
        assert w[0] == layout.node_base(2)
        assert len(w) == layout.node_words


class TestCountedPlane:
    def test_counted_reads_charge_the_canonical_labels(self, view):
        arena = view.arena
        arena.stats.reset()
        n = view.node(0)
        _ = n.count
        _ = n.version
        _ = n.rf
        _ = n.fence
        _ = n.next_leaf
        _ = n.keys[0]
        _ = n.payload[0]
        labels = arena.stats.by_label
        for want in ("node_header", "version", "rf", "fence", "leaf_chain", "keys", "payload"):
            assert want in labels, f"missing counted label {want!r} in {labels}"

    def test_counted_write_and_row_read(self, view):
        n = view.node(1)
        n.count = 5
        n.keys[2] = 42
        assert n.count == 5
        assert n.keys[2] == 42
        row = n.keys[:]
        assert row[2] == 42 and len(row) == len(n.keys)

    def test_bump_version_is_atomic_increment(self, view):
        n = view.node(1)
        before = n.version
        assert n.bump_version() == before + 1
        assert n.version == before + 1


class TestHostPlane:
    def test_host_views_bypass_counting(self, view):
        view.arena.stats.reset()
        h = view.host(0)
        h.count = 3
        h.fence = 17
        h.keys[:] = 9
        assert view.arena.stats.accesses == 0
        assert h.count == 3 and h.fence == 17
        assert int(h.keys[0]) == 9

    def test_host_and_counted_planes_alias_the_same_words(self, view):
        h = view.host(2)
        h.next_leaf = 123
        assert view.node(2).next_leaf == 123


class TestVectorHelpers:
    def test_field_addrs_and_host_field(self, layout, view):
        nodes = np.array([0, 3, 5], dtype=np.int64)
        for node in nodes:
            view.host(int(node)).fence = 100 + int(node)
        addrs = view.field_addrs(nodes, "fence")
        np.testing.assert_array_equal(
            addrs, [layout.addr(int(n), OFF_FENCE) for n in nodes]
        )
        np.testing.assert_array_equal(view.host_field(nodes, "fence"), [100, 103, 105])

    def test_key_rows_matches_per_node_reads(self, layout, view):
        nodes = np.array([1, 4], dtype=np.int64)
        for node in nodes:
            view.host(int(node)).keys[:] = np.arange(layout.fanout) + int(node) * 10
        rows = view.key_rows(nodes)
        assert rows.shape == (2, layout.fanout)
        for i, node in enumerate(nodes):
            np.testing.assert_array_equal(rows[i], view.host(int(node)).keys)

    def test_payload_addrs(self, layout, view):
        nodes = np.array([2, 6], dtype=np.int64)
        slots = np.array([0, 3], dtype=np.int64)
        np.testing.assert_array_equal(
            view.payload_addrs(nodes, slots),
            [layout.payload_addr(2, 0), layout.payload_addr(6, 3)],
        )


class TestTreeIntegration:
    def test_views_track_arena_rebinding(self):
        """Transplanting a tree into a bigger arena must not leave views
        pointing at the old storage (regression: stale StructView after
        ``tree.arena = bigger``)."""
        keys = np.arange(0, 200, 2, dtype=np.int64)
        tree = BPlusTree.build(keys, keys, TreeConfig(fanout=8))
        old_data = tree.arena.data
        bigger = MemoryArena(tree.arena.capacity * 2)
        bigger.data[: old_data.size] = old_data
        bigger.alloc(old_data.size)
        tree.arena = bigger
        tree.nodes.arena = bigger
        assert tree.views.arena is bigger
        assert tree.nodes.views.arena is bigger
        tree.upsert(1, 7)  # mutations land in the new arena
        assert tree.search(1) == 7
        got = np.array_equal(old_data, bigger.data[: old_data.size])
        assert not got, "write went to the transplanted-away arena"

    def test_accessor_delegates_to_views(self):
        keys = np.arange(0, 64, 2, dtype=np.int64)
        tree = BPlusTree.build(keys, keys + 1, TreeConfig(fanout=8))
        acc = tree.nodes
        leaf, _ = tree.find_leaf(10)
        assert acc.count(leaf) == tree.views.host(leaf).count
        assert acc.is_leaf(leaf)
        assert acc.key(leaf, 0) == int(tree.views.host(leaf).keys[0])
        np.testing.assert_array_equal(acc.host_keys(leaf), tree.views.host(leaf).keys)

    def test_clear_node_initializes_empty_leaf(self):
        lay = NodeLayout(fanout=8)
        arena = MemoryArena(lay.arena_words(4))
        arena.alloc(arena.capacity)
        view = StructView(arena, lay)
        arena.data[:] = -7  # garbage
        from repro.btree.node import NodeAccessor

        NodeAccessor(arena, lay).clear_node(1, leaf=True)
        h = view.host(1)
        assert h.leaf == 1 and h.count == 0
        assert h.next_leaf == -1 and h.rf == EMPTY_KEY
        assert np.all(h.keys == EMPTY_KEY)

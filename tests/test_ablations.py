"""Smoke tests for the ablation harness (cheap configs)."""

from repro.harness import (
    ExperimentConfig,
    ablate_iteration_depth,
    ablate_retry_threshold,
    ablate_rf_decision,
    ablate_skew,
)

CHEAP = ExperimentConfig(tree_size=2**11, batch_size=2**10, n_batches=1, num_sms=4)
CHEAP_SIMT = CHEAP.with_(engine="simt", batch_size=2**9)


def test_retry_threshold_sweep_runs():
    fig = ablate_retry_threshold(CHEAP_SIMT, thresholds=(0, 3))
    assert len(fig.rows) == 2
    assert fig.value("threshold=0", "Mreq/s") > 0


def test_iteration_depth_sweep_runs():
    fig = ablate_iteration_depth(CHEAP, depths=(1, 4))
    assert fig.value("depth=4", "traversal_steps") <= fig.value(
        "depth=1", "traversal_steps"
    )


def test_rf_decision_sweep_runs():
    fig = ablate_rf_decision(CHEAP.with_(tree_size=2**13, batch_size=2**9))
    assert fig.value("always horizontal", "traversal_steps") >= fig.value(
        "RF decision on", "traversal_steps"
    )


def test_skew_sweep_runs():
    fig = ablate_skew(CHEAP_SIMT, thetas=(0.0, 0.99))
    assert fig.value("theta=0.99", "combined_frac") > fig.value(
        "theta=0.0", "combined_frac"
    )

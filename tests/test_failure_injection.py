"""Failure injection: forced aborts, mid-flight splits, arena exhaustion.

The optimistic update path (§4.2, Algorithm 1) claims correctness under
arbitrary conflict patterns because every leaf operation validates inside a
transaction and retries. These tests force the failure modes
deterministically and check the claims.
"""

import numpy as np
import pytest

from repro import (
    DeviceConfig,
    NULL_VALUE,
    OpKind,
    TreeConfig,
    build_key_pool,
    check_linearizable,
    make_system,
)
from repro.btree.layout import OFF_VERSION
from repro.errors import TreeFullError
from repro.lincheck import SequentialReference
from repro.simt import Alu, KernelLaunch, Mark
from repro.workloads import RequestBatch, YcsbMix, YcsbWorkload


def eirene_system(rng, tree_size=512):
    keys, values = build_key_pool(tree_size, rng)
    sys_ = make_system(
        "eirene", keys, values,
        tree_config=TreeConfig(fanout=8, arena_headroom=4.0),
        device=DeviceConfig(num_sms=2),
    )
    return sys_, keys, values


class TestInjectedAborts:
    def test_eirene_recovers_from_periodic_aborts(self, rng):
        sys_, keys, values = eirene_system(rng)
        ref = SequentialReference(keys, values)
        counter = {"n": 0}

        def injector():
            counter["n"] += 1
            return counter["n"] % 171 == 0  # fail ~0.6% of transactional reads

        sys_.stm.abort_injector = injector
        wl = YcsbWorkload(pool=keys, mix=YcsbMix(query=0.5, update=0.5))
        batch = wl.generate(256, rng)
        expected = ref.execute(batch)
        out = sys_.process_batch(batch, engine="simt")
        rep = check_linearizable(batch, out.results, expected)
        assert rep.ok, rep.describe(batch)
        sys_.tree.validate()
        assert out.extras["stm"].aborts > 0  # the injection really fired

    def test_heavy_aborts_push_past_retry_threshold(self, rng):
        """Past the threshold the inner traversal runs STM-protected
        (Algorithm 1 lines 30–34); results must stay correct."""
        sys_, keys, values = eirene_system(rng)
        assert sys_.config.stm_retry_threshold == 3
        ref = SequentialReference(keys, values)
        counter = {"n": 0}

        def injector():
            counter["n"] += 1
            # fail hard early, then relent so requests can finish
            return counter["n"] < 400 and counter["n"] % 5 == 0

        sys_.stm.abort_injector = injector
        batch = RequestBatch.from_ops(
            [(OpKind.UPDATE, int(keys[i]), 1000 + i) for i in range(32)]
        )
        expected = ref.execute(batch)
        out = sys_.process_batch(batch, engine="simt")
        rep = check_linearizable(batch, out.results, expected)
        assert rep.ok, rep.describe(batch)
        assert out.extras["stm"].aborts > 0  # the injection forced retries


class TestMidFlightSplit:
    def test_split_between_traversal_and_leaf_op_is_detected(self, rng):
        """A chaos lane splits the target leaf while an update lane sits
        between its traversal and its leaf transaction; leaf-version
        validation must force a retry and the update must still land."""
        from repro.core.kernels import d_update

        sys_, keys, values = eirene_system(rng)
        tree = sys_.tree
        key = int(keys[100])
        leaf, _ = tree.find_leaf(key)

        retried = {}

        def update_lane():
            res = yield from d_update(
                tree, sys_.stm, sys_.smo_lock_addr,
                sys_.config.stm_retry_threshold, 0, int(OpKind.UPDATE), key, 4242,
            )
            retried["retries"] = res.retries
            yield Mark(0)

        def chaos_lane():
            # wait long enough for the update lane to pass its traversal
            # but not commit (traversal at fanout 8, height >= 2 takes
            # >> 8 slots), then split the leaf host-side like an SMO would
            for _ in range(12):
                yield Alu()
            before = int(tree.arena.data[tree.layout.addr(leaf, OFF_VERSION)])
            new_leaf = tree._split_leaf(leaf)
            # propagate the separator so the tree stays consistent
            sep = int(tree.nodes.host_keys(new_leaf)[0])
            tree._insert_separator(tree._descend_path(sep)[:-1], sep, new_leaf)
            sys_.stm.host_invalidate(
                list(range(tree.layout.node_base(leaf),
                           tree.layout.node_base(leaf) + tree.layout.node_words))
            )
            assert tree.arena.data[tree.layout.addr(leaf, OFF_VERSION)] > before
            yield Mark(1)

        launch = KernelLaunch(DeviceConfig(num_sms=1), tree.arena, 2)
        launch.add_warp([update_lane(), chaos_lane()])
        launch.run()
        tree.validate()
        assert tree.search(key) == 4242  # the update still landed correctly


class TestResourceExhaustion:
    def test_arena_exhaustion_surfaces_cleanly(self, rng):
        keys = np.arange(64, dtype=np.int64) * 3
        sys_ = make_system(
            "eirene", keys, keys,
            tree_config=TreeConfig(fanout=4, arena_headroom=1.0),
        )
        wl_keys = np.arange(10_000, 20_000, dtype=np.int64)
        batch = RequestBatch.from_ops(
            [(OpKind.INSERT, int(k), 1) for k in wl_keys[:2000]]
        )
        with pytest.raises(TreeFullError):
            sys_.process_batch(batch, engine="vector")


class TestCorruptionDetection:
    def test_validate_catches_fence_corruption(self, rng):
        sys_, keys, _ = eirene_system(rng)
        tree = sys_.tree
        leaf = tree.leaf_ids()[3]
        from repro.btree.layout import OFF_FENCE

        tree.arena.data[tree.layout.addr(leaf, OFF_FENCE)] += 1
        with pytest.raises(Exception):
            tree.validate()

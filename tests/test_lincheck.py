"""Unit tests for the sequential reference and the linearizability checker."""

import numpy as np
import pytest

from repro._types import NULL_VALUE, OpKind
from repro.errors import LinearizabilityViolation
from repro.lincheck import (
    SequentialReference,
    check_linearizable,
    compare_results,
    compare_state,
)
from repro.workloads import BatchResults, RequestBatch


def ref_with(keys=(1, 2, 3), values=(10, 20, 30)):
    return SequentialReference(np.array(keys), np.array(values))


class TestSequentialReference:
    def test_query_hit_and_miss(self):
        ref = ref_with()
        batch = RequestBatch.from_ops([(OpKind.QUERY, 2), (OpKind.QUERY, 9)])
        res = ref.execute(batch)
        assert res.values[0] == 20
        assert res.values[1] == NULL_VALUE

    def test_update_returns_old_value(self):
        ref = ref_with()
        batch = RequestBatch.from_ops(
            [(OpKind.UPDATE, 2, 99), (OpKind.QUERY, 2), (OpKind.UPDATE, 2, 100)]
        )
        res = ref.execute(batch)
        assert res.values[0] == 20
        assert res.values[1] == 99
        assert res.values[2] == 99

    def test_delete_then_query_is_null(self):
        ref = ref_with()
        batch = RequestBatch.from_ops([(OpKind.DELETE, 1), (OpKind.QUERY, 1)])
        res = ref.execute(batch)
        assert res.values[0] == 10
        assert res.values[1] == NULL_VALUE

    def test_insert_after_delete(self):
        ref = ref_with()
        batch = RequestBatch.from_ops(
            [(OpKind.DELETE, 1), (OpKind.INSERT, 1, 5), (OpKind.QUERY, 1)]
        )
        res = ref.execute(batch)
        assert res.values[1] == NULL_VALUE  # old value at insert time
        assert res.values[2] == 5

    def test_range_sees_midbatch_updates(self):
        ref = ref_with()
        batch = RequestBatch.from_ops(
            [(OpKind.UPDATE, 2, 99), (OpKind.RANGE, 1, 3), (OpKind.UPDATE, 3, 77)]
        )
        res = ref.execute(batch)
        rk, rv = res.range_result(1)
        assert np.array_equal(rk, [1, 2, 3])
        assert np.array_equal(rv, [10, 99, 30])  # sees the first, not the second

    def test_range_sees_inserts_and_deletes(self):
        ref = ref_with()
        batch = RequestBatch.from_ops(
            [
                (OpKind.INSERT, 4, 40),
                (OpKind.DELETE, 1),
                (OpKind.RANGE, 0, 10),
            ]
        )
        res = ref.execute(batch)
        rk, _ = res.range_result(2)
        assert np.array_equal(rk, [2, 3, 4])

    def test_items_reflect_final_state(self):
        ref = ref_with()
        ref.execute(RequestBatch.from_ops([(OpKind.DELETE, 2), (OpKind.INSERT, 7, 70)]))
        ks, vs = ref.items()
        assert np.array_equal(ks, [1, 3, 7])
        assert np.array_equal(vs, [10, 30, 70])


class TestChecker:
    def _batch_and_results(self):
        batch = RequestBatch.from_ops([(OpKind.QUERY, 1), (OpKind.RANGE, 1, 3)])
        ref = ref_with()
        expected = ref.execute(batch)
        return batch, expected

    def test_identical_results_pass(self):
        batch, expected = self._batch_and_results()
        rep = compare_results(batch, expected, expected)
        assert rep.ok
        assert rep.n_mismatches == 0

    def test_value_mismatch_detected(self):
        batch, expected = self._batch_and_results()
        got = BatchResults.empty(batch.n)
        got.values[:] = expected.values
        got.values[0] = 999
        got.range_offsets = expected.range_offsets
        got.range_keys = expected.range_keys
        got.range_values = expected.range_values
        rep = compare_results(batch, got, expected)
        assert not rep.ok
        assert rep.value_mismatches == [0]

    def test_range_mismatch_detected(self):
        batch, expected = self._batch_and_results()
        got = BatchResults.empty(batch.n)
        got.values[:] = expected.values
        got.set_range_results({1: (np.array([1]), np.array([10]))})  # truncated
        rep = compare_results(batch, got, expected)
        assert not rep.ok
        assert rep.range_mismatches == [1]

    def test_state_comparison(self):
        a = (np.array([1, 2]), np.array([10, 20]))
        b = (np.array([1, 2]), np.array([10, 21]))
        assert compare_state(a, a) is None
        assert "value divergence" in compare_state(a, b)
        c = (np.array([1]), np.array([10]))
        assert "size" in compare_state(a, c)

    def test_raise_on_fail(self):
        batch, expected = self._batch_and_results()
        got = BatchResults.empty(batch.n)
        got.values[0] = 999
        with pytest.raises(LinearizabilityViolation):
            check_linearizable(batch, got, expected, raise_on_fail=True)

    def test_describe_mentions_request(self):
        batch, expected = self._batch_and_results()
        got = BatchResults.empty(batch.n)
        got.range_offsets = expected.range_offsets
        got.range_keys = expected.range_keys
        got.range_values = expected.range_values
        got.values[0] = 5
        rep = compare_results(batch, got, expected)
        assert "QUERY" in rep.describe(batch)

"""Unit tests for configuration dataclasses."""

import pytest

from repro.config import (
    COMBINING_ONLY,
    FULL_EIRENE,
    DeviceConfig,
    EireneConfig,
    TreeConfig,
)
from repro.errors import ConfigError


class TestDeviceConfig:
    def test_defaults_model_a100(self):
        dev = DeviceConfig()
        assert dev.num_sms == 108
        assert dev.warp_size == 32
        assert dev.clock_ghz == pytest.approx(1.41)
        assert dev.segment_bytes == 128

    def test_words_per_segment(self):
        assert DeviceConfig().words_per_segment == 16

    def test_cycles_to_seconds(self):
        dev = DeviceConfig(clock_ghz=1.0)
        assert dev.cycles_to_seconds(1e9) == pytest.approx(1.0)

    def test_mem_transactions_per_second(self):
        dev = DeviceConfig(mem_bandwidth_gbps=128.0, segment_bytes=128)
        assert dev.mem_transactions_per_second == pytest.approx(1e9)

    def test_thread_slots(self):
        dev = DeviceConfig(num_sms=4, warp_size=32)
        assert dev.thread_slots == 128

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_sms": 0},
            {"num_sms": -1},
            {"warp_size": 0},
            {"warp_size": 31},  # not a power of two
            {"clock_ghz": 0.0},
            {"segment_bytes": 100},  # not a multiple of word size
        ],
    )
    def test_invalid_configs_raise(self, kwargs):
        with pytest.raises(ConfigError):
            DeviceConfig(**kwargs)


class TestTreeConfig:
    def test_defaults(self):
        cfg = TreeConfig()
        assert cfg.fanout == 16
        assert cfg.min_keys == 8

    def test_fanout_lower_bound(self):
        with pytest.raises(ConfigError):
            TreeConfig(fanout=3)

    def test_headroom_lower_bound(self):
        with pytest.raises(ConfigError):
            TreeConfig(arena_headroom=0.5)


class TestEireneConfig:
    def test_full_eirene_enables_everything(self):
        assert FULL_EIRENE.enable_combining
        assert FULL_EIRENE.enable_locality
        assert FULL_EIRENE.enable_kernel_partition

    def test_combining_only_disables_locality(self):
        assert COMBINING_ONLY.enable_combining
        assert not COMBINING_ONLY.enable_locality

    def test_locality_requires_combining(self):
        with pytest.raises(ConfigError):
            EireneConfig(enable_combining=False, enable_locality=True)

    def test_negative_threshold_rejected(self):
        with pytest.raises(ConfigError):
            EireneConfig(stm_retry_threshold=-1)

    def test_zero_rgs_rejected(self):
        with pytest.raises(ConfigError):
            EireneConfig(rgs_per_iteration_warp=0)

    def test_replace_produces_new_config(self):
        cfg = FULL_EIRENE.replace(stm_retry_threshold=7)
        assert cfg.stm_retry_threshold == 7
        assert FULL_EIRENE.stm_retry_threshold == 3

    def test_frozen(self):
        with pytest.raises(Exception):
            FULL_EIRENE.stm_retry_threshold = 9  # type: ignore[misc]

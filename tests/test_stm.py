"""Unit + property tests for the STM (host plane and device plane)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import TransactionAborted, TransactionError
from repro.memory import MemoryArena
from repro.simt import KernelLaunch
from repro.simt.warp import run_subroutine
from repro.stm import FREE, DeviceStm, StmRegion, TransactionManager
from repro.config import DeviceConfig


@pytest.fixture
def tm():
    arena = MemoryArena(1024)
    data_base = arena.alloc(64)
    region = StmRegion(arena, data_base, 64)
    return TransactionManager(arena, region), arena, data_base


class TestHostStm:
    def test_read_write_commit(self, tm):
        mgr, arena, base = tm
        tx = mgr.begin()
        mgr.write(tx, base, 42)
        mgr.commit(tx)
        assert arena.data[base] == 42
        assert mgr.stats.commits == 1

    def test_abort_rolls_back(self, tm):
        mgr, arena, base = tm
        arena.data[base] = 7
        tx = mgr.begin()
        mgr.write(tx, base, 99)
        assert arena.data[base] == 99  # eager in-place write
        mgr.abort(tx)
        assert arena.data[base] == 7

    def test_ww_conflict_aborts_second_writer(self, tm):
        mgr, arena, base = tm
        t1 = mgr.begin()
        t2 = mgr.begin()
        mgr.write(t1, base, 1)
        with pytest.raises(TransactionAborted):
            mgr.write(t2, base, 2)
        assert mgr.stats.conflicts_ww == 1
        assert not t2.active
        mgr.commit(t1)
        assert arena.data[base] == 1

    def test_read_of_owned_word_aborts_reader(self, tm):
        mgr, arena, base = tm
        t1 = mgr.begin()
        mgr.write(t1, base, 1)
        t2 = mgr.begin()
        with pytest.raises(TransactionAborted):
            mgr.read(t2, base)
        assert mgr.stats.conflicts_rw == 1

    def test_commit_validation_catches_stale_read(self, tm):
        mgr, arena, base = tm
        t1 = mgr.begin()
        assert mgr.read(t1, base) == 0
        # another tx writes and commits in between
        t2 = mgr.begin()
        mgr.write(t2, base, 5)
        mgr.commit(t2)
        with pytest.raises(TransactionAborted):
            mgr.commit(t1)
        assert mgr.stats.conflicts_validation == 1

    def test_read_own_write(self, tm):
        mgr, _, base = tm
        tx = mgr.begin()
        mgr.write(tx, base, 11)
        assert mgr.read(tx, base) == 11
        mgr.commit(tx)

    def test_ownership_released_after_commit(self, tm):
        mgr, arena, base = tm
        tx = mgr.begin()
        mgr.write(tx, base, 1)
        mgr.commit(tx)
        assert arena.data[mgr.region.owner_addr(base)] == FREE

    def test_double_commit_rejected(self, tm):
        mgr, _, base = tm
        tx = mgr.begin()
        mgr.commit(tx)
        with pytest.raises(TransactionError):
            mgr.commit(tx)

    def test_address_outside_region_rejected(self, tm):
        mgr, _, base = tm
        tx = mgr.begin()
        with pytest.raises(TransactionError):
            mgr.read(tx, base + 1000)

    def test_run_retries_until_success(self, tm):
        mgr, arena, base = tm
        blocker = mgr.begin()
        mgr.write(blocker, base, 1)
        attempts = []

        def body(tx):
            attempts.append(1)
            if len(attempts) == 1:
                # simulate the blocker committing mid-flight
                mgr.commit(blocker)
            return mgr.read(tx, base)

        val, n = mgr.run(body)
        assert val == 1
        assert n >= 1

    def test_run_gives_up(self, tm):
        mgr, _, base = tm

        def body(tx):
            raise TransactionAborted("forced")

        # aborted outside the manager: begin/abort mismatch is fine, the
        # retry loop just exhausts
        with pytest.raises(TransactionError):
            mgr.run(body, max_retries=3)

    def test_metadata_traffic_is_counted(self, tm):
        mgr, arena, base = tm
        before = arena.stats.snapshot()
        tx = mgr.begin()
        mgr.read(tx, base)
        mgr.commit(tx)
        delta = arena.stats.delta_since(before)
        assert delta.by_label.get("stm_meta", 0) >= 2  # owner + version reads


class TestSerializabilityProperty:
    @given(st.lists(st.tuples(st.integers(0, 7), st.integers(1, 50)), min_size=1, max_size=20))
    @settings(max_examples=40, deadline=None)
    def test_sequential_transactions_apply_all_writes(self, writes):
        arena = MemoryArena(256)
        base = arena.alloc(8)
        region = StmRegion(arena, base, 8)
        mgr = TransactionManager(arena, region)
        model = [0] * 8
        for off, val in writes:
            tx = mgr.begin()
            mgr.write(tx, base + off, val)
            mgr.commit(tx)
            model[off] = val
        assert [int(arena.data[base + i]) for i in range(8)] == model
        assert mgr.stats.aborts == 0


class TestDeviceStm:
    def _setup(self):
        arena = MemoryArena(2048)
        base = arena.alloc(64)
        region = StmRegion(arena, base, 64)
        return arena, base, DeviceStm(arena, region)

    def test_single_tx_commit(self):
        arena, base, stm = self._setup()

        def prog():
            tx = stm.begin()
            yield from stm.d_write(tx, base, 33)
            yield from stm.d_commit(tx)
            return None

        run_subroutine(prog(), arena)
        assert arena.data[base] == 33
        assert stm.stats.commits == 1

    def test_two_lanes_same_word_serialize(self):
        arena, base, stm = self._setup()
        device = DeviceConfig(num_sms=1)
        outcomes = []

        def prog(lane):
            def p():
                retries = 0
                while True:
                    tx = stm.begin()
                    try:
                        v = yield from stm.d_read(tx, base)
                        yield from stm.d_write(tx, base, v + 1)
                        yield from stm.d_commit(tx)
                        outcomes.append(lane)
                        return None
                    except TransactionAborted:
                        retries += 1
                        if retries > 100:
                            raise
            return p()

        launch = KernelLaunch(device, arena, 2)
        launch.add_warp([prog(0), prog(1)])
        launch.run()
        # both increments landed exactly once
        assert arena.data[base] == 2
        assert len(outcomes) == 2
        assert stm.stats.commits == 2
        assert stm.stats.aborts >= 1  # they genuinely conflicted

    def test_device_abort_rolls_back(self):
        arena, base, stm = self._setup()
        arena.data[base] = 5

        def prog():
            tx = stm.begin()
            yield from stm.d_write(tx, base, 9)
            yield from stm.d_abort(tx)
            return None

        run_subroutine(prog(), arena)
        assert arena.data[base] == 5
        assert stm.stats.aborts == 1

    def test_host_invalidate_fails_concurrent_validation(self):
        arena, base, stm = self._setup()

        def prog():
            tx = stm.begin()
            yield from stm.d_read(tx, base)
            stm.host_invalidate([base])  # concurrent SMO bumps the version
            try:
                yield from stm.d_commit(tx)
            except TransactionAborted:
                return "aborted"
            return "committed"

        assert run_subroutine(prog(), arena) == "aborted"
        assert stm.stats.conflicts_validation == 1

"""Shared fixtures: small trees, systems, batches, rngs."""

from __future__ import annotations

import numpy as np
import pytest

from repro import DeviceConfig, TreeConfig, YcsbWorkload, build_key_pool, make_system
from repro.btree import BPlusTree
from repro.memory import MemoryArena


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def small_device() -> DeviceConfig:
    """Scaled device used throughout the tests (see DESIGN.md scaling)."""
    return DeviceConfig(num_sms=4)


@pytest.fixture
def tree_kv(rng) -> tuple[np.ndarray, np.ndarray]:
    keys, values = build_key_pool(2**10, rng)
    return keys, values


@pytest.fixture
def small_tree(tree_kv) -> BPlusTree:
    keys, values = tree_kv
    return BPlusTree.build(keys, values, TreeConfig(fanout=8))


@pytest.fixture(scope="session")
def _arena_pool() -> MemoryArena:
    """One session-wide arena, recycled between tests via ``reset()``."""
    return MemoryArena(4096)


@pytest.fixture
def arena(_arena_pool) -> MemoryArena:
    _arena_pool.reset()
    return _arena_pool


@pytest.fixture
def workload(tree_kv) -> YcsbWorkload:
    keys, _ = tree_kv
    return YcsbWorkload(pool=keys)


def make_test_system(name: str, rng, tree_size: int = 2**10, fanout: int = 8, **kwargs):
    """Build a system over a fresh pool (non-fixture helper for parametrize)."""
    keys, values = build_key_pool(tree_size, rng)
    return make_system(
        name,
        keys,
        values,
        tree_config=TreeConfig(fanout=fanout),
        device=DeviceConfig(num_sms=4),
        **kwargs,
    ), keys

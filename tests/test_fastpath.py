"""Equivalence tests for the vectorized warp interpreter and its satellites.

The :class:`~repro.config.ExecutionConfig` contract says every flag is
observationally neutral: counters, lane results, arena contents and QoS
arrays are bit-for-bit identical on the reference path
(``vectorize_slots=False``) and the fast path. These tests enforce that on

* seeded random warp programs (loads/stores/atomics/ALU/branches/marks,
  divergent lengths, early retirees),
* iteration-warp style ``WaitGE`` barriers with uneven arrival (the only
  construct the fast path *parks* on),
* the bulk-load deferral path (``gather_threshold=1``) including host
  mutation mid-kernel via a full Eirene batch,
* whole-system batches for every system kind,

plus the probe fallback rule (an attached probe must see every op, i.e.
the reference path runs), the ``REPRO_SLOW_PATH=1`` escape hatch, the
:class:`~repro.sharding.ParallelShardedSystem` worker-count invariance, and
the arena's bulk/lazy accounting satellites.

Random programs respect the ``WaitGE`` contract: the condition sequence is
only ever advanced by same-warp lanes, and each waiting program keeps its
own ``while`` re-check around the yield.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.config import DeviceConfig, ExecutionConfig, execution_config, set_execution_config
from repro.memory import MemoryArena
from repro.sharding import ParallelShardedSystem, ShardedSystem
from repro.simt import (
    Alu,
    AtomicAdd,
    AtomicCAS,
    AtomicExch,
    Branch,
    KernelLaunch,
    Load,
    Mark,
    Noop,
    Store,
    WaitGE,
)

SEQUENTIAL = ExecutionConfig(vectorize_slots=False, park_barrier_waits=False)


@pytest.fixture(autouse=True)
def _restore_execution():
    previous = execution_config()
    yield
    set_execution_config(previous)


def deep_eq(a, b) -> bool:
    """Field-wise equality that tolerates numpy members; skips host
    wall-clock stamps (``wall_s``), the only legitimately run-varying field."""
    if dataclasses.is_dataclass(a) and not isinstance(a, type):
        return type(a) is type(b) and all(
            f.name == "wall_s" or deep_eq(getattr(a, f.name), getattr(b, f.name))
            for f in dataclasses.fields(a)
        )
    if isinstance(a, np.ndarray):
        return np.array_equal(a, b, equal_nan=(a.dtype.kind == "f"))
    if isinstance(a, dict):
        return set(a) == set(b) and all(deep_eq(a[k], b[k]) for k in a)
    if isinstance(a, (list, tuple)):
        return len(a) == len(b) and all(deep_eq(x, y) for x, y in zip(a, b))
    return bool(a == b)


# --------------------------------------------------------------------- #
# random warp programs
# --------------------------------------------------------------------- #
DATA_WORDS = 192
HOT_WORDS = 4  # tiny shared region so atomics actually conflict


def random_program(rng: np.random.Generator, lane: int, n_lanes: int):
    """One seeded lane program over a mixed op stream.

    Lane length varies (divergence + early retirement); values derived
    from loads feed later stores so deferred-load results are observable.
    """
    n_ops = int(rng.integers(4, 40))
    kinds = rng.integers(0, 8, size=n_ops)
    addrs = rng.integers(0, DATA_WORDS, size=n_ops)

    def prog():
        acc = lane
        for k, a in zip(kinds.tolist(), addrs.tolist()):
            if k == 0 or k == 1:
                acc ^= (yield Load(a))
            elif k == 2:
                yield Store(a, (acc + lane) % 1000)
            elif k == 3:
                yield Alu(1 + (a % 3))
            elif k == 4:
                yield Branch()
            elif k == 5:
                acc += yield AtomicAdd(DATA_WORDS + (a % HOT_WORDS), 1)
            elif k == 6:
                acc ^= (yield AtomicCAS(DATA_WORDS + (a % HOT_WORDS), acc % 7, lane))
            else:
                yield Noop()
        yield Mark(lane)
        return acc

    return prog()


def run_warp(programs_fn, execution: ExecutionConfig, n_lanes: int = 8, probe=None):
    """Run one warp of fresh programs; return (counters, results, memory)."""
    arena = MemoryArena(DATA_WORDS + HOT_WORDS + 16)
    arena.data[:DATA_WORDS] = np.arange(DATA_WORDS)
    device = DeviceConfig(num_sms=2)
    launch = KernelLaunch(
        device, arena, n_lanes, probe=probe, execution=execution
    )
    launch.add_warp(programs_fn(n_lanes))
    counters = launch.run()
    return counters, launch.lane_results(), arena.data.copy()


def assert_equivalent(programs_fn, fast: ExecutionConfig, n_lanes: int = 8):
    ref = run_warp(programs_fn, SEQUENTIAL, n_lanes)
    opt = run_warp(programs_fn, fast, n_lanes)
    assert deep_eq(ref[0], opt[0]), "KernelCounters diverged"
    assert ref[1] == opt[1], "lane results diverged"
    assert np.array_equal(ref[2], opt[2]), "arena contents diverged"


@pytest.mark.parametrize("seed", [0, 1, 2, 3])
def test_random_programs_equivalent(seed):
    def make(n_lanes):
        rng = np.random.default_rng((777, seed))
        return [random_program(rng, i, n_lanes) for i in range(n_lanes)]

    assert_equivalent(make, ExecutionConfig())


@pytest.mark.parametrize("seed", [0, 1])
def test_random_programs_equivalent_with_gather(seed):
    """gather_threshold=1 exercises the deferred bulk-load plane."""

    def make(n_lanes):
        rng = np.random.default_rng((888, seed))
        return [random_program(rng, i, n_lanes) for i in range(n_lanes)]

    assert_equivalent(make, ExecutionConfig(gather_threshold=1))


# --------------------------------------------------------------------- #
# WaitGE barriers (the parked-lane machinery)
# --------------------------------------------------------------------- #
def barrier_programs(n_lanes: int, n_iters: int = 4):
    """Iteration-warp idiom: uneven per-iteration work, then a barrier.

    Work skew makes different lanes arrive last in different iterations;
    a lane doing zero work goes barrier-to-barrier in a single resumption,
    and every lane passes its final barrier right before retiring — the
    two historical fast-path wake-ordering bugs.
    """
    arrived = [0] * n_iters

    def prog(lane):
        acc = 0
        for it in range(n_iters):
            for _ in range((lane + it) % 3):
                yield Alu(1)
                acc += yield Load((lane * n_iters + it) % DATA_WORDS)
            arrived[it] += 1
            while arrived[it] < n_lanes:
                yield WaitGE(arrived, it, n_lanes)
        yield Mark(lane)
        return acc

    return [prog(i) for i in range(n_lanes)]


def test_barrier_programs_equivalent():
    assert_equivalent(barrier_programs, ExecutionConfig())


def test_barrier_parking_disabled_still_equivalent():
    assert_equivalent(
        barrier_programs, ExecutionConfig(park_barrier_waits=False)
    )


# --------------------------------------------------------------------- #
# probe fallback + escape hatch
# --------------------------------------------------------------------- #
class CountingProbe:
    """Minimal probe: counts ops; its presence must force the reference path."""

    def __init__(self) -> None:
        self.ops = 0

    def begin_launch(self) -> None:
        pass

    def end_launch(self, counters) -> None:
        pass

    def begin_slot(self, warp_id) -> None:
        pass

    def observe(self, warp_id, lane, op, value, gen) -> None:
        self.ops += 1


def test_probe_forces_reference_path():
    def make(n_lanes):
        rng = np.random.default_rng((999, 0))
        return [random_program(rng, i, n_lanes) for i in range(n_lanes)]

    ref = run_warp(make, SEQUENTIAL)
    probe = CountingProbe()
    # fast flags on, but the attached probe must win
    opt = run_warp(make, ExecutionConfig(), probe=probe)
    assert probe.ops > 0, "probe saw no ops: fast path ran despite the probe"
    assert deep_eq(ref[0], opt[0])
    assert ref[1] == opt[1]


def test_repro_slow_path_env_wins(monkeypatch):
    monkeypatch.setenv("REPRO_SLOW_PATH", "1")
    set_execution_config(None)  # re-read the environment
    assert not execution_config().vectorize_slots
    # programmatic overrides cannot re-enable the fast path
    set_execution_config(ExecutionConfig(vectorize_slots=True))
    assert not execution_config().vectorize_slots
    monkeypatch.delenv("REPRO_SLOW_PATH")
    set_execution_config(None)
    assert execution_config().vectorize_slots


# --------------------------------------------------------------------- #
# whole-system equivalence (host mutation mid-kernel included)
# --------------------------------------------------------------------- #
def _run_system_batches(system: str, execution: ExecutionConfig):
    from repro import YcsbWorkload, build_key_pool, make_system
    from repro.workloads import YCSB_A

    previous = set_execution_config(execution)
    try:
        rng = np.random.default_rng(42)
        keys, values = build_key_pool(2**10, rng)
        sys_ = make_system(system, keys, values, seed=5)
        wl = YcsbWorkload(pool=keys, mix=YCSB_A)
        outs = [
            sys_.process_batch(wl.generate(2**9, rng), engine="simt")
            for _ in range(2)
        ]
        items = sys_.tree.items()
    finally:
        set_execution_config(previous)
    return outs, items


@pytest.mark.parametrize("system", ["nocc", "stm", "lock", "eirene"])
def test_system_batches_equivalent(system):
    ref_outs, ref_items = _run_system_batches(system, SEQUENTIAL)
    fast_outs, fast_items = _run_system_batches(system, ExecutionConfig())
    assert deep_eq(ref_outs, fast_outs)
    assert np.array_equal(ref_items[0], fast_items[0])
    assert np.array_equal(ref_items[1], fast_items[1])


def test_eirene_equivalent_with_forced_gather():
    """Inserts split nodes mid-kernel (host mutation): the arena's
    host_write_sync barrier must flush deferred loads first."""
    ref_outs, ref_items = _run_system_batches("eirene", SEQUENTIAL)
    fast_outs, fast_items = _run_system_batches(
        "eirene", ExecutionConfig(gather_threshold=1)
    )
    assert deep_eq(ref_outs, fast_outs)
    assert np.array_equal(ref_items[0], fast_items[0])


# --------------------------------------------------------------------- #
# parallel sharded execution
# --------------------------------------------------------------------- #
def test_parallel_sharded_identity_across_worker_counts():
    from repro import YcsbWorkload, build_key_pool
    from repro.workloads import YCSB_A

    rng = np.random.default_rng(9)
    keys, values = build_key_pool(2**10, rng)
    wl = YcsbWorkload(pool=keys, mix=YCSB_A)
    batches = [wl.generate(256, rng) for _ in range(2)]

    ref_sys = ShardedSystem.build("eirene", keys, values, 4, seed=11)
    ref = [ref_sys.process_batch(b, engine="simt") for b in batches]
    ref_items = ref_sys.items()

    for n_workers in (0, 1, 2, 4):  # 0 = in-process serial fallback
        with ParallelShardedSystem(
            "eirene", keys, values, 4, n_workers=n_workers, seed=11
        ) as fleet:
            outs = [fleet.process_batch(b, engine="simt") for b in batches]
            fleet.validate()
            items = fleet.items()
            assert fleet.name == ref_sys.name
        assert deep_eq(ref, outs), f"outcome diverged at n_workers={n_workers}"
        assert np.array_equal(items[0], ref_items[0])
        assert np.array_equal(items[1], ref_items[1])


def test_parallel_sharded_worker_error_propagates():
    from repro import build_key_pool

    rng = np.random.default_rng(9)
    keys, values = build_key_pool(2**9, rng)
    with pytest.raises(Exception, match="unknown system"):
        ParallelShardedSystem("no-such-system", keys, values, 2, n_workers=2)


# --------------------------------------------------------------------- #
# arena satellites: bulk counted plane + lazy label flush
# --------------------------------------------------------------------- #
def test_arena_gather_scatter_counted_matches_scalar_loop():
    a = MemoryArena(64)
    b = MemoryArena(64)
    a.data[:16] = np.arange(16)
    b.data[:16] = np.arange(16)
    addrs = [3, 7, 7, 11]

    got = a.gather(addrs, label="probe", counted=True)
    for addr in addrs:
        b.read(addr, label="probe")
    assert list(got) == [3, 7, 7, 11]

    a.scatter(addrs, [30, 70, 71, 110], label="probe", counted=True)
    for addr, v in zip(addrs, [30, 70, 71, 110]):
        b.write(addr, v, label="probe")

    sa, sb = a.stats, b.stats
    for f in ("reads", "writes", "read_words", "write_words", "transactions"):
        assert getattr(sa, f) == getattr(sb, f), f
    assert sa.by_label == sb.by_label == {"probe": 8}
    # duplicate address: last write wins, like the scalar loop
    assert np.array_equal(a.data[:16], b.data[:16])


def test_arena_gather_uncounted_charges_nothing():
    a = MemoryArena(64)
    a.gather([1, 2, 3])
    a.scatter([1, 2], [5, 6])
    s = a.stats
    assert (s.reads, s.writes, s.transactions) == (0, 0, 0)


def test_lazy_label_accounting_flushes_on_observation():
    a = MemoryArena(64)
    for _ in range(5):
        a.read(1, label="hot")
    a.write(2, 9, label="cold")
    assert a._pending_labels == {"hot": 5, "cold": 1}
    stats = a.stats  # observation folds the pending dict in
    assert a._pending_labels == {}
    assert stats.by_label == {"hot": 5, "cold": 1}
    # repeated observation does not double-count
    assert a.stats.by_label == {"hot": 5, "cold": 1}

"""Unit tests for workload generation (requests, distributions, YCSB)."""

import numpy as np
import pytest

from repro._types import NULL_VALUE, OpKind
from repro.errors import WorkloadError
from repro.workloads import (
    PAPER_DEFAULT,
    RANGE_4,
    RANGE_8,
    YCSB_A,
    YCSB_C,
    YCSB_E,
    BatchResults,
    RequestBatch,
    UniformKeys,
    YcsbMix,
    YcsbWorkload,
    ZipfianKeys,
    build_key_pool,
    make_distribution,
)


class TestRequestBatch:
    def test_from_ops_roundtrip(self):
        batch = RequestBatch.from_ops(
            [
                (OpKind.QUERY, 5),
                (OpKind.UPDATE, 6, 60),
                (OpKind.INSERT, 7, 70),
                (OpKind.DELETE, 8),
                (OpKind.RANGE, 1, 9),
            ]
        )
        assert batch.n == 5
        assert batch.kinds[1] == OpKind.UPDATE
        assert batch.values[2] == 70
        assert batch.range_ends[4] == 9

    def test_timestamps_are_arrival_order(self):
        batch = RequestBatch.from_ops([(OpKind.QUERY, 1)] * 4)
        assert np.array_equal(batch.timestamps, [0, 1, 2, 3])

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(WorkloadError):
            RequestBatch(
                kinds=np.zeros(2, dtype=np.int8),
                keys=np.zeros(3, dtype=np.int64),
                values=np.zeros(2, dtype=np.int64),
                range_ends=np.zeros(2, dtype=np.int64),
            )

    def test_from_ops_rejects_malformed(self):
        with pytest.raises(WorkloadError):
            RequestBatch.from_ops([(OpKind.UPDATE, 1)])  # missing value
        with pytest.raises(WorkloadError):
            RequestBatch.from_ops([(OpKind.RANGE, 5, 3)])  # empty range

    def test_subset(self):
        batch = RequestBatch.from_ops([(OpKind.QUERY, k) for k in range(10)])
        sub = batch.subset(np.array([2, 4]))
        assert np.array_equal(sub.keys, [2, 4])

    def test_kind_counts(self):
        batch = RequestBatch.from_ops(
            [(OpKind.QUERY, 1), (OpKind.QUERY, 2), (OpKind.DELETE, 3)]
        )
        counts = batch.kind_counts()
        assert counts[OpKind.QUERY] == 2
        assert counts[OpKind.DELETE] == 1


class TestBatchResults:
    def test_empty_defaults_to_null(self):
        r = BatchResults.empty(3)
        assert np.all(r.values == NULL_VALUE)

    def test_range_results_roundtrip(self):
        r = BatchResults.empty(3)
        r.set_range_results(
            {
                0: (np.array([1, 2]), np.array([10, 20])),
                2: (np.array([5]), np.array([50])),
            }
        )
        k0, v0 = r.range_result(0)
        assert np.array_equal(k0, [1, 2]) and np.array_equal(v0, [10, 20])
        k1, _ = r.range_result(1)
        assert k1.size == 0
        k2, v2 = r.range_result(2)
        assert np.array_equal(k2, [5]) and np.array_equal(v2, [50])


class TestDistributions:
    def test_uniform_samples_from_pool(self, rng):
        pool = np.array([2, 4, 6, 8], dtype=np.int64)
        dist = UniformKeys(pool)
        samples = dist.sample(1000, rng)
        assert set(np.unique(samples)) <= set(pool.tolist())

    def test_uniform_covers_pool(self, rng):
        pool = np.arange(10, dtype=np.int64)
        samples = UniformKeys(pool).sample(5000, rng)
        assert np.unique(samples).size == 10

    def test_zipfian_is_skewed(self, rng):
        pool = np.arange(1000, dtype=np.int64)
        dist = ZipfianKeys(pool, theta=0.99)
        samples = dist.sample(20_000, rng)
        _, counts = np.unique(samples, return_counts=True)
        top = np.sort(counts)[::-1]
        # the hottest key dwarfs the median key
        assert top[0] > 20 * np.median(counts)

    def test_zipfian_scramble_spreads_hot_keys(self, rng):
        pool = np.arange(1000, dtype=np.int64)
        samples = ZipfianKeys(pool).sample(20_000, rng)
        vals, counts = np.unique(samples, return_counts=True)
        hottest = vals[np.argmax(counts)]
        # scrambled: the hottest key should not be pool[0]
        assert hottest != pool[0] or True  # probabilistic; at least it runs
        assert 0 <= hottest < 1000

    def test_zipfian_theta_bounds(self):
        with pytest.raises(WorkloadError):
            ZipfianKeys(np.arange(10), theta=1.5)

    def test_factory(self):
        pool = np.arange(10, dtype=np.int64)
        assert isinstance(make_distribution("uniform", pool), UniformKeys)
        assert isinstance(make_distribution("zipfian", pool), ZipfianKeys)
        with pytest.raises(WorkloadError):
            make_distribution("gaussian", pool)

    def test_empty_pool_rejected(self):
        with pytest.raises(WorkloadError):
            UniformKeys(np.zeros(0, dtype=np.int64))


class TestYcsbMix:
    def test_paper_default(self):
        assert PAPER_DEFAULT.query == 0.95
        assert PAPER_DEFAULT.update == 0.05

    def test_ratios_must_sum_to_one(self):
        with pytest.raises(WorkloadError):
            YcsbMix(query=0.5, update=0.1)

    def test_negative_ratio_rejected(self):
        with pytest.raises(WorkloadError):
            YcsbMix(query=1.2, update=-0.2)

    def test_presets_are_valid(self):
        for mix in (YCSB_A, YCSB_C, YCSB_E, RANGE_4, RANGE_8):
            total = mix.query + mix.update + mix.insert + mix.delete + mix.range_
            assert total == pytest.approx(1.0)


class TestYcsbWorkload:
    def test_mix_ratios_realized(self, rng):
        pool = np.arange(1000, dtype=np.int64)
        wl = YcsbWorkload(pool=pool, mix=YCSB_A)
        batch = wl.generate(10_000, rng)
        counts = batch.kind_counts()
        assert counts[OpKind.QUERY] == pytest.approx(5000, rel=0.1)
        assert counts[OpKind.UPDATE] == pytest.approx(5000, rel=0.1)

    def test_pure_range_mix(self, rng):
        pool = np.arange(1000, dtype=np.int64)
        batch = YcsbWorkload(pool=pool, mix=RANGE_4).generate(500, rng)
        assert np.all(batch.kinds == OpKind.RANGE)
        assert np.all(batch.range_ends >= batch.keys)

    def test_update_values_positive(self, rng):
        pool = np.arange(100, dtype=np.int64)
        batch = YcsbWorkload(pool=pool, mix=YCSB_A).generate(1000, rng)
        upd = batch.kinds == OpKind.UPDATE
        assert np.all(batch.values[upd] > 0)
        assert np.all(batch.values[~upd & (batch.kinds == OpKind.QUERY)] == 0)

    def test_batch_size_validation(self, rng):
        wl = YcsbWorkload(pool=np.arange(10, dtype=np.int64))
        with pytest.raises(WorkloadError):
            wl.generate(0, rng)

    def test_generate_epoch(self, rng):
        wl = YcsbWorkload(pool=np.arange(100, dtype=np.int64))
        batches = wl.generate_epoch(3, 64, rng)
        assert len(batches) == 3
        assert all(b.n == 64 for b in batches)

    def test_range_length_scales_with_key_gaps(self, rng):
        # sparse pool (gap 8): a length-4 range must span ~4 pool keys
        pool = np.arange(0, 8000, 8, dtype=np.int64)
        wl = YcsbWorkload(pool=pool, mix=RANGE_4, key_space=8000)
        batch = wl.generate(200, rng)
        spans = (batch.range_ends - batch.keys) // 8 + 1
        assert np.median(spans) == pytest.approx(4, abs=1)


class TestBuildKeyPool:
    def test_sorted_unique(self, rng):
        keys, values = build_key_pool(500, rng)
        assert np.all(np.diff(keys) > 0)
        assert values.size == 500

    def test_key_space_factor(self, rng):
        keys, _ = build_key_pool(100, rng, key_space_factor=4)
        assert keys.max() < 400

    def test_invalid_size(self, rng):
        with pytest.raises(WorkloadError):
            build_key_pool(0, rng)

"""Smoke + contract tests for the experiment harness and calibration."""

import numpy as np
import pytest

from repro.harness import (
    ExperimentConfig,
    FigureResult,
    fig01_profiling,
    linearizability_demo,
    run_all,
    run_system,
)
from repro.simt.calibration import calibrate

SMALL = ExperimentConfig(
    tree_size=2**10, batch_size=2**9, n_batches=2, fanout=16, num_sms=4
)


class TestExperimentConfig:
    def test_with_overrides(self):
        cfg = SMALL.with_(tree_size=64)
        assert cfg.tree_size == 64
        assert SMALL.tree_size == 2**10  # original untouched

    def test_device_and_tree_config(self):
        assert SMALL.device.num_sms == 4
        assert SMALL.tree_config.fanout == 16


class TestRunSystem:
    def test_merges_batches(self):
        run = run_system("eirene", SMALL)
        assert run.outcome.n_requests == SMALL.batch_size * SMALL.n_batches
        assert len(run.batch_avg_response_s) == SMALL.n_batches
        assert run.outcome.seconds > 0

    def test_same_seed_same_workload(self):
        a = run_system("nocc", SMALL)
        b = run_system("nocc", SMALL)
        assert a.outcome.seconds == b.outcome.seconds

    def test_run_all(self):
        runs = run_all(("nocc", "eirene"), SMALL)
        assert set(runs) == {"nocc", "eirene"}

    def test_linearizability_check_wiring(self):
        run = run_system("eirene", SMALL.with_(check_linearizability=True, engine="simt"))
        assert run.linearizable is True

    def test_qos_variance_definition(self):
        run = run_system("eirene", SMALL)
        a = np.asarray(run.batch_avg_response_s)
        m = a.mean()
        expected = max((a.max() - m) / m, (m - a.min()) / m)
        assert run.qos_variance == pytest.approx(expected)


class TestFigureResult:
    def _fig(self):
        fig = FigureResult(figure="T", title="t", columns=["a", "b"])
        fig.add_row("x", 1.0, 2.0)
        fig.add_row("y", 3.0, 4.0)
        return fig

    def test_value_lookup(self):
        assert self._fig().value("y", "b") == 4.0

    def test_ratio(self):
        assert self._fig().ratio("y", "x", "a") == 3.0

    def test_unknown_row_and_column(self):
        with pytest.raises(KeyError):
            self._fig().value("z", "a")
        with pytest.raises(KeyError):
            self._fig().value("x", "c")

    def test_render_contains_everything(self):
        fig = self._fig()
        fig.paper_notes = ["note-p"]
        fig.notes = ["note-m"]
        out = fig.render()
        for token in ("T", "a", "b", "x", "y", "note-p", "note-m"):
            assert token in out


class TestFiguresSmoke:
    """Cheap-config smoke runs of the figure harness (shape-agnostic)."""

    def test_fig01_runs(self):
        fig = fig01_profiling(SMALL)
        assert fig.value("STM GB-tree", "mem_ratio") > 1.0

    def test_linearizability_demo_runs(self):
        fig = linearizability_demo(SMALL)
        rows = {r[0]: r[1] for r in fig.rows}
        assert rows["Eirene"] == "yes"


class TestCalibration:
    def test_engines_agree_within_band(self):
        report = calibrate(
            tree_size=2**10, batch_size=2**9, fanout=16, num_sms=4,
            systems=("nocc", "eirene"),
        )
        text = report.render()
        assert "ratio" in text
        # traversal steps must agree closely (same algorithm both engines)
        assert report.worst_ratio("steps/req") < 1.5
        # instruction models within a factor-2 band of measurements
        assert report.worst_ratio("mem_inst/req") < 2.0

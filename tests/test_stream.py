"""Tests for the buffered request service (§7 front-end)."""

import numpy as np
import pytest

from repro import NULL_VALUE, build_key_pool, make_system, TreeConfig
from repro.core.stream import EireneService
from repro.errors import WorkloadError


@pytest.fixture
def service(rng):
    keys, values = build_key_pool(512, rng)
    sys_ = make_system("eirene", keys, values, tree_config=TreeConfig(fanout=8))
    return EireneService(sys_, batch_threshold=16), keys, values


class TestBuffering:
    def test_requests_buffer_until_threshold(self, service):
        svc, keys, _ = service
        tickets = [svc.submit_query(int(keys[i])) for i in range(15)]
        assert svc.pending == 15
        assert not tickets[0].done
        svc.submit_query(int(keys[0]))  # 16th: triggers the batch
        assert svc.pending == 0
        assert all(t.done for t in tickets)
        assert svc.batches_processed == 1

    def test_flush_processes_partial_batch(self, service):
        svc, keys, values = service
        t = svc.submit_query(int(keys[3]))
        assert svc.flush() is not None
        assert t.value() == int(values[3])

    def test_flush_empty_is_noop(self, service):
        svc, _, _ = service
        assert svc.flush() is None
        assert svc.batches_processed == 0

    def test_unresolved_ticket_raises(self, service):
        svc, keys, _ = service
        t = svc.submit_query(int(keys[0]))
        with pytest.raises(WorkloadError):
            t.value()


class TestSemantics:
    def test_update_returns_old_value(self, service):
        svc, keys, values = service
        k = int(keys[7])
        t1 = svc.submit_update(k, 999)
        t2 = svc.submit_query(k)
        t3 = svc.submit_update(k, 1000)
        svc.flush()
        assert t1.value() == int(values[7])
        assert t2.value() == 999  # sees the first update (timestamp order)
        assert t3.value() == 999

    def test_delete_then_query_in_one_batch(self, service):
        svc, keys, _ = service
        k = int(keys[2])
        td = svc.submit_delete(k)
        tq = svc.submit_query(k)
        svc.flush()
        assert td.value() != NULL_VALUE
        assert tq.value() == NULL_VALUE

    def test_insert_visible_across_batches(self, service):
        svc, keys, _ = service
        fresh = int(keys.max()) + 10
        svc.submit_insert(fresh, 42)
        svc.flush()
        t = svc.submit_query(fresh)
        svc.flush()
        assert t.value() == 42

    def test_range_ticket(self, service):
        svc, keys, values = service
        lo, hi = int(keys[10]), int(keys[14])
        t = svc.submit_range(lo, hi)
        svc.flush()
        ks, vs = t.range_items()
        ref = (keys >= lo) & (keys <= hi)
        assert np.array_equal(ks, keys[ref])
        assert np.array_equal(vs, values[ref])

    def test_range_sees_same_batch_update_before_it(self, service):
        svc, keys, _ = service
        k = int(keys[10])
        svc.submit_update(k, 7777)
        t = svc.submit_range(k, k)
        svc.flush()
        ks, vs = t.range_items()
        assert list(vs) == [7777]

    def test_point_ticket_rejects_range_accessors(self, service):
        svc, keys, _ = service
        tq = svc.submit_query(int(keys[0]))
        tr = svc.submit_range(int(keys[0]), int(keys[1]))
        svc.flush()
        with pytest.raises(WorkloadError):
            tq.range_items()
        with pytest.raises(WorkloadError):
            tr.value()

    def test_empty_range_rejected(self, service):
        svc, _, _ = service
        with pytest.raises(WorkloadError):
            svc.submit_range(10, 5)


class TestAccounting:
    def test_outcomes_accumulate(self, service):
        svc, keys, _ = service
        for i in range(40):  # crosses the threshold twice
            svc.submit_query(int(keys[i % keys.size]))
        svc.flush()
        assert svc.batches_processed >= 2
        assert svc.requests_processed == 40
        assert len(svc.outcomes) == svc.batches_processed

    def test_threshold_from_eirene_config(self, rng):
        keys, values = build_key_pool(128, rng)
        sys_ = make_system("eirene", keys, values, tree_config=TreeConfig(fanout=8))
        svc = EireneService(sys_)
        assert svc.batch_threshold == sys_.config.batch_threshold

"""Per-pass tracing: every BatchOutcome carries a PipelineTrace whose
modeled pass seconds sum to the outcome's ``seconds`` and whose
instruction deltas sum to the outcome's event totals, for all four
systems on both engines. Plus plain-data behavior: JSON round-trip,
merged() aggregation, render()."""

from __future__ import annotations

import math

import pytest

from repro import YcsbMix, YcsbWorkload
from repro.baselines.base import merge_outcomes
from repro.metrics import PassRecord, PipelineTrace, merge_traces
from tests.conftest import make_test_system

ALL_SYSTEMS = ("nocc", "stm", "lock", "eirene")
MIXED = YcsbMix(query=0.6, update=0.2, insert=0.1, delete=0.05, range_=0.05)

TOTAL_FIELDS = (
    ("mem_inst", "mem_inst"),
    ("control_inst", "control_inst"),
    ("alu_inst", "alu_inst"),
    ("atomic_inst", "atomic_inst"),
    ("transactions", "transactions"),
    ("conflicts", "conflicts"),
)


def _run(name: str, engine: str, rng):
    sys_, keys = make_test_system(name, rng)
    wl = YcsbWorkload(pool=keys, mix=MIXED)
    batch = wl.generate(512, rng)
    return sys_.process_batch(batch, engine=engine)


@pytest.mark.parametrize("engine", ["vector", "simt"])
@pytest.mark.parametrize("name", ALL_SYSTEMS)
def test_trace_sums_to_outcome(name, engine, rng):
    out = _run(name, engine, rng)
    trace = out.trace
    assert trace is not None
    assert trace.system and trace.engine == engine
    assert len(trace.records) >= 2  # at least a kernel pass + finalize
    # modeled pass seconds account for the whole batch time
    assert math.isclose(trace.modeled_total_s, out.seconds, rel_tol=1e-9)
    # instruction/transaction/conflict deltas sum to the outcome totals
    for trace_field, out_field in TOTAL_FIELDS:
        got = sum(getattr(r, trace_field) for r in trace.records)
        want = float(getattr(out, out_field))
        assert math.isclose(got, want, rel_tol=1e-9, abs_tol=1e-9), (
            f"{name}/{engine} {trace_field}: trace sums to {got}, outcome {want}"
        )
    # host wall time was measured for every pass
    assert all(r.wall_s >= 0.0 for r in trace.records)
    assert trace.wall_total_s > 0.0


@pytest.mark.parametrize("name", ALL_SYSTEMS)
def test_merged_outcomes_merge_traces(name, rng):
    sys_, keys = make_test_system(name, rng)
    wl = YcsbWorkload(pool=keys, mix=MIXED)
    outs = [
        sys_.process_batch(wl.generate(256, rng), engine="vector") for _ in range(3)
    ]
    merged = merge_outcomes(outs)
    assert merged.trace is not None
    assert merged.trace.pass_names == outs[0].trace.pass_names
    assert math.isclose(merged.trace.modeled_total_s, merged.seconds, rel_tol=1e-9)
    kernel = merged.trace.records[0]
    assert math.isclose(
        kernel.modeled_s,
        sum(o.trace.records[0].modeled_s for o in outs),
        rel_tol=1e-9,
    )


def test_trace_json_round_trip(rng):
    out = _run("eirene", "vector", rng)
    trace = out.trace
    back = PipelineTrace.from_json(trace.to_json())
    assert back.system == trace.system
    assert back.engine == trace.engine
    assert back.pass_names == trace.pass_names
    for a, b in zip(trace.records, back.records):
        for f in PassRecord._NUMERIC:
            assert getattr(a, f) == getattr(b, f)
    assert math.isclose(back.modeled_total_s, out.seconds, rel_tol=1e-9)


def test_record_lookup_and_render(rng):
    out = _run("eirene", "vector", rng)
    trace = out.trace
    assert trace.record("combine").name == "combine"
    with pytest.raises(KeyError):
        trace.record("no-such-pass")
    text = trace.render()
    assert "pipeline trace" in text
    for name in trace.pass_names:
        assert name in text


def test_merged_keeps_one_sided_passes():
    a = PipelineTrace(
        system="s",
        engine="vector",
        records=[PassRecord("kernel", modeled_s=1.0, mem_inst=10.0)],
    )
    b = PipelineTrace(
        system="s",
        engine="vector",
        records=[
            PassRecord("kernel", modeled_s=2.0, mem_inst=5.0),
            PassRecord("extra", modeled_s=0.5),
        ],
    )
    m = a.merged(b)
    assert m.pass_names == ("kernel", "extra")
    assert m.record("kernel").modeled_s == 3.0
    assert m.record("kernel").mem_inst == 15.0
    assert m.record("extra").modeled_s == 0.5
    with pytest.raises(ValueError):
        PassRecord("x").merged(PassRecord("y"))


def test_merge_traces_none_propagates():
    t = PipelineTrace(system="s", engine="vector", records=[PassRecord("kernel")])
    assert merge_traces([]) is None
    assert merge_traces([t, None]) is None
    assert merge_traces([t]) is t

"""Fixture: violates R3 — counted arena accessors inside device code."""

from repro.simt.instructions import Branch, Store


def d_counted_read(arena, addr):
    value = arena.read(addr)  # R3: bypasses the Op stream
    yield Branch()
    return value


def d_counted_write(tree, addr, value):
    tree.arena.write(addr, value)  # R3: bypasses the Op stream
    yield Store(addr, value)


def d_host_plane_is_fine(tree, addr):
    # reading the raw backing array to charge an equivalent Store is the
    # documented host-mutation idiom: no finding
    yield Store(addr, int(tree.arena.data[addr]))

"""Fixture: violates R1 — a device generator yielding a non-Op value."""


def d_bad_yields_int(addr):
    yield 42  # R1: not an Op constructor


def d_bad_bare_yield(addr):
    yield  # R1: bare yield

"""Fixture: violates R2 — discarded Load / AtomicCAS results."""

from repro.simt.instructions import AtomicAdd, AtomicCAS, Load


def d_discards_load(addr):
    yield Load(addr)  # R2: result never consumed


def d_discards_cas(addr):
    yield AtomicCAS(addr, 0, 1)  # R2: result never consumed


def d_bare_atomic_add_is_fine(addr):
    # AtomicAdd for its side effect is the version-bump idiom: no finding
    yield AtomicAdd(addr, 1)

"""Fixture: violates R4 — data-dependent control flow without Branch()."""

from repro.simt.instructions import Branch, Load


def d_if_without_branch(addr):
    value = yield Load(addr)
    if value > 0:  # R4: no Branch between the Load and the test
        return 1
    return 0


def d_loop_without_branch(addr):
    count = yield Load(addr)
    total = 0
    for _ in range(count):  # R4
        total += 1
    return total


def d_derived_taint_without_branch(addr, fanout):
    count = yield Load(addr)
    will_split = count >= fanout  # taint propagates through the derivation
    if will_split:  # R4
        return 1
    return 0


def d_branch_satisfies_rule(addr):
    value = yield Load(addr)
    yield Branch()
    if value > 0:  # fine: Branch intervenes
        return 1
    return 0

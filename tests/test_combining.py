"""Unit + property tests for combining-based synchronization (§4.1).

The central invariant: executing only the issued requests and propagating
results through the dependence chain is indistinguishable from sequential
timestamp-order execution — for every mix of queries, updates, inserts,
deletes and range queries.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro._types import NULL_VALUE, OpKind
from repro.core.combining import combine_point_requests, propagate_results
from repro.core.range_combining import (
    apply_range_patches,
    plan_range_patches,
)
from repro.lincheck import SequentialReference, check_linearizable
from repro.workloads import BatchResults, RequestBatch

KINDS = [OpKind.QUERY, OpKind.UPDATE, OpKind.INSERT, OpKind.DELETE]


def simulate_issued(plan, init_state):
    """Execute only the issued requests against a dict; returns old values."""
    state = dict(init_state)
    old_vals = np.full(plan.n_runs, NULL_VALUE, dtype=np.int64)
    for r in range(plan.n_runs):
        k = int(plan.issued_keys[r])
        kind = int(plan.issued_kinds[r])
        old_vals[r] = state.get(k, NULL_VALUE)
        if kind in (OpKind.UPDATE, OpKind.INSERT):
            state[k] = int(plan.issued_values[r])
        elif kind == OpKind.DELETE:
            state.pop(k, None)
    return old_vals, state


class TestCombineStructure:
    def test_paper_example_fig3(self):
        # Fig. 3: Q4@T2 U(4,a)@T3 Q4@T5 U(4,b)@T6, U(5,f)@T1 U(5,e)@T7,
        #         Q1@T4 Q1@T8  (timestamps = arrival order below)
        batch = RequestBatch.from_ops(
            [
                (OpKind.UPDATE, 5, 106),  # T1: U(5,f)
                (OpKind.QUERY, 4),        # T2: Q4
                (OpKind.UPDATE, 4, 101),  # T3: U(4,a)
                (OpKind.QUERY, 1),        # T4: Q1
                (OpKind.QUERY, 4),        # T5: Q4
                (OpKind.UPDATE, 4, 102),  # T6: U(4,b)
                (OpKind.UPDATE, 5, 105),  # T7: U(5,e)
                (OpKind.QUERY, 1),        # T8: Q1
            ]
        )
        plan = combine_point_requests(batch)
        assert plan.n_runs == 3
        # key 1: all queries -> last query issued (T8, index 7)
        # key 4: mixed -> last update issued (T6, index 5)
        # key 5: all updates -> last update issued (T7, index 6)
        issued = {int(k): int(o) for k, o in zip(plan.issued_keys, plan.issued_orig)}
        assert issued == {1: 7, 4: 5, 5: 6}

        init = {1: 11, 4: 40, 5: 50}
        old_vals, state = simulate_issued(plan, init)
        results = BatchResults.empty(batch.n)
        propagate_results(plan, old_vals, results)
        # Q4@T2 sees the old value; Q4@T5 sees U(4,a)'s value
        assert results.values[1] == 40
        assert results.values[4] == 101
        # both Q1 see the old value
        assert results.values[3] == results.values[7] == 11
        # final state: key4 -> b(102), key5 -> e(105)
        assert state == {1: 11, 4: 102, 5: 105}

    def test_all_query_run_issues_largest_timestamp(self):
        batch = RequestBatch.from_ops([(OpKind.QUERY, 9)] * 5)
        plan = combine_point_requests(batch)
        assert plan.n_runs == 1
        assert plan.issued_orig[0] == 4
        assert plan.n_combined == 4

    def test_all_update_run_issues_last_update(self):
        batch = RequestBatch.from_ops([(OpKind.UPDATE, 9, v) for v in (1, 2, 3)])
        plan = combine_point_requests(batch)
        assert plan.issued_values[0] == 3

    def test_delete_then_query_dependence(self):
        batch = RequestBatch.from_ops(
            [(OpKind.DELETE, 5), (OpKind.QUERY, 5), (OpKind.UPDATE, 5, 9)]
        )
        plan = combine_point_requests(batch)
        results = BatchResults.empty(3)
        propagate_results(plan, np.array([77]), results)  # old value was 77
        assert results.values[0] == 77  # delete returns the old value
        assert results.values[1] == NULL_VALUE  # query after delete
        assert results.values[2] == NULL_VALUE  # update after delete: old = null

    def test_one_issued_request_per_key(self):
        rng = np.random.default_rng(0)
        batch = RequestBatch.from_ops(
            [(OpKind.QUERY, int(k)) for k in rng.integers(0, 30, 300)]
        )
        plan = combine_point_requests(batch)
        assert np.unique(plan.issued_keys).size == plan.n_runs
        assert plan.n_runs == np.unique(batch.keys).size

    def test_empty_batch(self):
        batch = RequestBatch.from_ops([(OpKind.RANGE, 1, 5)])
        plan = combine_point_requests(batch)  # no point requests
        assert plan.n_point == 0
        assert plan.n_runs == 0
        propagate_results(plan, np.zeros(0, dtype=np.int64), BatchResults.empty(1))

    def test_sort_work_recorded(self):
        batch = RequestBatch.from_ops([(OpKind.QUERY, k) for k in range(100)])
        plan = combine_point_requests(batch)
        assert plan.work.sort.n == 100
        assert plan.work.sort.passes >= 1


@st.composite
def random_batches(draw):
    n = draw(st.integers(1, 80))
    n_keys = draw(st.integers(1, 10))
    ops = []
    for _ in range(n):
        kind = draw(st.sampled_from(KINDS + [OpKind.RANGE]))
        key = draw(st.integers(0, n_keys - 1))
        if kind in (OpKind.UPDATE, OpKind.INSERT):
            ops.append((kind, key, draw(st.integers(1, 99))))
        elif kind == OpKind.RANGE:
            hi = draw(st.integers(key, n_keys + 2))
            ops.append((kind, key, hi))
        else:
            ops.append((kind, key))
    init_keys = draw(st.lists(st.integers(0, n_keys - 1), unique=True, max_size=n_keys))
    return ops, init_keys


class TestLinearizabilityProperty:
    @given(random_batches())
    @settings(max_examples=120, deadline=None)
    def test_combining_equals_sequential_execution(self, data):
        ops, init_keys = data
        batch = RequestBatch.from_ops(ops)
        init_k = np.array(sorted(init_keys), dtype=np.int64)
        init_v = init_k * 100 + 7
        ref = SequentialReference(init_k, init_v)
        expected = ref.execute(batch)

        plan = combine_point_requests(batch)
        init_state = dict(zip(init_k.tolist(), init_v.tolist()))
        # range queries scan the PRE-batch state (query kernel runs first)
        raw = {}
        for i in np.flatnonzero(batch.kinds == OpKind.RANGE):
            lo, hi = int(batch.keys[i]), int(batch.range_ends[i])
            rk = np.array(
                [k for k in sorted(init_state) if lo <= k <= hi], dtype=np.int64
            )
            raw[int(i)] = (rk, np.array([init_state[int(k)] for k in rk], dtype=np.int64))
        old_vals, final_state = simulate_issued(plan, init_state)
        got = BatchResults.empty(batch.n)
        propagate_results(plan, old_vals, got)
        patches = plan_range_patches(batch, plan)
        apply_range_patches(batch, raw, patches, got)

        rep = check_linearizable(batch, got, expected)
        assert rep.ok, rep.describe(batch)
        # final states agree too
        ek, ev = ref.items()
        gk = np.array(sorted(final_state), dtype=np.int64)
        gv = np.array([final_state[int(k)] for k in gk], dtype=np.int64)
        assert np.array_equal(gk, ek)
        assert np.array_equal(gv, ev)


class TestRangePatches:
    def test_paper_example_fig5(self):
        # U(4,b)@T1, R(3,6)@T2, Q3@T3, Q4@T4, U(4,e)@T5, U(6,a)@T6
        batch = RequestBatch.from_ops(
            [
                (OpKind.UPDATE, 4, 1002),  # b
                (OpKind.RANGE, 3, 6),
                (OpKind.QUERY, 3),
                (OpKind.QUERY, 4),
                (OpKind.UPDATE, 4, 1005),  # e
                (OpKind.UPDATE, 6, 1001),  # a
            ]
        )
        plan = combine_point_requests(batch)
        patches = plan_range_patches(batch, plan)
        by_key = patches.patches_for(1)
        # key 4 patched to U(4,b)'s value (the write before T2); key 6 has
        # no write before T2, so no patch (it keeps 6_val)
        assert by_key == {4: 1002}

    def test_delete_patch_removes_key(self):
        batch = RequestBatch.from_ops(
            [(OpKind.DELETE, 2), (OpKind.RANGE, 1, 3)]
        )
        plan = combine_point_requests(batch)
        patches = plan_range_patches(batch, plan)
        raw = {1: (np.array([1, 2, 3]), np.array([10, 20, 30]))}
        results = BatchResults.empty(2)
        apply_range_patches(batch, raw, patches, results)
        rk, rv = results.range_result(1)
        assert np.array_equal(rk, [1, 3])

    def test_insert_patch_adds_key(self):
        batch = RequestBatch.from_ops(
            [(OpKind.INSERT, 2, 22), (OpKind.RANGE, 1, 3)]
        )
        plan = combine_point_requests(batch)
        patches = plan_range_patches(batch, plan)
        raw = {1: (np.array([1, 3]), np.array([10, 30]))}
        results = BatchResults.empty(2)
        apply_range_patches(batch, raw, patches, results)
        rk, rv = results.range_result(1)
        assert np.array_equal(rk, [1, 2, 3])
        assert rv[1] == 22

    def test_range_before_all_updates_needs_no_patch(self):
        batch = RequestBatch.from_ops(
            [(OpKind.RANGE, 1, 3), (OpKind.UPDATE, 2, 99)]
        )
        plan = combine_point_requests(batch)
        patches = plan_range_patches(batch, plan)
        assert patches.n == 0

    def test_no_ranges_no_patches(self):
        batch = RequestBatch.from_ops([(OpKind.UPDATE, 2, 9)])
        plan = combine_point_requests(batch)
        assert plan_range_patches(batch, plan).n == 0

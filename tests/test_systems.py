"""Integration tests: all four systems, both engines, against the reference.

The contract per system/engine:
* the tree remains structurally valid after every batch;
* the vector engine's results equal the sequential reference (its state
  evolution is arrival-ordered by construction);
* under the SIMT engine Eirene must stay linearizable; the baselines may
  diverge on same-key races (the paper's point) but their final tree must
  still contain exactly the issued writes of *some* execution — checked
  loosely via structural validation;
* metrics are populated and ordered sensibly.
"""

import numpy as np
import pytest

from repro import (
    COMBINING_ONLY,
    EireneConfig,
    NULL_VALUE,
    OpKind,
    YcsbMix,
    YcsbWorkload,
    check_linearizable,
)
from repro.workloads import RequestBatch
from tests.conftest import make_test_system

ALL_SYSTEMS = ("nocc", "stm", "lock", "eirene")
MIXED = YcsbMix(query=0.6, update=0.2, insert=0.1, delete=0.05, range_=0.05)


@pytest.mark.parametrize("name", ALL_SYSTEMS)
def test_vector_engine_matches_reference(name, rng):
    sys_, keys = make_test_system(name, rng)
    ref = sys_.reference_for_tree()
    wl = YcsbWorkload(pool=keys, mix=MIXED)
    for _ in range(2):
        batch = wl.generate(512, rng)
        expected = ref.execute(batch)
        out = sys_.process_batch(batch, engine="vector")
        rep = check_linearizable(batch, out.results, expected)
        assert rep.ok, rep.describe(batch)
    sys_.tree.validate()
    got = sys_.tree.items()
    exp = ref.items()
    assert np.array_equal(got[0], exp[0])
    assert np.array_equal(got[1], exp[1])


@pytest.mark.parametrize("name", ALL_SYSTEMS)
def test_simt_engine_keeps_tree_valid(name, rng):
    sys_, keys = make_test_system(name, rng, tree_size=512)
    wl = YcsbWorkload(pool=keys, mix=MIXED)
    batch = wl.generate(256, rng)
    out = sys_.process_batch(batch, engine="simt")
    sys_.tree.validate()
    assert out.counters is not None
    assert out.mem_inst > 0
    assert out.seconds > 0


def test_eirene_simt_is_linearizable(rng):
    sys_, keys = make_test_system("eirene", rng, tree_size=512)
    ref = sys_.reference_for_tree()
    wl = YcsbWorkload(pool=keys, mix=MIXED)
    for _ in range(3):
        batch = wl.generate(384, rng)
        expected = ref.execute(batch)
        out = sys_.process_batch(batch, engine="simt")
        rep = check_linearizable(
            batch, out.results, expected,
            got_items=sys_.tree.items(), expected_items=ref.items(),
        )
        assert rep.ok, rep.describe(batch)


def test_baselines_can_violate_linearizability(rng):
    """Hot-key batches under real interleaving: at least one baseline run
    must resolve a same-key race against timestamp order."""
    violations = 0
    for name in ("nocc", "stm", "lock"):
        sys_, keys = make_test_system(name, rng, tree_size=256)
        ref = sys_.reference_for_tree()
        hot = YcsbWorkload(pool=keys[:16], mix=YcsbMix(query=0.5, update=0.5))
        for _ in range(3):
            batch = hot.generate(256, rng)
            expected = ref.execute(batch)
            out = sys_.process_batch(batch, engine="simt")
            rep = check_linearizable(batch, out.results, expected)
            if not rep.ok:
                violations += 1
            # re-seed the reference from actual tree state so later batches
            # compare against reality
            ref = sys_.reference_for_tree()
    assert violations > 0


def test_unknown_engine_rejected(rng):
    sys_, _ = make_test_system("nocc", rng, tree_size=64)
    batch = RequestBatch.from_ops([(OpKind.QUERY, 1)])
    with pytest.raises(Exception):
        sys_.process_batch(batch, engine="quantum")


class TestMetricsOrdering:
    """The paper's qualitative claims as assertions (vector engine)."""

    @pytest.fixture(scope="class")
    def outcomes(self):
        rng = np.random.default_rng(77)
        outs = {}
        for name in ALL_SYSTEMS:
            sys_, keys = make_test_system(name, rng, tree_size=2**12, fanout=16)
            wl = YcsbWorkload(pool=keys)
            batch = wl.generate(2048, np.random.default_rng(5))
            outs[name] = sys_.process_batch(batch, engine="vector")
        return outs

    def test_stm_has_most_memory_instructions(self, outcomes):
        assert outcomes["stm"].mem_inst_per_request > outcomes["lock"].mem_inst_per_request
        assert outcomes["stm"].mem_inst_per_request > outcomes["nocc"].mem_inst_per_request

    def test_eirene_has_fewest_instructions(self, outcomes):
        for other in ("nocc", "stm", "lock"):
            assert (
                outcomes["eirene"].mem_inst_per_request
                < outcomes[other].mem_inst_per_request
            )

    def test_eirene_fastest(self, outcomes):
        for other in ("stm", "lock"):
            assert (
                outcomes["eirene"].throughput.per_second
                > outcomes[other].throughput.per_second
            )

    def test_eirene_conflicts_small_fraction_of_stm(self, outcomes):
        e = outcomes["eirene"].conflicts_per_request
        s = outcomes["stm"].conflicts_per_request
        assert s > 0
        assert e / s < 0.3  # paper: 4.8%

    def test_phase_breakdown_present_for_eirene(self, outcomes):
        phase = outcomes["eirene"].phase
        assert phase.sort > 0
        assert phase.combine > 0
        assert phase.query_kernel > 0
        assert phase.result_cal > 0


class TestEireneConfigurations:
    def test_combining_only_slower_than_full(self, rng):
        results = {}
        for label, cfg in (("full", None), ("comb", COMBINING_ONLY)):
            kwargs = {"config": cfg} if cfg else {}
            sys_, keys = make_test_system("eirene", np.random.default_rng(5),
                                          tree_size=2**12, fanout=16, **kwargs)
            wl = YcsbWorkload(pool=keys)
            batch = wl.generate(2**11, np.random.default_rng(6))
            results[label] = sys_.process_batch(batch, engine="vector")
        # locality reduces traversal steps (tree big + batch dense enough)
        assert results["full"].traversal_steps <= results["comb"].traversal_steps

    def test_combining_required(self, rng):
        with pytest.raises(Exception):
            make_test_system(
                "eirene", rng, tree_size=256,
                config=EireneConfig(enable_combining=False, enable_locality=False),
            )

    def test_kernel_partition_counts(self, rng):
        sys_, keys = make_test_system("eirene", rng, tree_size=512)
        wl = YcsbWorkload(pool=keys)
        batch = wl.generate(512, rng)
        out = sys_.process_batch(batch, engine="vector")
        plan = out.extras["plan"]
        assert plan.n_runs <= batch.n
        assert out.extras["n_combined"] == plan.n_combined


class TestMultiBatchEpochs:
    @pytest.mark.parametrize("engine", ["vector", "simt"])
    def test_eirene_state_evolves_correctly_across_batches(self, engine, rng):
        sys_, keys = make_test_system("eirene", rng, tree_size=512)
        ref = sys_.reference_for_tree()
        wl = YcsbWorkload(pool=keys, mix=MIXED)
        n = 192 if engine == "simt" else 512
        for _ in range(4):
            batch = wl.generate(n, rng)
            expected = ref.execute(batch)
            out = sys_.process_batch(batch, engine=engine)
            rep = check_linearizable(batch, out.results, expected)
            assert rep.ok, rep.describe(batch)
        sys_.tree.validate()
        gk, gv = sys_.tree.items()
        ek, ev = ref.items()
        assert np.array_equal(gk, ek)
        assert np.array_equal(gv, ev)

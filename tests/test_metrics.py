"""Unit tests for metrics (QoS stats, throughput, instruction profiles)."""

import numpy as np
import pytest

from repro.metrics import (
    InstructionProfile,
    ProfileTable,
    ResponseTimeStats,
    ThroughputResult,
    combine,
    response_time_stats,
)


class TestResponseTimeStats:
    def test_uniform_times_have_zero_variance(self):
        stats = response_time_stats(np.full(1000, 2e-9))
        assert stats.variance_fraction == pytest.approx(0.0)
        assert stats.avg_s == pytest.approx(2e-9)

    def test_variance_fraction_matches_paper_definition(self):
        # avg 1.0, max 1.4, min 0.9 -> variance = 40%
        t = np.concatenate([np.full(96, 1.0), [1.4, 1.4, 0.9, 0.9]])
        t = t * (100 / t.sum())  # keep mean 1.0
        stats = response_time_stats(t, trim=0.0)
        assert stats.variance_fraction == pytest.approx(0.4, abs=0.05)

    def test_trim_suppresses_single_outlier(self):
        t = np.full(2000, 1.0)
        t[0] = 100.0
        trimmed = response_time_stats(t, trim=0.005)
        raw = response_time_stats(t, trim=0.0)
        assert trimmed.variance_fraction < raw.variance_fraction

    def test_nan_and_empty_handled(self):
        stats = response_time_stats(np.array([np.nan, np.nan]))
        assert stats.n == 0
        assert stats.variance_fraction == 0.0

    def test_percentiles_ordered(self):
        rng = np.random.default_rng(0)
        stats = response_time_stats(rng.exponential(1e-9, size=5000))
        assert stats.min_s <= stats.p50_s <= stats.p99_s <= stats.max_s

    def test_describe_contains_variance(self):
        stats = response_time_stats(np.full(100, 1e-9))
        assert "variance" in stats.describe()


class TestThroughput:
    def test_per_second(self):
        t = ThroughputResult(requests=1000, seconds=0.5)
        assert t.per_second == 2000
        assert t.mops == pytest.approx(0.002)

    def test_zero_seconds(self):
        assert ThroughputResult(requests=10, seconds=0.0).per_second == 0.0

    def test_combine(self):
        total = combine(
            [ThroughputResult(100, 1.0), ThroughputResult(300, 1.0)]
        )
        assert total.requests == 400
        assert total.per_second == 200.0

    def test_describe(self):
        assert "Mreq/s" in ThroughputResult(10**6, 1.0).describe()


class TestProfileTable:
    def _table(self):
        t = ProfileTable()
        t.add(InstructionProfile("base", 100, mem_inst=10.0, control_inst=20.0, conflicts=1.0))
        t.add(InstructionProfile("fancy", 100, mem_inst=1.0, control_inst=2.0, conflicts=0.05))
        return t

    def test_normalized_to(self):
        t = self._table()
        norm = t.get("fancy").normalized_to(t.get("base"))
        assert norm["memory_inst"] == pytest.approx(0.1)
        assert norm["control_inst"] == pytest.approx(0.1)
        assert norm["conflicts"] == pytest.approx(0.05)

    def test_render_absolute(self):
        out = self._table().render()
        assert "memory_inst" in out
        assert "base" in out and "fancy" in out

    def test_render_normalized(self):
        out = self._table().render(normalize_to="base")
        assert "normalized to base" in out

    def test_get_unknown_raises(self):
        with pytest.raises(KeyError):
            self._table().get("nope")

    def test_total_inst(self):
        p = InstructionProfile("x", 10, mem_inst=1.0, control_inst=2.0, alu_inst=3.0)
        assert p.total_inst == 6.0

"""DeviceContext: ownership, snapshot/restore, fork, launch wiring."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    DeviceConfig,
    DeviceContext,
    TreeConfig,
    build_device_tree,
    make_system,
)
from repro.errors import ConfigError
from repro.memory import MemoryArena


def _kv(n=256, seed=0):
    rng = np.random.default_rng(seed)
    keys = np.sort(rng.choice(n * 8, size=n, replace=False)).astype(np.int64)
    return keys, keys * 3


class TestConstruction:
    def test_fresh_context_owns_a_new_arena(self):
        ctx = DeviceContext(1024)
        assert ctx.arena.capacity == 1024
        assert ctx.counters is ctx.arena.stats

    def test_adopt_wraps_an_existing_arena(self):
        arena = MemoryArena(512)
        ctx = DeviceContext.adopt(arena, DeviceConfig(num_sms=4), seed=3)
        assert ctx.arena is arena
        assert ctx.device.num_sms == 4
        assert ctx.seed == 3

    def test_make_rng_is_deterministic_per_salt(self):
        ctx = DeviceContext(64, seed=9)
        a = ctx.make_rng(1).integers(0, 1 << 30, 8)
        b = ctx.make_rng(1).integers(0, 1 << 30, 8)
        c = ctx.make_rng(2).integers(0, 1 << 30, 8)
        np.testing.assert_array_equal(a, b)
        assert not np.array_equal(a, c)


class TestSnapshotRestore:
    def test_roundtrip_preserves_tree_state(self):
        keys, values = _kv()
        ctx, tree, _, _ = build_device_tree(keys, values, TreeConfig(fanout=8))
        snap = ctx.snapshot()
        before_k, before_v = tree.items()
        for k in keys[:32]:
            tree.upsert(int(k), -1)
        tree.upsert(int(keys.max()) + 5, 99)
        ctx.restore(snap)
        after_k, after_v = tree.items()
        np.testing.assert_array_equal(before_k, after_k)
        np.testing.assert_array_equal(before_v, after_v)
        tree.validate()

    def test_restore_is_in_place(self):
        """The arena object (and its data buffer) stays the same, so trees
        holding a reference remain valid after restore."""
        ctx = DeviceContext(128)
        buf = ctx.arena.data
        snap = ctx.snapshot()
        ctx.arena.alloc(16)
        ctx.restore(snap)
        assert ctx.arena.data is buf
        assert ctx.arena.allocated == snap.brk

    def test_restore_rejects_foreign_snapshot(self):
        small = DeviceContext(64)
        big = DeviceContext(128)
        with pytest.raises(ConfigError):
            small.restore(big.snapshot())

    def test_snapshot_preserves_counters(self):
        ctx = DeviceContext(64)
        ctx.arena.alloc(8)
        ctx.arena.write(0, 1)
        ctx.arena.read(0)
        snap = ctx.snapshot()
        ctx.arena.read(0)
        ctx.restore(snap)
        assert ctx.arena.stats.reads == snap.stats.reads


class TestFork:
    def test_fork_is_independent(self):
        ctx = DeviceContext(128, seed=1)
        ctx.arena.alloc(4)
        ctx.arena.write(0, 42)
        child = ctx.fork(seed=2)
        assert child.arena is not ctx.arena
        assert child.arena.read(0) == 42
        child.arena.write(0, 7)
        assert ctx.arena.read(0) == 42
        assert child.seed == 2


class TestSystemWiring:
    def test_factory_systems_share_context_arena(self):
        keys, values = _kv()
        for name in ("nocc", "stm", "lock", "eirene"):
            sys_ = make_system(name, keys, values, tree_config=TreeConfig(fanout=8))
            assert sys_.devctx.arena is sys_.tree.arena
            assert sys_.device is sys_.devctx.device

    def test_system_rejects_mismatched_context(self):
        from repro.baselines.nocc import NoCCGBTree

        keys, values = _kv()
        _, tree, _, _ = build_device_tree(keys, values, TreeConfig(fanout=8))
        foreign = DeviceContext(256)
        with pytest.raises(ConfigError):
            NoCCGBTree(tree, devctx=foreign)

    def test_launch_builds_kernel_launch_on_own_arena(self):
        from repro.simt import KernelLaunch

        keys, values = _kv()
        ctx, _, _, _ = build_device_tree(keys, values, TreeConfig(fanout=8))
        launch = ctx.launch(16)
        assert isinstance(launch, KernelLaunch)
        assert launch.arena is ctx.arena

    def test_snapshot_restore_around_a_batch(self):
        """A whole processed batch (tree mutations + counters) rolls back."""
        from repro import YcsbWorkload

        keys, values = _kv(512, seed=2)
        sys_ = make_system("eirene", keys, values, tree_config=TreeConfig(fanout=8))
        rng = np.random.default_rng(0)
        batch = YcsbWorkload(pool=keys).generate(256, rng)
        snap = sys_.devctx.snapshot()
        k0, v0 = sys_.tree.items()
        sys_.process_batch(batch)
        sys_.devctx.restore(snap)
        k1, v1 = sys_.tree.items()
        np.testing.assert_array_equal(k0, k1)
        np.testing.assert_array_equal(v0, v1)

"""Unit tests for the vector-engine event model and the errors hierarchy."""

import math

import numpy as np
import pytest

from repro.baselines.model import (
    COALESCE_SCATTERED,
    COALESCE_SORTED,
    OVERLAP,
    EventTotals,
    InstCost,
    InstModel,
    phase_seconds,
    writer_collision_groups,
)
from repro.config import DeviceConfig, EireneConfig
from repro.errors import (
    ConfigError,
    LinearizabilityViolation,
    LockError,
    MemoryError_,
    ReproError,
    SimulationError,
    TransactionAborted,
    TransactionError,
    TreeError,
    TreeFullError,
    WorkloadError,
)


class TestInstCost:
    def test_add(self):
        c = InstCost(mem=1, ctrl=2) + InstCost(mem=3, alu=4)
        assert (c.mem, c.ctrl, c.alu) == (4, 2, 4)

    def test_mul_scales_everything(self):
        c = 3 * InstCost(mem=1, ctrl=2, alu=1, atomic=1)
        assert (c.mem, c.ctrl, c.alu, c.atomic) == (3, 6, 3, 3)

    def test_frozen(self):
        with pytest.raises(Exception):
            InstCost().mem = 5  # type: ignore[misc]


class TestInstModel:
    def test_scan_grows_with_fanout(self):
        assert InstModel(32).scan > InstModel(8).scan

    def test_stm_visit_triples_memory(self):
        im = InstModel(16)
        assert im.node_visit_stm.mem == pytest.approx(3 * (im.scan + 2))

    def test_lock_visit_adds_few_memory_ops(self):
        im = InstModel(16)
        assert im.node_visit_lock_validated.mem - im.node_visit_plain.mem <= 4

    def test_ntg_visit_cheaper_than_plain(self):
        im = InstModel(32)
        assert im.node_visit_ntg.mem < im.node_visit_plain.mem
        assert im.node_visit_ntg.ctrl == pytest.approx(math.log2(32) + 1)

    def test_ordering_matches_the_papers_overheads(self):
        im = InstModel(16)
        assert im.node_visit_stm.mem > im.node_visit_lock_validated.mem
        assert im.node_visit_lock_validated.mem > im.node_visit_plain.mem
        assert im.node_visit_stm.ctrl > im.node_visit_plain.ctrl


class TestEventTotals:
    def test_add_applies_coalescing(self):
        t = EventTotals()
        t.add(InstCost(mem=10), count=2, coalesce=0.5)
        assert t.mem == 20
        assert t.transactions == 10

    def test_atomics_always_full_transactions(self):
        t = EventTotals()
        t.add(InstCost(atomic=4), count=1, coalesce=0.25)
        assert t.transactions == 4

    def test_merge(self):
        a = EventTotals(mem=1, conflicts=2)
        b = EventTotals(mem=3, conflicts=1)
        a.merge(b)
        assert a.mem == 4
        assert a.conflicts == 3

    def test_sorted_coalesce_cheaper(self):
        assert COALESCE_SORTED < COALESCE_SCATTERED
        assert 0 < OVERLAP <= 1


class TestPhaseSeconds:
    def test_compute_bound(self):
        dev = DeviceConfig(num_sms=1, mem_bandwidth_gbps=1e9)  # infinite memory
        t = EventTotals(ctrl=dev.thread_slots * dev.clock_hz)  # 1 second of work
        assert phase_seconds(t, dev) == pytest.approx(1.0)

    def test_memory_bound(self):
        dev = DeviceConfig(num_sms=10_000)  # infinite compute
        t = EventTotals(transactions=dev.mem_transactions_per_second)
        assert phase_seconds(t, dev) == pytest.approx(1.0)


class TestWriterCollisionGroups:
    def test_empty(self):
        size, rank = writer_collision_groups(np.zeros(0, dtype=np.int64))
        assert size.size == 0 and rank.size == 0

    def test_all_distinct(self):
        size, rank = writer_collision_groups(np.array([5, 9, 2]))
        assert np.all(size == 1)
        assert np.all(rank == 0)

    def test_groups_and_ranks_follow_array_order(self):
        leaves = np.array([7, 3, 7, 7, 3])
        size, rank = writer_collision_groups(leaves)
        assert list(size) == [3, 2, 3, 3, 2]
        assert list(rank) == [0, 0, 1, 2, 1]


class TestErrorsHierarchy:
    def test_everything_derives_from_repro_error(self):
        for exc in (
            ConfigError, MemoryError_, TreeError, TreeFullError,
            TransactionError, TransactionAborted, LockError,
            SimulationError, WorkloadError, LinearizabilityViolation,
        ):
            assert issubclass(exc, ReproError)

    def test_tree_full_is_tree_error(self):
        assert issubclass(TreeFullError, TreeError)

    def test_aborted_is_transaction_error(self):
        assert issubclass(TransactionAborted, TransactionError)

    def test_aborted_carries_reason(self):
        assert TransactionAborted("ww").reason == "ww"


class TestNtgConfig:
    def test_flag_default_on(self):
        assert EireneConfig().enable_narrowed_thread_groups

    def test_ntg_reduces_eirene_query_memory(self, rng):
        from repro import TreeConfig, YcsbWorkload, build_key_pool, make_system
        from repro.workloads import YcsbMix

        outs = {}
        for label, flag in (("on", True), ("off", False)):
            keys, values = build_key_pool(2**11, np.random.default_rng(4))
            sys_ = make_system(
                "eirene", keys, values,
                tree_config=TreeConfig(fanout=32),
                config=EireneConfig(enable_narrowed_thread_groups=flag),
            )
            wl = YcsbWorkload(pool=keys, mix=YcsbMix(query=1.0, update=0.0))
            batch = wl.generate(2**10, np.random.default_rng(9))
            outs[label] = sys_.process_batch(batch, engine="vector")
        assert outs["on"].mem_inst < outs["off"].mem_inst
        assert np.array_equal(outs["on"].results.values, outs["off"].results.values)

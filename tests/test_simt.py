"""Unit tests for the SIMT simulator: warps, divergence, coalescing, timing."""

import numpy as np
import pytest

from repro.config import DeviceConfig
from repro.errors import SimulationError
from repro.memory import MemoryArena
from repro.simt import (
    Alu,
    AtomicAdd,
    AtomicCAS,
    Branch,
    CostModel,
    KernelLaunch,
    Load,
    Mark,
    Noop,
    PhaseTime,
    Store,
    Warp,
    op_kind,
)
from repro.simt.counters import KernelCounters
from repro.simt.warp import run_subroutine


@pytest.fixture
def device():
    return DeviceConfig(num_sms=2)


def launch_one_warp(programs, arena, device, n_requests=None):
    launch = KernelLaunch(device, arena, n_requests or len(programs))
    launch.add_warp(programs)
    return launch, launch.run()


class TestInstructionProtocol:
    def test_load_sends_value_back(self, arena):
        arena.data[5] = 77

        def prog():
            v = yield Load(5)
            return v

        assert run_subroutine(prog(), arena) == 77

    def test_store_writes(self, arena):
        def prog():
            yield Store(3, 9)

        run_subroutine(prog(), arena)
        assert arena.data[3] == 9

    def test_cas_semantics(self, arena):
        def prog():
            old1 = yield AtomicCAS(0, 0, 5)
            old2 = yield AtomicCAS(0, 0, 7)  # fails: now 5
            return old1, old2

        assert run_subroutine(prog(), arena) == (0, 5)
        assert arena.data[0] == 5

    def test_op_kind_groups_atomics(self):
        assert op_kind(AtomicCAS(0, 0, 1)) == op_kind(AtomicAdd(0, 1))
        assert op_kind(Load(0)) != op_kind(Store(0, 1))


class TestWarpExecution:
    def test_counters_per_lane(self, arena, device):
        def prog(i):
            def p():
                yield Load(i)
                yield Branch()
                yield Alu(2)
                yield Mark(i)

            return p()

        _, counters = launch_one_warp([prog(i) for i in range(4)], arena, device)
        assert counters.mem_inst == 4
        assert counters.control_inst == 4
        assert counters.alu_inst == 8
        assert np.all(np.isfinite(counters.finish_cycle[:4]))

    def test_coalesced_load_is_one_transaction(self, arena, device):
        def prog(i):
            def p():
                yield Load(i)  # contiguous: one 16-word segment

            return p()

        _, counters = launch_one_warp([prog(i) for i in range(16)], arena, device)
        assert counters.transactions == 1

    def test_scattered_load_pays_per_segment(self, arena, device):
        def prog(i):
            def p():
                yield Load(i * 16)

            return p()

        _, counters = launch_one_warp([prog(i) for i in range(8)], arena, device)
        assert counters.transactions == 8

    def test_divergent_kinds_serialize(self, arena, device):
        def loader():
            yield Load(0)

        def brancher():
            yield Branch()

        _, counters = launch_one_warp([loader(), brancher()], arena, device)
        assert counters.issued_slots == 2
        assert counters.divergent_slots == 1

    def test_uniform_kind_single_slot(self, arena, device):
        def loader(i):
            def p():
                yield Load(i)

            return p()

        _, counters = launch_one_warp([loader(i) for i in range(8)], arena, device)
        assert counters.issued_slots == 1
        assert counters.divergent_slots == 0

    def test_atomic_conflict_detected(self, arena, device):
        def prog():
            yield AtomicCAS(0, 0, 1)

        def prog2():
            yield AtomicCAS(0, 0, 2)  # same slot: second lane loses

        _, counters = launch_one_warp([prog(), prog2()], arena, device)
        assert counters.atomic_conflicts == 1
        assert arena.data[0] == 1

    def test_service_steps_exclude_noop(self, arena, device):
        def worker():
            yield Load(0)
            yield Load(1)
            yield Mark(0)

        def waiter():
            yield Noop()
            yield Noop()
            yield Load(2)
            yield Mark(1)

        _, counters = launch_one_warp([worker(), waiter()], arena, device, n_requests=2)
        assert counters.service_steps[0] == 3  # 2 loads + mark
        assert counters.service_steps[1] == 2  # noops excluded

    def test_unknown_op_raises(self, arena, device):
        class Bogus:
            pass

        def prog():
            yield Bogus()

        launch = KernelLaunch(device, arena, 1)
        launch.add_warp([prog()])
        with pytest.raises(SimulationError):
            launch.run()

    def test_out_of_bounds_load_raises(self, arena, device):
        def prog():
            yield Load(10**9)

        launch = KernelLaunch(device, arena, 1)
        launch.add_warp([prog()])
        with pytest.raises(SimulationError):
            launch.run()

    def test_overfull_warp_rejected(self, arena):
        with pytest.raises(SimulationError):
            Warp([iter(()) for _ in range(33)], arena)

    def test_lane_results(self, arena, device):
        def prog(i):
            def p():
                yield Alu()
                return i * 10

            return p()

        launch, _ = launch_one_warp([prog(i) for i in range(3)], arena, device)
        assert launch.lane_results() == [0, 10, 20]


class TestScheduler:
    def test_warps_spread_over_sms(self, arena, device):
        def prog():
            yield Alu()

        launch = KernelLaunch(device, arena, 64)
        launch.add_programs([prog() for _ in range(64)])
        assert launch.n_warps == 2
        counters = launch.run()
        assert counters.cycles > 0

    def test_double_launch_rejected(self, arena, device):
        launch = KernelLaunch(device, arena, 1)

        def prog():
            yield Alu()

        launch.add_programs([prog()])
        launch.run()
        with pytest.raises(SimulationError):
            launch.run()

    def test_add_after_launch_rejected(self, arena, device):
        launch = KernelLaunch(device, arena, 1)

        def prog():
            yield Alu()

        launch.add_programs([prog()])
        launch.run()
        with pytest.raises(SimulationError):
            launch.add_programs([prog()])

    def test_rng_scheduling_preserves_results(self, device):
        # random warp order must not change what a conflict-free kernel computes
        def make(arena, rng):
            def prog(i):
                def p():
                    v = yield Load(i)
                    yield Store(64 + i, v * 2)

                return p()

            launch = KernelLaunch(device, arena, 96, rng=rng)
            launch.add_programs([prog(i) for i in range(64)])
            launch.run()
            return arena.data[64:128].copy()

        a1 = MemoryArena(256)
        a1.data[:64] = np.arange(64)
        a2 = MemoryArena(256)
        a2.data[:64] = np.arange(64)
        r1 = make(a1, None)
        r2 = make(a2, np.random.default_rng(5))
        assert np.array_equal(r1, r2)


class TestCounters:
    def test_merge_combines_and_shifts_finish(self):
        a = KernelCounters(n_requests=4)
        a.mem_inst = 10
        a.cycles = 100.0
        a.finish_cycle[0] = 50.0
        b = KernelCounters(n_requests=4)
        b.mem_inst = 5
        b.cycles = 30.0
        b.finish_cycle[1] = 10.0
        m = a.merge(b)
        assert m.mem_inst == 15
        assert m.cycles == 130.0
        assert m.finish_cycle[0] == 50.0
        assert m.finish_cycle[1] == 110.0  # shifted by the first launch

    def test_merge_size_mismatch_rejected(self):
        with pytest.raises(ValueError):
            KernelCounters(n_requests=2).merge(KernelCounters(n_requests=3))

    def test_per_request_metrics(self):
        c = KernelCounters(n_requests=10)
        c.mem_inst = 50
        c.control_inst = 20
        assert c.mem_inst_per_request == 5.0
        assert c.control_inst_per_request == 2.0


class TestTiming:
    def test_phase_time_total(self):
        p = PhaseTime(sort=1.0, combine=2.0, query_kernel=3.0)
        assert p.total == 6.0

    def test_cost_model_seconds_scale_with_sms(self):
        small = CostModel(device=DeviceConfig(num_sms=1))
        big = CostModel(device=DeviceConfig(num_sms=100))
        assert small.seconds(1e6) == pytest.approx(big.seconds(1e6) * 100)

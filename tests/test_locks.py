"""Unit tests for the latch table (host + device planes)."""

import pytest

from repro.config import DeviceConfig
from repro.errors import LockError
from repro.locks import FREE, LatchTable, LockStats
from repro.memory import MemoryArena
from repro.simt import KernelLaunch
from repro.simt.warp import run_subroutine


@pytest.fixture
def table():
    arena = MemoryArena(64)
    arena.alloc(8)
    return LatchTable(arena), arena


class TestHostPlane:
    def test_acquire_release(self, table):
        latches, arena = table
        assert latches.try_acquire(0, owner=5)
        assert arena.data[0] == 6  # owner + 1
        latches.release(0, owner=5)
        assert arena.data[0] == FREE

    def test_contended_acquire_fails_and_counts_spin(self, table):
        latches, _ = table
        assert latches.try_acquire(0, owner=1)
        assert not latches.try_acquire(0, owner=2)
        assert latches.stats.spins == 1

    def test_foreign_release_rejected(self, table):
        latches, _ = table
        latches.try_acquire(0, owner=1)
        with pytest.raises(LockError):
            latches.release(0, owner=2)

    def test_release_unheld_rejected(self, table):
        latches, _ = table
        with pytest.raises(LockError):
            latches.release(3, owner=0)


class TestDevicePlane:
    def test_d_acquire_on_free_latch(self, table):
        latches, arena = table
        spins = run_subroutine(latches.d_acquire(0, owner=7), arena)
        assert spins == 0
        assert arena.data[0] == 8

    def test_d_release(self, table):
        latches, arena = table
        run_subroutine(latches.d_acquire(0, owner=7), arena)
        run_subroutine(latches.d_release(0), arena)
        assert arena.data[0] == FREE

    def test_d_is_locked(self, table):
        latches, arena = table
        assert not run_subroutine(latches.d_is_locked(0), arena)
        run_subroutine(latches.d_acquire(0, owner=1), arena)
        assert run_subroutine(latches.d_is_locked(0), arena)

    def test_two_lanes_contend_and_both_eventually_acquire(self, table):
        latches, arena = table
        order = []

        def prog(lane):
            def p():
                spins = yield from latches.d_acquire(0, owner=lane)
                # hold for a few slots to force the other lane to spin
                from repro.simt import Alu

                for _ in range(5):
                    yield Alu()
                yield from latches.d_release(0)
                order.append((lane, spins))
                return None

            return p()

        launch = KernelLaunch(DeviceConfig(num_sms=1), arena, 2)
        launch.add_warp([prog(0), prog(1)])
        launch.run()
        assert len(order) == 2
        assert arena.data[0] == FREE
        assert latches.stats.spins >= 1  # the loser really spun


class TestStats:
    def test_contention_rate(self):
        s = LockStats(acquires=10, spins=5)
        assert s.contention_rate == 0.5

    def test_delta_since(self):
        s = LockStats(acquires=4, releases=4, spins=2)
        snap = s.snapshot()
        s.acquires = 7
        s.spins = 5
        d = s.delta_since(snap)
        assert d.acquires == 3
        assert d.spins == 3

    def test_reset(self):
        s = LockStats(acquires=1, releases=1, spins=1)
        s.reset()
        assert s.acquires == s.releases == s.spins == 0

"""Race-detector suite: seeded races, protected pairs, system property.

The seeded tests drive hand-written thread programs through a real
:class:`~repro.simt.KernelLaunch` with a :class:`~repro.analysis.Sanitizer`
probe and assert the *exact* contents of the resulting
:class:`~repro.analysis.RaceReport`s; the property test runs all four
systems on update-heavy YCSB-A and checks the headline claim — NoCC races,
Lock/STM/Eirene do not.
"""

from __future__ import annotations

import numpy as np
import pytest

from tests.conftest import make_test_system
from repro import DeviceConfig
from repro.analysis import Sanitizer, attach_sanitizer
from repro.device import DeviceContext
from repro.memory import MemoryArena
from repro.simt import AtomicCAS, Branch, KernelLaunch, Load, Store
from repro.stm import StmRegion
from repro.workloads import YcsbWorkload
from repro.workloads.ycsb import YCSB_A


def launch_with(arena, san, warps, num_sms: int = 1):
    """Run explicit warps (lists of programs) under a sanitizer probe."""
    dev = DeviceConfig(num_sms=num_sms)
    kl = KernelLaunch(dev, arena, n_requests=1, probe=san)
    for programs in warps:
        kl.add_warp(programs)
    return kl.run()


# --------------------------------------------------------------------- #
# seeded races
# --------------------------------------------------------------------- #
def test_unlocked_ww_cross_warp():
    arena = MemoryArena(64)
    addr = arena.alloc(1)
    san = Sanitizer(arena)

    def writer(value):
        yield Store(addr, value)

    launch_with(arena, san, [[writer(1)], [writer(2)]])
    assert len(san.reports) == 1
    r = san.reports[0]
    assert r.kind == "W/W"
    assert r.addr == addr
    assert r.location == f"word {addr}"
    assert not r.same_slot
    assert (r.first.warp, r.second.warp) == (0, 1)
    assert r.first.op == r.second.op == "Store"
    assert r.first.kind == r.second.kind == "W"
    assert r.first.program.endswith("writer")
    assert r.second.program.endswith("writer")
    assert r.first.guards == frozenset() and r.second.guards == frozenset()


def test_intra_warp_same_slot_conflict():
    arena = MemoryArena(64)
    addr = arena.alloc(1)
    san = Sanitizer(arena)

    def writer(value):
        yield Store(addr, value)

    # two lanes of ONE warp store the same word in the same lockstep slot
    launch_with(arena, san, [[writer(1), writer(2)]])
    assert len(san.reports) == 1
    r = san.reports[0]
    assert r.kind == "W/W"
    assert r.same_slot
    assert r.first.warp == r.second.warp == 0
    assert (r.first.lane, r.second.lane) == (0, 1)
    assert r.first.slot == r.second.slot


def test_unsynchronized_rw_is_flagged_both_orders():
    arena = MemoryArena(64)
    addr = arena.alloc(1)
    san = Sanitizer(arena)

    def reader():
        v = yield Load(addr)
        yield Branch()
        return v

    def writer():
        yield Store(addr, 9)

    # write first, read second (and, in a fresh launch, the reverse)
    launch_with(arena, san, [[writer()], [reader()]])
    assert [r.kind for r in san.reports] == ["R/W"]
    first = san.reports[0]
    assert first.first.op == "Store" and first.second.op == "Load"

    san2 = Sanitizer(arena)
    launch_with(arena, san2, [[reader()], [writer()]])
    assert [r.kind for r in san2.reports] == ["R/W"]


def test_lock_protected_pair_is_clean():
    arena = MemoryArena(64)
    lock = arena.alloc(1)
    addr = arena.alloc(1)
    san = Sanitizer(arena)
    san.add_lock_word(lock, "test latch")

    def locked_writer(owner, value):
        while True:
            old = yield AtomicCAS(lock, 0, owner + 1)
            yield Branch()
            if old == 0:
                break
        yield Store(addr, value)
        yield Store(lock, 0)

    launch_with(arena, san, [[locked_writer(0, 1)], [locked_writer(1, 2)]])
    assert san.reports == []


def test_lock_vs_unlocked_writer_races():
    arena = MemoryArena(64)
    lock = arena.alloc(1)
    addr = arena.alloc(1)
    san = Sanitizer(arena)
    san.add_lock_word(lock, "test latch")

    def locked_writer(owner, value):
        old = yield AtomicCAS(lock, 0, owner + 1)
        yield Branch()
        assert old == 0
        yield Store(addr, value)
        yield Store(lock, 0)

    def rogue(value):
        yield Store(addr, value)

    launch_with(arena, san, [[locked_writer(0, 1)], [rogue(2)]])
    assert [r.kind for r in san.reports] == ["W/W"]
    # guard sets must be disjoint: one side held the latch, the other none
    r = san.reports[0]
    assert {r.first.guards, r.second.guards} == {
        frozenset(), frozenset({("lock", lock)})
    }


def test_stm_protected_pair_is_clean():
    arena = MemoryArena(256)
    data = arena.alloc(8)
    region = StmRegion(arena, data, 8)
    san = Sanitizer(arena)
    san.watch_stm_region(region)
    w = data + 3

    def tx_writer(tid, value):
        while True:
            old = yield AtomicCAS(region.owner_addr(w), 0, tid + 1)
            yield Branch()
            if old == 0:
                break
        yield Store(w, value)
        yield Store(region.owner_addr(w), 0)

    launch_with(arena, san, [[tx_writer(0, 1)], [tx_writer(1, 2)]])
    assert san.reports == []


def test_stm_invisible_reader_exemption():
    """Reads racing a *synchronized* (STM-owned) write are protocol-safe;
    reads racing a raw write are not."""
    arena = MemoryArena(256)
    data = arena.alloc(8)
    region = StmRegion(arena, data, 8)
    w = data + 1

    def reader():
        v = yield Load(w)
        yield Branch()
        return v

    def tx_writer(tid):
        old = yield AtomicCAS(region.owner_addr(w), 0, tid + 1)
        yield Branch()
        assert old == 0
        yield Store(w, 7)
        yield Store(region.owner_addr(w), 0)

    san = Sanitizer(arena)
    san.watch_stm_region(region)
    launch_with(arena, san, [[tx_writer(0)], [reader()]])
    assert san.reports == []

    def raw_writer():
        yield Store(w, 8)

    san2 = Sanitizer(arena)
    san2.watch_stm_region(region)
    launch_with(arena, san2, [[raw_writer()], [reader()]])
    assert [r.kind for r in san2.reports] == ["R/W"]


def test_launches_are_epochs():
    """A write in one launch never races an access in the next (kernel
    boundaries are global barriers)."""
    arena = MemoryArena(64)
    addr = arena.alloc(1)
    san = Sanitizer(arena)

    def writer(value):
        yield Store(addr, value)

    launch_with(arena, san, [[writer(1)]])
    launch_with(arena, san, [[writer(2)]])
    assert san.reports == []


def test_node_field_naming(rng):
    """Reports name node/field via the FIELDS table, not raw words."""
    sys_, _ = make_test_system("nocc", rng, tree_size=2**8)
    san = attach_sanitizer(sys_)
    tree = sys_.tree
    leaf = tree.find_leaf(int(tree.arena.data[tree.layout.key_addr(0, 0)]))[0]
    a = tree.views.addrs(leaf)

    def writer(value):
        yield Store(a.keys[0], value)

    launch = sys_.devctx.launch(1)
    launch.add_warp([writer(1)])
    launch.add_warp([writer(2)])
    launch.run()
    assert len(san.reports) == 1
    assert san.reports[0].location == f"node {leaf} keys[0]"


# --------------------------------------------------------------------- #
# the systems property (acceptance criterion)
# --------------------------------------------------------------------- #
@pytest.mark.parametrize("name", ["nocc", "stm", "lock", "eirene"])
def test_ycsb_a_race_property(name, rng):
    sys_, keys = make_test_system(name, rng)
    san = attach_sanitizer(sys_)
    wl = YcsbWorkload(pool=keys, mix=YCSB_A)
    batch = wl.generate(512, rng)
    sys_.process_batch(batch, engine="simt")
    sys_.tree.validate()
    if name == "nocc":
        assert san.race_count >= 1
        assert any(r.kind == "W/W" for r in san.reports)
    else:
        assert san.reports == []


def test_sanitizer_does_not_change_results(rng):
    """Attaching the probe must not perturb execution or counted stats."""
    outs = []
    for attach in (False, True):
        r = np.random.default_rng(11)
        sys_, keys = make_test_system("lock", r)
        if attach:
            attach_sanitizer(sys_)
        wl = YcsbWorkload(pool=keys, mix=YCSB_A)
        batch = wl.generate(256, r)
        out = sys_.process_batch(batch, engine="simt")
        outs.append(
            (
                list(out.results.values),
                out.mem_inst,
                out.transactions,
                sys_.devctx.arena.stats.transactions,
            )
        )
    assert outs[0] == outs[1]


# --------------------------------------------------------------------- #
# satellite: per-kind access counters
# --------------------------------------------------------------------- #
def test_kernel_counters_split_by_access_kind():
    arena = MemoryArena(64)
    addr = arena.alloc(2)

    def prog():
        v = yield Load(addr)
        yield Branch()
        yield Store(addr + 1, v)
        old = yield AtomicCAS(addr, 0, 5)
        yield Branch()
        return old

    kl = KernelLaunch(DeviceConfig(num_sms=1), arena, n_requests=1)
    kl.add_warp([prog()])
    kc = kl.run()
    assert kc.load_inst == 1
    assert kc.store_inst == 1
    assert kc.atomic_transactions == 1
    assert kc.load_inst + kc.store_inst == kc.mem_inst
    assert kc.atomic_transactions == kc.atomic_inst


def test_system_run_counters_have_kind_split(rng):
    """A real latched SIMT batch records atomics distinctly from stores."""
    sys_, keys = make_test_system("lock", rng)
    wl = YcsbWorkload(pool=keys, mix=YCSB_A)
    batch = wl.generate(256, rng)
    out = sys_.process_batch(batch, engine="simt")
    kc = out.counters
    assert kc is not None
    assert kc.atomic_transactions > 0  # latch CAS traffic
    assert kc.atomic_transactions == kc.atomic_inst
    assert kc.store_inst > 0 and kc.load_inst > 0
    assert kc.load_inst + kc.store_inst == kc.mem_inst


def test_counters_merge_preserves_kind_split():
    from repro.simt.counters import KernelCounters

    a = KernelCounters(n_requests=4)
    b = KernelCounters(n_requests=4)
    a.load_inst, a.store_inst, a.atomic_transactions = 3, 2, 1
    a.mem_inst = 5
    b.load_inst, b.store_inst, b.atomic_transactions = 7, 1, 4
    b.mem_inst = 8
    m = a.merge(b)
    assert (m.load_inst, m.store_inst, m.atomic_transactions) == (10, 3, 5)
    assert m.load_inst + m.store_inst == m.mem_inst


# --------------------------------------------------------------------- #
# satellite: system (shadow) allocations never perturb device accounting
# --------------------------------------------------------------------- #
def test_alloc_system_outside_device_heap():
    arena = MemoryArena(128)
    base = arena.alloc_system(128)
    assert base == 128  # above the device heap
    assert arena.capacity == 128  # device-visible capacity unchanged
    assert arena.total_words == 256
    assert arena.system_words == 128
    # exhaustion accounting unchanged: the heap still holds exactly 128
    arena.alloc(128)
    with pytest.raises(Exception):
        arena.alloc(1)


def test_system_addresses_not_counted():
    arena = MemoryArena(64)
    shadow = arena.alloc_system(64)
    before = arena.stats.snapshot()
    arena.write(shadow + 3, 1)
    arena.read(shadow + 3)
    arena.atomic_add(shadow + 3, 1)
    arena.read_gather(np.arange(shadow, shadow + 8))
    assert arena.stats.reads == before.reads
    assert arena.stats.writes == before.writes
    assert arena.stats.atomics == before.atomics
    assert arena.stats.transactions == before.transactions
    # device addresses still count
    arena.write(0, 1)
    assert arena.stats.writes == before.writes + 1


def test_snapshot_restore_with_sanitizer_attached(rng):
    sys_, keys = make_test_system("stm", rng, tree_size=2**8)
    ctx: DeviceContext = sys_.devctx
    snap = ctx.snapshot()
    attach_sanitizer(sys_)  # grows the arena with shadow words
    assert snap.data.size == ctx.arena.capacity
    ctx.restore(snap)  # restores the device heap, ignores shadow
    snap2 = ctx.snapshot()
    assert snap2.data.size == ctx.arena.capacity
    twin = ctx.fork()
    assert twin.arena.capacity == ctx.arena.capacity
    assert np.array_equal(twin.arena.data, ctx.arena.data[: ctx.arena.capacity])


def test_arena_reset_drops_system_words():
    arena = MemoryArena(64)
    arena.alloc_system(32)
    assert arena.total_words == 96
    arena.reset()
    assert arena.total_words == 64
    assert arena.system_words == 0

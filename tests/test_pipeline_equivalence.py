"""Equivalence regression for the pass-pipeline refactor.

Two guarantees:

1. **Semantics** — every valid :class:`~repro.config.EireneConfig` flag
   combination still matches the sequential reference on a fixed-seed
   mixed batch (queries, updates, inserts, deletes, ranges).
2. **Model** — the event totals of the pre-refactor boolean-branching
   implementation are reproduced *bit-for-bit* by the pipeline on the
   same fixed-seed batch, for all four systems and the paper's ablation
   variants, on both engines.  The goldens below were captured from the
   tree at the commit immediately before the refactor.

``enable_kernel_partition=False`` has goldens-free coverage only: the
flag was dead pre-refactor (both branches ran the partitioned kernels),
so there is no pre-refactor behavior to pin — it is now a real ablation
(unified kernel; see ``eirene_pass_plan``) and is checked against the
sequential reference instead.
"""

from __future__ import annotations

import itertools
import math

import numpy as np
import pytest

from repro import (
    DeviceConfig,
    EireneConfig,
    TreeConfig,
    YcsbMix,
    YcsbWorkload,
    build_key_pool,
    check_linearizable,
    make_system,
)
from repro.core.pipeline import eirene_pass_plan

SEED = 20260806
MIX = YcsbMix(query=0.6, update=0.2, insert=0.1, delete=0.05, range_=0.05)

# label -> factory name (variant names resolve configs via EIRENE_VARIANTS)
GOLDEN_SYSTEMS = {
    "nocc": "nocc",
    "stm": "stm",
    "lock": "lock",
    "eirene-full": "eirene",
    "eirene-combining-only": "eirene+combining",
    "eirene-no-rf": "eirene-no-rf",
    "eirene-no-ntg": "eirene-no-ntg",
}

# Captured from the pre-refactor implementation (fixed recipe below).
GOLDENS = {
    "nocc/vector": {
        "mem_inst": 14793.6,
        "control_inst": 12533.6,
        "alu_inst": 9777.6,
        "atomic_inst": 46.0,
        "transactions": 7442.8,
        "conflicts": 0.0,
        "seconds": 6.126549196141479e-07,
        "traversal_steps": 4.0,
        "values_sum": 465347231355,
    },
    "nocc/simt": {
        "mem_inst": 10998,
        "control_inst": 8224,
        "alu_inst": 0,
        "atomic_inst": 0,
        "transactions": 5694,
        "conflicts": 0.0,
        "seconds": 8.557446808510639e-06,
        "traversal_steps": 4.048828125,
        "values_sum": 458073779490,
    },
    "stm/vector": {
        "mem_inst": 55145.15,
        "control_inst": 36941.575,
        "alu_inst": 17886.53125,
        "atomic_inst": 993.6,
        "transactions": 28566.175000000003,
        "conflicts": 138.3125,
        "seconds": 2.351427909967846e-06,
        "traversal_steps": 4.0,
        "values_sum": 465347231355,
    },
    "stm/simt": {
        "mem_inst": 60874,
        "control_inst": 41605,
        "alu_inst": 0,
        "atomic_inst": 2089,
        "transactions": 44276,
        "conflicts": 213.0,
        "seconds": 7.366595744680852e-05,
        "traversal_steps": 4.0,
        "values_sum": 468172781803,
    },
    "lock/vector": {
        "mem_inst": 21293.8,
        "control_inst": 20878.699999999997,
        "alu_inst": 10575.45,
        "atomic_inst": 2260.7,
        "transactions": 12907.599999999999,
        "conflicts": 1289.75,
        "seconds": 1.062490546623794e-06,
        "traversal_steps": 4.0,
        "values_sum": 465347231355,
    },
    "lock/simt": {
        "mem_inst": 29161,
        "control_inst": 26135,
        "alu_inst": 2,
        "atomic_inst": 864,
        "transactions": 19734,
        "conflicts": 667.0,
        "seconds": 3.5833333333333335e-05,
        "traversal_steps": 4.015625,
        "values_sum": 466695108390,
    },
    "eirene-full/vector": {
        "mem_inst": 16257.0,
        "control_inst": 13405.000000000002,
        "alu_inst": 8966.0,
        "atomic_inst": 1032.0,
        "transactions": 5096.25,
        "conflicts": 49.0,
        "seconds": 6.783991015028163e-07,
        "traversal_steps": 4.0,
        "values_sum": 465347231355,
    },
    "eirene-full/simt": {
        "mem_inst": 26136.0,
        "control_inst": 19330.0,
        "alu_inst": 0.0,
        "atomic_inst": 1985.0,
        "transactions": 18599.0,
        "conflicts": 177.0,
        "seconds": 4.2779468085106386e-05,
        "traversal_steps": 5.714285714285714,
        "values_sum": 465347231355,
    },
    "eirene-combining-only/vector": {
        "mem_inst": 16257.0,
        "control_inst": 13405.000000000002,
        "alu_inst": 8966.0,
        "atomic_inst": 1032.0,
        "transactions": 5096.25,
        "conflicts": 49.0,
        "seconds": 6.783991015028163e-07,
        "traversal_steps": 4.0,
        "values_sum": 465347231355,
    },
    "eirene-combining-only/simt": {
        "mem_inst": 26238.0,
        "control_inst": 19433.0,
        "alu_inst": 0.0,
        "atomic_inst": 2003.0,
        "transactions": 18607.0,
        "conflicts": 180.0,
        "seconds": 4.094117021276596e-05,
        "traversal_steps": 5.743341404358354,
        "values_sum": 465347231355,
    },
    "eirene-no-rf/vector": {
        "mem_inst": 23019.2,
        "control_inst": 20092.2,
        "alu_inst": 14140.2,
        "atomic_inst": 1032.0,
        "transactions": 6786.799999999999,
        "conflicts": 49.0,
        "seconds": 8.175569150076395e-07,
        "traversal_steps": 7.663438256658596,
        "values_sum": 465347231355,
    },
    "eirene-no-rf/simt": {
        "mem_inst": 27766.0,
        "control_inst": 21449.0,
        "alu_inst": 0.0,
        "atomic_inst": 1985.0,
        "transactions": 18697.0,
        "conflicts": 177.0,
        "seconds": 4.333833333333334e-05,
        "traversal_steps": 9.37772397094431,
        "values_sum": 465347231355,
    },
    "eirene-no-ntg/vector": {
        "mem_inst": 18799.4,
        "control_inst": 14131.400000000001,
        "alu_inst": 9692.400000000001,
        "atomic_inst": 1032.0,
        "transactions": 5731.85,
        "conflicts": 49.0,
        "seconds": 7.30718587033363e-07,
        "traversal_steps": 4.0,
        "values_sum": 465347231355,
    },
    "eirene-no-ntg/simt": {
        "mem_inst": 26136.0,
        "control_inst": 19330.0,
        "alu_inst": 0.0,
        "atomic_inst": 1985.0,
        "transactions": 18599.0,
        "conflicts": 177.0,
        "seconds": 4.2779468085106386e-05,
        "traversal_steps": 5.714285714285714,
        "values_sum": 465347231355,
    },
}

GOLDEN_FIELDS = (
    "mem_inst",
    "control_inst",
    "alu_inst",
    "atomic_inst",
    "transactions",
    "conflicts",
    "seconds",
    "traversal_steps",
)


def _run_fixed_batch(name: str, engine: str, **kwargs):
    """The exact golden-capture recipe: one mixed 512-request batch over a
    2^10-key tree (fanout 8, 4 SMs), everything seeded from SEED."""
    rng = np.random.default_rng(SEED)
    keys, values = build_key_pool(2**10, rng)
    sys_ = make_system(
        name,
        keys,
        values,
        tree_config=TreeConfig(fanout=8),
        device=DeviceConfig(num_sms=4),
        **kwargs,
    )
    wl = YcsbWorkload(pool=keys, mix=MIX)
    batch = wl.generate(512, rng)
    ref = sys_.reference_for_tree()
    out = sys_.process_batch(batch, engine=engine)
    return sys_, batch, ref, out


@pytest.mark.parametrize("engine", ["vector", "simt"])
@pytest.mark.parametrize("label", sorted(GOLDEN_SYSTEMS))
def test_pipeline_reproduces_pre_refactor_totals(label, engine):
    _, _, _, out = _run_fixed_batch(GOLDEN_SYSTEMS[label], engine)
    golden = GOLDENS[f"{label}/{engine}"]
    for field in GOLDEN_FIELDS:
        got = float(getattr(out, field))
        want = float(golden[field])
        assert math.isclose(got, want, rel_tol=1e-9, abs_tol=1e-12), (
            f"{label}/{engine}.{field}: got {got!r}, golden {want!r}"
        )
    assert int(np.int64(out.results.values).sum()) == golden["values_sum"]


# all valid flag combinations (combining is structural; locality requires
# combining, so the no-combining bar is the STM baseline, as in the paper)
FLAG_COMBOS = [
    EireneConfig(
        enable_locality=loc,
        enable_kernel_partition=part,
        enable_rf_decision=rf,
        enable_narrowed_thread_groups=ntg,
    )
    for loc, part, rf, ntg in itertools.product([True, False], repeat=4)
]


def _combo_id(cfg: EireneConfig) -> str:
    return "".join(
        flag[0] if on else "-"
        for flag, on in (
            ("locality", cfg.enable_locality),
            ("partition", cfg.enable_kernel_partition),
            ("rf", cfg.enable_rf_decision),
            ("ntg", cfg.enable_narrowed_thread_groups),
        )
    )


@pytest.mark.parametrize("engine", ["vector", "simt"])
@pytest.mark.parametrize("cfg", FLAG_COMBOS, ids=_combo_id)
def test_all_flag_combos_match_reference(cfg, engine):
    sys_, batch, ref, out = _run_fixed_batch("eirene", engine, config=cfg)
    expected = ref.execute(batch)
    rep = check_linearizable(batch, out.results, expected)
    assert rep.ok, rep.describe(batch)
    sys_.tree.validate()
    got_k, got_v = sys_.tree.items()
    exp_k, exp_v = ref.items()
    assert np.array_equal(got_k, exp_k)
    assert np.array_equal(got_v, exp_v)
    # the pipeline the system actually ran is the one the plan promises
    assert out.trace is not None
    assert tuple(out.trace.pass_names) == eirene_pass_plan(cfg, engine)

"""Unit tests for the simulated global memory (arena, stats, coalescing)."""

import numpy as np
import pytest

from repro.errors import MemoryError_
from repro.memory import (
    MemoryArena,
    MemoryStats,
    coalescing_efficiency,
    segments_touched,
    segments_touched_array,
)


class TestAllocation:
    def test_bump_allocation_is_contiguous(self, arena):
        a = arena.alloc(10)
        b = arena.alloc(5)
        assert b == a + 10

    def test_alignment_rounds_up(self):
        arena = MemoryArena(256)
        arena.alloc(3)
        base = arena.alloc(16, align=16)
        assert base % 16 == 0

    def test_exhaustion_raises(self):
        arena = MemoryArena(16)
        arena.alloc(10)
        with pytest.raises(MemoryError_):
            arena.alloc(10)

    def test_exhaustion_reports_allocated_and_capacity(self):
        arena = MemoryArena(16)
        arena.alloc(10)
        with pytest.raises(MemoryError_, match=r"10 of 16 words"):
            arena.alloc(10)

    def test_negative_alloc_raises(self, arena):
        with pytest.raises(MemoryError_):
            arena.alloc(-1)

    @pytest.mark.parametrize("align", [0, -1, -16])
    def test_invalid_align_rejected(self, arena, align):
        with pytest.raises(MemoryError_, match="align"):
            arena.alloc(4, align=align)

    def test_zero_capacity_rejected(self):
        with pytest.raises(MemoryError_):
            MemoryArena(0)


class TestReset:
    def test_reset_rewinds_brk_and_zeroes_data(self):
        arena = MemoryArena(64)
        base = arena.alloc(8)
        arena.write(base, 42)
        arena.reset()
        assert arena.allocated == 0
        assert arena.read(base) == 0
        # the freed region is allocatable again, from the start
        assert arena.alloc(8) == 0

    def test_reset_clears_stats_and_restores_counting(self):
        arena = MemoryArena(64)
        arena.read(0, label="x")
        arena.counting = False
        arena.reset()
        assert arena.counting is True
        assert arena.stats.accesses == 0
        assert arena.stats.by_label == {}

    def test_reset_preserves_identity_and_capacity(self):
        arena = MemoryArena(64)
        data = arena.data
        arena.reset()
        assert arena.data is data
        assert arena.capacity == 64


class TestScalarAccess:
    def test_write_then_read_roundtrip(self, arena):
        arena.write(7, 12345)
        assert arena.read(7) == 12345

    def test_counters_track_reads_and_writes(self, arena):
        arena.write(0, 1)
        arena.read(0)
        arena.read(0)
        assert arena.stats.writes == 1
        assert arena.stats.reads == 2
        assert arena.stats.accesses == 3

    def test_out_of_bounds_read_raises(self, arena):
        with pytest.raises(MemoryError_):
            arena.read(arena.capacity)
        with pytest.raises(MemoryError_):
            arena.read(-1)

    def test_counting_toggle_suppresses_stats(self, arena):
        arena.counting = False
        arena.write(0, 5)
        arena.read(0)
        assert arena.stats.accesses == 0

    def test_labels_accumulate(self, arena):
        arena.read(0, label="traversal")
        arena.read(1, label="traversal")
        arena.read(2, label="lock")
        assert arena.stats.by_label == {"traversal": 2, "lock": 1}


class TestAtomics:
    def test_cas_success_swaps_and_returns_old(self, arena):
        arena.write(3, 10)
        old = arena.atomic_cas(3, 10, 99)
        assert old == 10
        assert arena.read(3) == 99

    def test_cas_failure_leaves_value_and_counts_conflict(self, arena):
        arena.write(3, 10)
        old = arena.atomic_cas(3, 11, 99)
        assert old == 10
        assert arena.read(3) == 10
        assert arena.stats.atomic_conflicts == 1

    def test_atomic_add_returns_old(self, arena):
        arena.write(4, 7)
        assert arena.atomic_add(4, 3) == 7
        assert arena.read(4) == 10

    def test_atomic_exch(self, arena):
        arena.write(5, 1)
        assert arena.atomic_exch(5, 2) == 1
        assert arena.read(5) == 2

    def test_atomics_count_as_transactions(self, arena):
        arena.atomic_add(0, 1)
        arena.atomic_cas(1, 0, 1)
        assert arena.stats.atomics == 2
        assert arena.stats.transactions == 2


class TestVectorAccess:
    def test_gather_returns_values(self, arena):
        for i in range(8):
            arena.data[i] = i * 10
        vals = arena.read_gather(np.arange(8))
        assert np.array_equal(vals, np.arange(8) * 10)

    def test_gather_counts_one_instruction(self, arena):
        arena.read_gather(np.arange(32))
        assert arena.stats.reads == 1
        assert arena.stats.read_words == 32

    def test_gather_coalescing_contiguous(self, arena):
        arena.read_gather(np.arange(16))  # one 16-word segment
        assert arena.stats.transactions == 1

    def test_gather_coalescing_scattered(self, arena):
        arena.read_gather(np.arange(0, 16 * 8, 16))  # 8 distinct segments
        assert arena.stats.transactions == 8

    def test_scatter_roundtrip(self, arena):
        arena.write_scatter(np.array([1, 3, 5]), np.array([10, 30, 50]))
        assert arena.read(3) == 30

    def test_gather_bounds_check(self, arena):
        with pytest.raises(MemoryError_):
            arena.read_gather(np.array([arena.capacity]))


class TestHostPlane:
    def test_host_view_is_mutable_and_uncounted(self, arena):
        view = arena.host_view(0, 4)
        view[:] = 9
        assert arena.read(0) == 9
        assert arena.stats.writes == 0

    def test_host_view_bounds(self, arena):
        with pytest.raises(MemoryError_):
            arena.host_view(arena.capacity - 1, 2)


class TestStats:
    def test_snapshot_is_independent(self):
        s = MemoryStats(reads=5)
        snap = s.snapshot()
        s.reads = 10
        assert snap.reads == 5

    def test_delta_since(self):
        s = MemoryStats(reads=5, writes=2)
        snap = s.snapshot()
        s.reads = 9
        s.writes = 4
        d = s.delta_since(snap)
        assert d.reads == 4
        assert d.writes == 2

    def test_merge_accumulates(self):
        a = MemoryStats(reads=1, transactions=2)
        b = MemoryStats(reads=3, transactions=4)
        a.merge(b)
        assert a.reads == 4
        assert a.transactions == 6

    def test_reset(self):
        s = MemoryStats(reads=5)
        s.add_label("x")
        s.reset()
        assert s.reads == 0
        assert s.by_label == {}


class TestCoalescing:
    def test_single_segment(self):
        assert segments_touched([0, 1, 15], 16) == 1

    def test_two_segments(self):
        assert segments_touched([0, 16], 16) == 2

    def test_empty(self):
        assert segments_touched([], 16) == 0

    def test_array_variant_matches(self):
        addrs = np.array([0, 5, 17, 33, 34])
        assert segments_touched_array(addrs, 16) == segments_touched(list(addrs), 16)

    def test_efficiency_perfect(self):
        assert coalescing_efficiency(np.arange(16), 16) == pytest.approx(1.0)

    def test_efficiency_worst_case(self):
        # one word per segment: 1/16 of each transaction is useful
        addrs = np.arange(0, 16 * 4, 16)
        assert coalescing_efficiency(addrs, 16) == pytest.approx(1 / 16)

    def test_efficiency_empty(self):
        assert coalescing_efficiency(np.zeros(0, dtype=np.int64), 16) == 0.0

"""Unit tests for locality-aware warp reorganization (§5)."""

import numpy as np
import pytest

from repro.btree import BPlusTree, batch_find_leaf
from repro.config import TreeConfig
from repro.core.locality import (
    build_iteration_plan,
    vector_locality_steps,
)


@pytest.fixture
def dense_setup():
    """A tree + key-sorted issued stream dense enough for horizontal wins."""
    rng = np.random.default_rng(11)
    keys = np.sort(rng.choice(40_000, size=4096, replace=False)).astype(np.int64)
    tree = BPlusTree.build(keys, keys, TreeConfig(fanout=16))
    issued = np.sort(rng.choice(keys, size=2048, replace=False))
    return tree, issued


class TestIterationPlan:
    def test_rg_partition_covers_all(self):
        plan = build_iteration_plan(100, warp_size=32, rgs_per_warp=4)
        assert plan.n_rgs == 4
        assert plan.rg_start[0] == 0
        assert plan.rg_end[-1] == 100  # ragged last RG

    def test_warp_grouping(self):
        plan = build_iteration_plan(32 * 8, warp_size=32, rgs_per_warp=4)
        assert plan.n_warps == 2
        assert np.array_equal(plan.rgs_of_warp(0), [0, 1, 2, 3])
        assert np.array_equal(plan.rgs_of_warp(1), [4, 5, 6, 7])

    def test_empty(self):
        plan = build_iteration_plan(0, 32, 4)
        assert plan.n_rgs == 0
        assert plan.n_warps == 0


class TestVectorLocalitySteps:
    def test_leaves_match_vertical_traversal(self, dense_setup):
        tree, issued = dense_setup
        plan = build_iteration_plan(issued.size, 32, 4)
        ls = vector_locality_steps(tree, plan, issued)
        ref, _ = batch_find_leaf(tree, issued)
        assert np.array_equal(ls.leaves, ref)

    def test_first_rg_of_each_warp_is_vertical(self, dense_setup):
        tree, issued = dense_setup
        plan = build_iteration_plan(issued.size, 32, 4)
        ls = vector_locality_steps(tree, plan, issued)
        for w in range(plan.n_warps):
            first_rg = plan.rgs_of_warp(w)[0]
            lo, hi = int(plan.rg_start[first_rg]), int(plan.rg_end[first_rg])
            assert not ls.horizontal[lo:hi].any()
            assert np.all(ls.steps[lo:hi] == tree.height)

    def test_horizontal_reduces_average_steps_when_dense(self, dense_setup):
        tree, issued = dense_setup
        plan = build_iteration_plan(issued.size, 32, 4)
        ls = vector_locality_steps(tree, plan, issued)
        assert ls.horizontal.any()
        assert ls.steps.mean() < tree.height

    def test_rf_disabled_forces_horizontal(self, dense_setup):
        tree, issued = dense_setup
        plan = build_iteration_plan(issued.size, 32, 4)
        ls = vector_locality_steps(tree, plan, issued, enable_rf=False)
        # every non-first RG goes horizontal regardless of distance
        for w in range(plan.n_warps):
            for r in plan.rgs_of_warp(w)[1:]:
                lo, hi = int(plan.rg_start[r]), int(plan.rg_end[r])
                assert ls.horizontal[lo:hi].all()

    def test_rf_decision_prevents_long_walks(self):
        # sparse stream: RGs are far apart, RF must choose vertical
        rng = np.random.default_rng(3)
        keys = np.sort(rng.choice(200_000, size=8192, replace=False)).astype(np.int64)
        tree = BPlusTree.build(keys, keys, TreeConfig(fanout=8))
        issued = np.sort(rng.choice(keys, size=256, replace=False))
        plan = build_iteration_plan(issued.size, 32, 4)
        ls = vector_locality_steps(tree, plan, issued, enable_rf=True)
        # with RF on, the average can never exceed vertical cost by more
        # than the first probe step
        assert ls.steps.mean() <= tree.height + 1
        ls_off = vector_locality_steps(tree, plan, issued, enable_rf=False)
        assert ls_off.steps.mean() >= ls.steps.mean()

    def test_lockstep_cost_is_rg_max(self, dense_setup):
        tree, issued = dense_setup
        plan = build_iteration_plan(issued.size, 32, 4)
        ls = vector_locality_steps(tree, plan, issued)
        for r in range(plan.n_rgs):
            lo, hi = int(plan.rg_start[r]), int(plan.rg_end[r])
            assert ls.rg_lockstep_steps[r] == ls.steps[lo:hi].max()

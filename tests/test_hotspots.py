"""Hotspot profiler: per-bucket attribution of divergence and coalescing."""

from __future__ import annotations

import numpy as np

from tests.conftest import make_test_system
from repro import DeviceConfig
from repro.analysis import HotspotProfiler, attach_hotspots
from repro.memory import MemoryArena
from repro.simt import Alu, Branch, KernelLaunch, Load, Store
from repro.workloads import YcsbWorkload
from repro.workloads.ycsb import YCSB_A


def run_warps(arena, prof, warps):
    kl = KernelLaunch(DeviceConfig(num_sms=1), arena, n_requests=1, probe=prof)
    for programs in warps:
        kl.add_warp(programs)
    return kl.run()


def test_coalesced_warp_has_no_waste():
    arena = MemoryArena(256)
    base = arena.alloc(32)
    prof = HotspotProfiler(words_per_segment=16)

    def lane(i):
        v = yield Load(base + i)  # lanes 0..15 hit one segment
        yield Branch()
        return v

    run_warps(arena, prof, [[lane(i) for i in range(16)]])
    rep = prof.report()
    b = rep.buckets["other"]
    assert b.accesses == 16
    assert b.transactions == 1
    assert b.waste == 0


def test_strided_warp_charges_waste():
    arena = MemoryArena(1024)
    base = arena.alloc(16 * 16)
    prof = HotspotProfiler(words_per_segment=16)

    def lane(i):
        v = yield Load(base + 16 * i)  # one segment per lane: worst case
        yield Branch()
        return v

    run_warps(arena, prof, [[lane(i) for i in range(8)]])
    rep = prof.report()
    b = rep.buckets["other"]
    assert b.accesses == 8
    assert b.transactions == 8
    assert b.waste == 7  # 8 segments where 1 would have sufficed


def test_divergent_slot_charged_to_touched_buckets():
    arena = MemoryArena(64)
    addr = arena.alloc(2)
    prof = HotspotProfiler()

    def loader():
        v = yield Load(addr)
        yield Branch()
        return v

    def storer():
        yield Store(addr + 1, 1)
        yield Alu()

    # slot 1 mixes Load and Store (2 kinds -> 1 extra serialized slot)
    run_warps(arena, prof, [[loader(), storer()]])
    rep = prof.report()
    assert rep.buckets["other"].divergent_slots >= 1


def test_buckets_resolve_node_structure(rng):
    sys_, keys = make_test_system("stm", rng, tree_size=2**9)
    prof = attach_hotspots(sys_)
    wl = YcsbWorkload(pool=keys, mix=YCSB_A)
    batch = wl.generate(256, rng)
    sys_.process_batch(batch, engine="simt")
    rep = prof.report()
    names = set(rep.buckets)
    # traversal reads keys/children, STM metadata is touched on updates
    assert any(n.startswith(("leaf.", "inner.")) for n in names)
    assert "stm.owner" in names
    assert rep.hot_nodes, "per-node heat should be populated"
    node, count, label = rep.hot_nodes[0]
    assert count > 0 and label == f"node {node}"
    # ranked + rendered forms agree and are well-formed
    ranked = rep.ranked()
    assert ranked[0][1].score == max(b.score for b in rep.buckets.values())
    text = rep.render()
    assert "hotspots over" in text and "hottest nodes" in text
    d = rep.to_dict()
    assert set(d) == {"slots", "buckets", "hot_nodes"}


def test_profiler_composes_with_sanitizer(rng):
    from repro.analysis import attach_sanitizer

    sys_, keys = make_test_system("lock", rng, tree_size=2**9)
    san = attach_sanitizer(sys_)
    prof = attach_hotspots(sys_)
    wl = YcsbWorkload(pool=keys, mix=YCSB_A)
    batch = wl.generate(128, rng)
    sys_.process_batch(batch, engine="simt")
    assert san.reports == []
    assert prof.report().slots > 0

"""Unit + property tests for the GPU primitives (scan, radix sort, compaction)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpuprims import (
    RadixWork,
    ScanWork,
    compact_indices,
    exclusive_scan,
    expand_runs,
    inclusive_scan,
    radix_argsort,
    radix_sort_pairs,
    run_heads,
    run_lengths,
    segment_ids,
    segmented_exclusive_scan,
    significant_passes,
)

int_arrays = st.lists(st.integers(min_value=0, max_value=2**40), min_size=0, max_size=300)


class TestScan:
    def test_exclusive_scan_basic(self):
        out = exclusive_scan(np.array([3, 1, 7, 0, 4]))
        assert np.array_equal(out, [0, 3, 4, 11, 11])

    def test_inclusive_scan_basic(self):
        out = inclusive_scan(np.array([3, 1, 7, 0, 4]))
        assert np.array_equal(out, [3, 4, 11, 11, 15])

    def test_empty(self):
        assert exclusive_scan(np.zeros(0, dtype=np.int64)).size == 0

    def test_single_element(self):
        assert np.array_equal(exclusive_scan(np.array([5])), [0])

    def test_non_power_of_two_lengths(self):
        for n in (3, 5, 17, 100, 1023):
            x = np.arange(n)
            assert np.array_equal(exclusive_scan(x), np.concatenate([[0], np.cumsum(x)[:-1]]))

    @given(int_arrays)
    @settings(max_examples=60, deadline=None)
    def test_exclusive_scan_matches_cumsum(self, xs):
        x = np.array(xs, dtype=np.int64)
        got = exclusive_scan(x)
        ref = np.concatenate([[0], np.cumsum(x)[:-1]]) if x.size else x
        assert np.array_equal(got, ref)

    def test_work_accounting(self):
        w = ScanWork()
        exclusive_scan(np.arange(64), w)
        assert w.n == 64
        assert w.levels == 12  # 6 up-sweep + 6 down-sweep
        assert w.element_ops > 0

    def test_segmented_scan(self):
        vals = np.array([1, 1, 1, 1, 1, 1])
        heads = np.array([True, False, False, True, False, False])
        out = segmented_exclusive_scan(vals, heads)
        assert np.array_equal(out, [0, 1, 2, 0, 1, 2])

    def test_segmented_scan_requires_leading_head(self):
        with pytest.raises(ValueError):
            segmented_exclusive_scan(np.array([1, 2]), np.array([False, True]))

    def test_segmented_scan_length_mismatch(self):
        with pytest.raises(ValueError):
            segmented_exclusive_scan(np.array([1]), np.array([True, False]))

    def test_segment_ids(self):
        heads = np.array([True, False, True, True, False])
        assert np.array_equal(segment_ids(heads), [0, 0, 1, 2, 2])


class TestRadixSort:
    def test_sorted_output(self):
        rng = np.random.default_rng(0)
        keys = rng.integers(0, 2**32, size=1000)
        perm = radix_argsort(keys)
        assert np.all(np.diff(keys[perm]) >= 0)

    def test_stability(self):
        keys = np.array([5, 3, 5, 3, 5], dtype=np.int64)
        perm = radix_argsort(keys)
        # ties keep input order
        assert np.array_equal(perm, [1, 3, 0, 2, 4])

    def test_matches_numpy_stable_argsort(self):
        rng = np.random.default_rng(1)
        keys = rng.integers(0, 50, size=2000)  # many duplicates
        assert np.array_equal(radix_argsort(keys), np.argsort(keys, kind="stable"))

    @given(int_arrays)
    @settings(max_examples=60, deadline=None)
    def test_property_matches_numpy(self, xs):
        keys = np.array(xs, dtype=np.int64)
        assert np.array_equal(radix_argsort(keys), np.argsort(keys, kind="stable"))

    def test_empty(self):
        assert radix_argsort(np.zeros(0, dtype=np.int64)).size == 0

    def test_negative_keys_rejected(self):
        with pytest.raises(ValueError):
            radix_argsort(np.array([-1, 2]))

    def test_significant_passes_skips_zero_digits(self):
        assert significant_passes(np.array([0, 255])) == 1
        assert significant_passes(np.array([256])) == 2
        assert significant_passes(np.array([2**32])) == 5

    def test_work_accounting(self):
        w = RadixWork()
        radix_argsort(np.arange(100) * 1000, w)
        assert w.n == 100
        assert w.passes == significant_passes(np.arange(100) * 1000)
        assert w.element_moves == w.passes * 100

    def test_sort_pairs(self):
        keys = np.array([3, 1, 2], dtype=np.int64)
        vals = np.array([30, 10, 20], dtype=np.int64)
        sk, sv = radix_sort_pairs(keys, vals)
        assert np.array_equal(sk, [1, 2, 3])
        assert np.array_equal(sv, [10, 20, 30])


class TestCompaction:
    def test_run_heads(self):
        heads = run_heads(np.array([1, 1, 2, 3, 3, 3]))
        assert np.array_equal(heads, [True, False, True, True, False, False])

    def test_run_lengths(self):
        heads = run_heads(np.array([1, 1, 2, 3, 3, 3]))
        starts, lengths = run_lengths(heads)
        assert np.array_equal(starts, [0, 2, 3])
        assert np.array_equal(lengths, [2, 1, 3])

    def test_run_lengths_empty(self):
        starts, lengths = run_lengths(np.zeros(0, dtype=bool))
        assert starts.size == 0 and lengths.size == 0

    def test_compact_indices(self):
        flags = np.array([True, False, True, True, False])
        assert np.array_equal(compact_indices(flags), [0, 2, 3])

    def test_compact_indices_none_set(self):
        assert compact_indices(np.zeros(5, dtype=bool)).size == 0

    def test_compact_indices_all_set(self):
        assert np.array_equal(compact_indices(np.ones(4, dtype=bool)), np.arange(4))

    def test_expand_runs_inverts_run_lengths(self):
        keys = np.array([7, 7, 8, 9, 9, 9, 9])
        heads = run_heads(keys)
        starts, lengths = run_lengths(heads)
        rid = expand_runs(starts, lengths)
        assert np.array_equal(rid, [0, 0, 1, 2, 2, 2, 2])

    @given(st.lists(st.integers(0, 8), min_size=1, max_size=200))
    @settings(max_examples=40, deadline=None)
    def test_property_runs_partition_sorted_input(self, xs):
        keys = np.sort(np.array(xs, dtype=np.int64))
        heads = run_heads(keys)
        starts, lengths = run_lengths(heads)
        assert int(lengths.sum()) == keys.size
        # each run holds exactly one distinct key
        for s, ln in zip(starts, lengths, strict=True):
            assert np.unique(keys[s : s + ln]).size == 1
        assert np.unique(keys).size == starts.size

"""Shard router, sharded system, and scaling behavior."""

from __future__ import annotations

import numpy as np
import pytest

from repro import OpKind, RequestBatch, ShardPlan, ShardRouter, ShardedSystem
from repro.errors import ConfigError
from repro.harness import ExperimentConfig, shard_scaling
from repro.lincheck import SequentialReference, check_linearizable
from repro.workloads import YcsbMix, YcsbWorkload, build_key_pool

MIXED = YcsbMix(query=0.55, update=0.2, insert=0.1, delete=0.05, range_=0.1)


def _pool(seed: int, size: int = 2**10):
    return build_key_pool(size, np.random.default_rng(seed))


# --------------------------------------------------------------------- #
# ShardPlan
# --------------------------------------------------------------------- #
class TestShardPlan:
    def test_from_pool_quantiles_balance_the_pool(self):
        keys, _ = _pool(0, 2**12)
        plan = ShardPlan.from_pool(keys, 4)
        owner = plan.shard_of(keys)
        counts = np.bincount(owner, minlength=4)
        assert counts.sum() == keys.size
        assert counts.max() - counts.min() <= 1

    def test_single_shard_plan_owns_everything(self):
        plan = ShardPlan.from_pool(np.arange(100), 1)
        assert plan.n_shards == 1
        assert plan.shard_of(np.array([-5, 0, 10**9])).tolist() == [0, 0, 0]

    def test_bounds_tile_the_key_space(self):
        plan = ShardPlan(fences=np.array([10, 20, 30], dtype=np.int64))
        assert plan.n_shards == 4
        for s in range(3):
            hi = plan.bounds(s)[1]
            lo_next = plan.bounds(s + 1)[0]
            assert hi + 1 == lo_next
        assert plan.shard_of(9) == 0
        assert plan.shard_of(10) == 1
        assert plan.shard_of(30) == 3

    def test_partition_pool_respects_ownership(self):
        keys, values = _pool(1)
        plan = ShardPlan.from_pool(keys, 3)
        parts = plan.partition_pool(keys, values)
        assert sum(len(k) for k, _ in parts) == keys.size
        for s, (ks, _) in enumerate(parts):
            lo, hi = plan.bounds(s)
            assert np.all((ks >= lo) & (ks <= hi))

    def test_rejects_bad_plans(self):
        with pytest.raises(ConfigError):
            ShardPlan(fences=np.array([5, 5], dtype=np.int64))
        with pytest.raises(ConfigError):
            ShardPlan.from_pool(np.arange(3), 5)
        with pytest.raises(ConfigError):
            ShardPlan.from_pool(np.arange(10), 0)


# --------------------------------------------------------------------- #
# ShardRouter
# --------------------------------------------------------------------- #
class TestShardRouter:
    def test_point_requests_go_to_their_owner(self):
        plan = ShardPlan(fences=np.array([100], dtype=np.int64))
        router = ShardRouter(plan)
        batch = RequestBatch.from_ops(
            [
                (OpKind.QUERY, 50),
                (OpKind.UPDATE, 150, 1),
                (OpKind.DELETE, 99),
                (OpKind.INSERT, 100, 2),
            ]
        )
        routed = router.route(batch)
        assert routed[0].origin.tolist() == [0, 2]
        assert routed[1].origin.tolist() == [1, 3]

    def test_arrival_order_is_preserved_per_shard(self):
        keys, _ = _pool(2)
        plan = ShardPlan.from_pool(keys, 4)
        rng = np.random.default_rng(0)
        batch = YcsbWorkload(pool=keys, mix=MIXED).generate(512, rng)
        for sub in ShardRouter(plan).route(batch):
            assert np.all(np.diff(sub.origin) > 0)

    def test_cross_shard_range_is_clipped_at_fences(self):
        plan = ShardPlan(fences=np.array([100, 200], dtype=np.int64))
        router = ShardRouter(plan)
        batch = RequestBatch.from_ops([(OpKind.RANGE, 50, 250)])
        routed = router.route(batch)
        pieces = [
            (int(sub.batch.keys[0]), int(sub.batch.range_ends[0]))
            for sub in routed
            if sub.n
        ]
        assert pieces == [(50, 99), (100, 199), (200, 250)]
        assert all(sub.origin.tolist() == [0] for sub in routed if sub.n)

    def test_contained_range_visits_one_shard(self):
        plan = ShardPlan(fences=np.array([100], dtype=np.int64))
        batch = RequestBatch.from_ops([(OpKind.RANGE, 10, 20)])
        routed = ShardRouter(plan).route(batch)
        assert routed[0].n == 1 and routed[1].n == 0


# --------------------------------------------------------------------- #
# ShardedSystem: linearizability + equivalence with the single tree
# --------------------------------------------------------------------- #
class TestShardedSystem:
    @pytest.mark.parametrize("n_shards", [1, 2, 3, 4])
    def test_mixed_batches_linearizable(self, n_shards):
        keys, values = _pool(3)
        fleet = ShardedSystem.build("eirene", keys, values, n_shards=n_shards)
        rng = np.random.default_rng(7)
        wl = YcsbWorkload(pool=keys, mix=MIXED)
        ref = SequentialReference(keys, values)
        for _ in range(2):
            batch = wl.generate(512, rng)
            out = fleet.process_batch(batch)
            rep = check_linearizable(batch, out.results, ref.execute(batch))
            assert rep.ok, rep.describe(batch)
        fleet.validate()

    @pytest.mark.parametrize("seed", [11, 12, 13])
    def test_sharded_equals_single_tree(self, seed):
        """Property: results and final contents match the 1-shard system."""
        keys, values = _pool(seed)
        single = ShardedSystem.build("eirene", keys, values, n_shards=1, seed=0)
        fleet = ShardedSystem.build("eirene", keys, values, n_shards=4, seed=0)
        rng_a = np.random.default_rng(seed)
        rng_b = np.random.default_rng(seed)
        wl_a = YcsbWorkload(pool=keys, mix=MIXED)
        wl_b = YcsbWorkload(pool=keys, mix=MIXED)
        for _ in range(2):
            batch = wl_a.generate(256, rng_a)
            batch_b = wl_b.generate(256, rng_b)
            out_a = single.process_batch(batch)
            out_b = fleet.process_batch(batch_b)
            np.testing.assert_array_equal(out_a.results.values, out_b.results.values)
            np.testing.assert_array_equal(
                out_a.results.range_offsets, out_b.results.range_offsets
            )
            np.testing.assert_array_equal(
                out_a.results.range_keys, out_b.results.range_keys
            )
            np.testing.assert_array_equal(
                out_a.results.range_values, out_b.results.range_values
            )
        ka, va = single.items()
        kb, vb = fleet.items()
        np.testing.assert_array_equal(ka, kb)
        np.testing.assert_array_equal(va, vb)

    def test_thread_executor_matches_serial(self):
        keys, values = _pool(4)
        rng = np.random.default_rng(5)
        batch = YcsbWorkload(pool=keys, mix=MIXED).generate(256, rng)
        serial = ShardedSystem.build("stm", keys, values, n_shards=3, executor="serial")
        threaded = ShardedSystem.build("stm", keys, values, n_shards=3, executor="thread")
        out_s = serial.process_batch(batch)
        out_t = threaded.process_batch(batch)
        np.testing.assert_array_equal(out_s.results.values, out_t.results.values)
        np.testing.assert_array_equal(out_s.results.range_keys, out_t.results.range_keys)
        assert out_s.seconds == pytest.approx(out_t.seconds)

    def test_merged_outcome_carries_per_shard_breakdown(self):
        keys, values = _pool(6)
        fleet = ShardedSystem.build("lock", keys, values, n_shards=2)
        rng = np.random.default_rng(1)
        batch = YcsbWorkload(pool=keys).generate(256, rng)
        out = fleet.process_batch(batch)
        qos = out.extras["shards"]
        assert [q.shard for q in qos] == [0, 1]
        assert sum(q.n_requests for q in qos) == batch.n
        assert out.seconds == pytest.approx(max(q.seconds for q in qos))
        assert all(q.throughput > 0 for q in qos)
        assert "straggler" in repr(out.extras["straggler_shard"]) or isinstance(
            out.extras["straggler_shard"], int
        )
        # merged trace sums per-shard traces; shard traces kept individually
        assert out.trace is not None
        assert set(out.extras["shard_traces"]) == {0, 1}

    def test_build_rejects_executor_typo(self):
        keys, values = _pool(8)
        with pytest.raises(ConfigError):
            ShardedSystem.build("nocc", keys, values, n_shards=2, executor="processes")


# --------------------------------------------------------------------- #
# scaling benchmark (harness)
# --------------------------------------------------------------------- #
def test_shard_scaling_reports_speedup_floor():
    cfg = ExperimentConfig(
        tree_size=2**11, batch_size=2**10, n_batches=1, fanout=8, num_sms=4
    )
    fig = shard_scaling(cfg, shard_counts=(1, 2, 4))
    assert fig.value("4 shards", "speedup") >= 1.5
    assert fig.value("1 shard", "speedup") == 1.0
    assert any("merged trace" in n for n in fig.notes)

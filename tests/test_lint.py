"""Device-code lint: self-test over src/repro + per-rule fixture checks."""

from __future__ import annotations

from pathlib import Path

import pytest

import repro
from repro.analysis.lint import lint_file, lint_paths, lint_source, main

REPRO_ROOT = Path(repro.__file__).resolve().parent
FIXTURES = Path(__file__).resolve().parent / "lint_fixtures"


def rules_in(findings):
    return [f.rule for f in findings]


# --------------------------------------------------------------------- #
# the gate: the entire package must be clean
# --------------------------------------------------------------------- #
def test_repro_tree_is_lint_clean():
    findings = lint_paths([REPRO_ROOT])
    assert findings == [], "\n".join(str(f) for f in findings)


def test_cli_main_clean_and_dirty(capsys):
    assert main([str(REPRO_ROOT / "locks")]) == 0
    assert main([str(FIXTURES)]) == 1
    out = capsys.readouterr().out
    assert "finding(s)" in out


# --------------------------------------------------------------------- #
# each rule fires on its fixture
# --------------------------------------------------------------------- #
def test_r1_non_op_yield():
    findings = lint_file(FIXTURES / "bad_non_op_yield.py")
    assert rules_in(findings) == ["R1-op-protocol", "R1-op-protocol"]
    assert {f.func for f in findings} == {
        "d_bad_yields_int", "d_bad_bare_yield"
    }
    assert "bare yield" in findings[1].message


def test_r2_unused_result():
    findings = lint_file(FIXTURES / "bad_unused_result.py")
    assert rules_in(findings) == ["R2-unused-result", "R2-unused-result"]
    assert {f.func for f in findings} == {"d_discards_load", "d_discards_cas"}
    # bare AtomicAdd (version-bump idiom) must NOT be flagged
    assert all("d_bare_atomic_add" not in f.func for f in findings)


def test_r3_host_call():
    findings = lint_file(FIXTURES / "bad_host_call.py")
    assert rules_in(findings) == ["R3-host-call", "R3-host-call"]
    assert {f.func for f in findings} == {"d_counted_read", "d_counted_write"}


def test_r4_missing_branch():
    findings = lint_file(FIXTURES / "bad_missing_branch.py")
    assert rules_in(findings) == ["R4-missing-branch"] * 3
    assert [f.func for f in findings] == [
        "d_if_without_branch",
        "d_loop_without_branch",
        "d_derived_taint_without_branch",
    ]
    assert all("d_branch_satisfies_rule" not in f.func for f in findings)


# --------------------------------------------------------------------- #
# rule boundaries (source-level cases)
# --------------------------------------------------------------------- #
def test_yield_from_results_are_exempt():
    src = """
from repro.simt.instructions import Load

def d_callee(addr):
    v = yield Load(addr)
    return v

def d_caller(addr):
    v = yield from d_callee(addr)
    if v:  # clean: delegation charges the callee's branch discipline
        return 1
    return 0
"""
    findings = [f for f in lint_source(src) if f.rule == "R4-missing-branch"]
    # d_callee itself has no control flow; d_caller's test is exempt
    assert findings == []


def test_non_device_generators_ignored():
    src = """
def chunks(items, n):
    for i in range(0, len(items), n):
        yield items[i : i + n]
"""
    assert lint_source(src) == []


def test_reassignment_clears_taint():
    src = """
from repro.simt.instructions import Load

def d_overwrites(addr):
    v = yield Load(addr)
    v = 0
    if v:  # clean: v no longer carries the loaded value
        return 1
    return 0
"""
    assert lint_source(src) == []


def test_syntax_error_reported_not_raised():
    findings = lint_source("def d_broken(:\n")
    assert rules_in(findings) == ["R0-syntax"]


def test_findings_carry_location():
    findings = lint_file(FIXTURES / "bad_missing_branch.py")
    f = findings[0]
    assert f.path.endswith("bad_missing_branch.py")
    assert f.line > 0
    assert "Branch" in f.message
    assert str(f).startswith(f.path)

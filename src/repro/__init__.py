"""Eirene — combining-based synchronization for concurrent GPU B+trees.

A full Python reproduction of Zhang et al., *"Boosting Performance and QoS
for Concurrent GPU B+trees by Combining-based Synchronization"* (PPoPP'23),
built on a SIMT execution simulator (:mod:`repro.simt`) instead of a
physical GPU. See DESIGN.md for the system inventory and EXPERIMENTS.md for
per-figure reproduction results.

Quickstart::

    import numpy as np
    from repro import make_system, YcsbWorkload, build_key_pool

    rng = np.random.default_rng(0)
    keys, values = build_key_pool(2**14, rng)
    eirene = make_system("eirene", keys, values)
    batch = YcsbWorkload(pool=keys).generate(4096, rng)
    outcome = eirene.process_batch(batch)
    print(outcome.throughput.describe())
"""

from ._types import EMPTY_KEY, MAX_KEY, NO_NODE, NULL_VALUE, OpKind
from .baselines import (
    BatchOutcome,
    LockGBTree,
    NoCCGBTree,
    StmGBTree,
    System,
    merge_outcomes,
)
from .btree import BPlusTree
from .config import COMBINING_ONLY, FULL_EIRENE, DeviceConfig, EireneConfig, TreeConfig
from .core import EireneTree
from .device import DeviceContext, DeviceSnapshot
from .errors import (
    ConfigError,
    LinearizabilityViolation,
    ReproError,
    TransactionAborted,
    TreeError,
    WorkloadError,
)
from .factory import build_device_tree, build_tree, make_system
from .lincheck import SequentialReference, check_linearizable
from .memory import MemoryArena
from .metrics import ResponseTimeStats, ShardQoS, ThroughputResult, response_time_stats
from .sharding import ShardPlan, ShardRouter, ShardedSystem
from .workloads import (
    PAPER_DEFAULT,
    RANGE_4,
    RANGE_8,
    BatchResults,
    RequestBatch,
    YcsbMix,
    YcsbWorkload,
    build_key_pool,
)

__version__ = "1.0.0"

__all__ = [
    "BPlusTree",
    "BatchOutcome",
    "BatchResults",
    "COMBINING_ONLY",
    "ConfigError",
    "DeviceConfig",
    "DeviceContext",
    "DeviceSnapshot",
    "EMPTY_KEY",
    "EireneConfig",
    "EireneTree",
    "FULL_EIRENE",
    "LinearizabilityViolation",
    "LockGBTree",
    "MAX_KEY",
    "MemoryArena",
    "NO_NODE",
    "NULL_VALUE",
    "NoCCGBTree",
    "OpKind",
    "PAPER_DEFAULT",
    "RANGE_4",
    "RANGE_8",
    "ReproError",
    "RequestBatch",
    "ResponseTimeStats",
    "SequentialReference",
    "ShardPlan",
    "ShardQoS",
    "ShardRouter",
    "ShardedSystem",
    "StmGBTree",
    "System",
    "ThroughputResult",
    "TransactionAborted",
    "TreeConfig",
    "TreeError",
    "WorkloadError",
    "YcsbMix",
    "YcsbWorkload",
    "build_device_tree",
    "build_key_pool",
    "build_tree",
    "check_linearizable",
    "make_system",
    "merge_outcomes",
    "response_time_stats",
]

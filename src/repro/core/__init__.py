"""Eirene core: combining, range patches, kernels, locality, the system."""

from .combining import CombinePlan, CombineWork, combine_point_requests, propagate_results
from .eirene import EireneTree
from .kernels import LaneSlot, UpdateResult, d_query, d_range_raw, d_update
from .locality import (
    IterationPlan,
    LocalitySteps,
    build_iteration_plan,
    vector_locality_steps,
)
from .range_combining import RangePatchPlan, apply_range_patches, plan_range_patches

__all__ = [
    "CombinePlan",
    "CombineWork",
    "EireneTree",
    "IterationPlan",
    "LaneSlot",
    "LocalitySteps",
    "RangePatchPlan",
    "UpdateResult",
    "apply_range_patches",
    "build_iteration_plan",
    "combine_point_requests",
    "d_query",
    "d_range_raw",
    "d_update",
    "plan_range_patches",
    "propagate_results",
    "vector_locality_steps",
]

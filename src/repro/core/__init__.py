"""Eirene core: the pass pipeline, combining, range patches, kernels,
locality, and the system itself."""

# .pipeline must import before .eirene: the system module builds its pass
# lists from the pipeline framework
from .pipeline import (
    FinalizePass,
    Pass,
    PassPipeline,
    PipelineContext,
    eirene_pass_plan,
    run_pipeline,
)
from .combining import CombinePlan, CombineWork, combine_point_requests, propagate_results
from .eirene import EireneTree
from .kernels import (
    LaneSlot,
    UpdateResult,
    d_protected_query,
    d_query,
    d_range_raw,
    d_update,
)
from .locality import (
    IterationPlan,
    LocalitySteps,
    build_iteration_plan,
    vector_locality_steps,
)
from .range_combining import RangePatchPlan, apply_range_patches, plan_range_patches

__all__ = [
    "CombinePlan",
    "CombineWork",
    "EireneTree",
    "FinalizePass",
    "IterationPlan",
    "LaneSlot",
    "LocalitySteps",
    "Pass",
    "PassPipeline",
    "PipelineContext",
    "RangePatchPlan",
    "UpdateResult",
    "apply_range_patches",
    "build_iteration_plan",
    "combine_point_requests",
    "d_protected_query",
    "d_query",
    "d_range_raw",
    "d_update",
    "eirene_pass_plan",
    "plan_range_patches",
    "propagate_results",
    "run_pipeline",
    "vector_locality_steps",
]

"""Range queries under combining (§4.1.2).

A range query cannot be combined per-key, and executing it "in the original
manner" against the tree would be wrong once updates in its range were
combined away (Fig. 4). The paper's mechanism, implemented here:

* range queries are sorted with the other requests by their lower bound
  (they ride the same pipeline; their tree scan reads the pre-batch state
  because the query kernel launches before the update kernel);
* for every key inside a range that also has update-class requests in the
  batch, an *artificial query* is generated with the range query's
  timestamp and inserted into that key's dependence chain (Fig. 5);
* after the range executes, each patched key's value in the range result is
  replaced by the artificial query's result — including **insertion** of a
  key the pre-batch tree lacked (the artificial query saw an insert before
  the range's timestamp) and **removal** of a key whose nearest preceding
  update was a delete.

An artificial query whose dependence chain has no write before the range's
timestamp resolves to the key's old value — a no-op patch, skipped.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .._types import NULL_VALUE, OpKind, is_update_kind_array
from ..workloads.requests import BatchResults, RequestBatch
from .combining import CombinePlan


@dataclass
class RangePatchPlan:
    """Artificial-query patches grouped by range request.

    Parallel arrays, sorted by (range request, key): patch ``j`` says that
    range ``range_pos[j]`` must see ``key[j]`` with ``value[j]``
    (``NULL_VALUE`` ⇒ the key is absent at the range's timestamp).
    """

    range_pos: np.ndarray = field(default_factory=lambda: np.zeros(0, dtype=np.int64))
    keys: np.ndarray = field(default_factory=lambda: np.zeros(0, dtype=np.int64))
    values: np.ndarray = field(default_factory=lambda: np.zeros(0, dtype=np.int64))

    @property
    def n(self) -> int:
        return int(self.range_pos.size)

    def patches_for(self, pos: int) -> dict[int, int]:
        sel = self.range_pos == pos
        return {
            int(k): int(v) for k, v in zip(self.keys[sel], self.values[sel], strict=True)
        }


def plan_range_patches(batch: RequestBatch, plan: CombinePlan) -> RangePatchPlan:
    """Generate artificial queries for every (range, updated key) pair."""
    range_idx = np.flatnonzero(batch.kinds == OpKind.RANGE)
    if range_idx.size == 0 or plan.n_runs == 0:
        return RangePatchPlan()

    # per-run update-element lists (sorted domain is key-major, ts-minor)
    is_upd = is_update_kind_array(plan.sorted_kinds)
    upd_pos = np.flatnonzero(is_upd)
    upd_run = plan.run_id[upd_pos]
    upd_ts = plan.sorted_orig[upd_pos]  # original index == timestamp
    upd_val = plan.sorted_values[upd_pos]
    upd_del = plan.sorted_kinds[upd_pos] == OpKind.DELETE
    # boundaries of each run's slice in upd_* (upd_run is non-decreasing)
    run_lo = np.searchsorted(upd_run, np.arange(plan.n_runs), side="left")
    run_hi = np.searchsorted(upd_run, np.arange(plan.n_runs), side="right")
    run_keys = plan.sorted_keys[plan.run_start]

    out_pos: list[int] = []
    out_key: list[int] = []
    out_val: list[int] = []
    for i in range_idx:
        ts = int(i)
        lo, hi = int(batch.keys[i]), int(batch.range_ends[i])
        r0 = int(np.searchsorted(run_keys, lo, side="left"))
        r1 = int(np.searchsorted(run_keys, hi, side="right"))
        for r in range(r0, r1):
            a, b = int(run_lo[r]), int(run_hi[r])
            if a == b:
                continue  # no updates for this key
            # artificial query at timestamp ts: nearest write strictly before
            j = int(np.searchsorted(upd_ts[a:b], ts, side="left"))
            if j == 0:
                continue  # no predecessor write: old value, no patch needed
            w = a + j - 1
            out_pos.append(ts)
            out_key.append(int(run_keys[r]))
            out_val.append(NULL_VALUE if upd_del[w] else int(upd_val[w]))
    return RangePatchPlan(
        range_pos=np.asarray(out_pos, dtype=np.int64),
        keys=np.asarray(out_key, dtype=np.int64),
        values=np.asarray(out_val, dtype=np.int64),
    )


def apply_range_patches(
    batch: RequestBatch,
    raw_ranges: dict[int, tuple[np.ndarray, np.ndarray]],
    patch_plan: RangePatchPlan,
    results: BatchResults,
) -> None:
    """Merge raw pre-batch range scans with the artificial-query patches
    and install the final ragged results."""
    patched: dict[int, tuple[np.ndarray, np.ndarray]] = {}
    for pos, (ks, vs) in raw_ranges.items():
        patches = patch_plan.patches_for(pos)
        if not patches:
            patched[pos] = (ks, vs)
            continue
        merged = {int(k): int(v) for k, v in zip(ks, vs, strict=True)}
        for k, v in patches.items():
            if v == NULL_VALUE:
                merged.pop(k, None)
            else:
                merged[k] = v
        out_k = np.array(sorted(merged), dtype=np.int64)
        out_v = np.array([merged[int(k)] for k in out_k], dtype=np.int64)
        patched[pos] = (out_k, out_v)
    results.set_range_results(patched)

"""Eirene: the combining-based concurrency control framework (§4–§7).

Pipeline per buffered batch (Algorithm 1), expressed as concrete
:class:`~repro.core.pipeline.Pass` objects selected by
:func:`~repro.core.pipeline.eirene_pass_plan` from the
:class:`~repro.config.EireneConfig` feature flags:

1. **COMBINING** (:class:`CombinePass`) — radix-sort point requests by
   (key, timestamp), combine same-key runs, build the dependence structure
   (:mod:`repro.core.combining`); range queries get artificial-query
   patches (:mod:`repro.core.range_combining`).
2. **PARTITION** (:class:`PartitionPass`) — issued requests split into the
   query kernel (queries + range queries, no synchronization) and the
   update kernel (optimistic STM with leaf-version validation). With
   ``enable_kernel_partition=False`` the split kernels are replaced by one
   *unified* kernel whose queries must take an STM-protected leaf read
   (the ablation's cost: no NTG search, protection overhead, reader
   aborts); ranges then pre-scan in their own pass so RESULT_CAL patching
   still sees pre-update state.
3. **QUERY_KERNEL / UPDATE_KERNEL** — executed under locality-aware warp
   reorganization (§5) when enabled: consecutive request groups share an
   iteration warp and reuse each other's leaf positions.
4. **RESULT_CAL** — unissued requests compute their results from the
   dependence chain and the issued requests' retrieved old values; range
   results are patched by their artificial queries.

Because exactly one request per key is issued and every result follows the
timestamp-order dependence, the outcome is linearizable (§6) — the test
suite checks every batch against the sequential reference.
"""

from __future__ import annotations

import numpy as np

from .._types import NULL_VALUE, OpKind
from ..btree import batch_find_leaf, batch_leaf_lookup
from ..btree.tree import BPlusTree
from ..config import DeviceConfig, EireneConfig, FULL_EIRENE
from ..errors import ConfigError
from ..simt import CostModel, Mark
from ..stm import DeviceStm, StmRegion
from ..baselines.base import System, simt_response_times
from ..baselines.model import (
    COALESCE_SORTED,
    OVERLAP,
    EventTotals,
    InstCost,
    phase_seconds,
    writer_collision_groups,
)
from ..workloads.requests import RequestBatch
from .combining import CombinePlan, combine_point_requests, propagate_results
from .kernels import (
    LaneSlot,
    d_protected_query,
    d_query,
    d_range_raw,
    d_update,
    make_iteration_lane_program,
    make_warp_shared,
)
from .locality import build_iteration_plan, vector_locality_steps
from .pipeline import FinalizePass, Pass, PassPipeline, PipelineContext
from .range_combining import apply_range_patches, plan_range_patches

#: fraction of a writer's leaf-region transaction window a unified-kernel
#: query's (much shorter) protected leaf read is exposed to. Only the
#: ``enable_kernel_partition=False`` ablation pays this — partitioned
#: kernels never run queries concurrently with writers.
UNIFIED_READER_EXPOSURE = 0.25


# --------------------------------------------------------------------- #
# shared host-plane passes
# --------------------------------------------------------------------- #
class CombinePass(Pass):
    """COMBINING: sort + combine point requests, cost the host phases."""

    name = "combine"

    def run(self, ctx: PipelineContext) -> None:
        plan = combine_point_requests(ctx.batch)
        t_sort, t_combine, t_rescal = ctx.system._host_phase_times(plan)
        ctx.phase.sort = t_sort
        ctx.phase.combine = t_combine
        ctx.art["plan"] = plan
        ctx.art["t_rescal"] = t_rescal
        ctx.art["old_vals"] = np.full(plan.n_runs, NULL_VALUE, dtype=np.int64)


class PartitionPass(Pass):
    """PARTITION: split issued runs into query-class and update-class."""

    name = "partition"

    def run(self, ctx: PipelineContext) -> None:
        plan: CombinePlan = ctx.art["plan"]
        q_runs, u_runs = ctx.system._partition(plan)
        ctx.art["q_runs"] = q_runs
        ctx.art["u_runs"] = u_runs


# --------------------------------------------------------------------- #
# vector-engine passes
# --------------------------------------------------------------------- #
class VectorLocalityPass(Pass):
    """§5 warp reorganization: per-class iteration plans and the resulting
    traversal step counts (horizontal walks shortcut vertical descents).

    Query-class steps are computed before update-class steps — the RF
    maintenance of :func:`vector_locality_steps` mutates tree state in that
    order, matching the kernel launch order.
    """

    name = "locality"

    def __init__(self, enable_rf: bool = True) -> None:
        self.enable_rf = enable_rf

    def run(self, ctx: PipelineContext) -> None:
        plan: CombinePlan = ctx.art["plan"]
        cfg = ctx.system.config
        for cls, runs_key in (("q", "q_runs"), ("u", "u_runs")):
            runs = ctx.art[runs_key]
            keys = plan.issued_keys[runs]
            if keys.size:
                iplan = build_iteration_plan(
                    int(keys.size), ctx.device.warp_size,
                    cfg.rgs_per_iteration_warp, ctx.device.num_sms,
                )
                ls = vector_locality_steps(ctx.tree, iplan, keys, enable_rf=self.enable_rf)
                leaves, steps = ls.leaves, ls.steps
            else:
                leaves = np.zeros(0, dtype=np.int64)
                steps = np.zeros(0, dtype=np.int64)
            ctx.art[f"{cls}_leaves"] = leaves
            ctx.art[f"{cls}_steps"] = steps


class VectorPlainTraversalPass(Pass):
    """Locality-off traversal: every issued request descends root→leaf."""

    name = "traversal"

    def run(self, ctx: PipelineContext) -> None:
        plan: CombinePlan = ctx.art["plan"]
        height = ctx.tree.height
        for cls, runs_key in (("q", "q_runs"), ("u", "u_runs")):
            runs = ctx.art[runs_key]
            keys = plan.issued_keys[runs]
            if keys.size:
                leaves, _ = batch_find_leaf(ctx.tree, keys)
                steps = np.full(keys.size, height, dtype=np.int64)
            else:
                leaves = np.zeros(0, dtype=np.int64)
                steps = np.zeros(0, dtype=np.int64)
            ctx.art[f"{cls}_leaves"] = leaves
            ctx.art[f"{cls}_steps"] = steps


class VectorQueryKernelPass(Pass):
    """QUERY_KERNEL: unsynchronized issued queries, NTG search optional."""

    name = "query_kernel"

    def __init__(self, ntg: bool = True) -> None:
        self.ntg = ntg

    def run(self, ctx: PipelineContext) -> None:
        plan: CombinePlan = ctx.art["plan"]
        im = ctx.imodel
        q_runs = ctx.art["q_runs"]
        q_keys = plan.issued_keys[q_runs]
        ctx.art["q_steps_avg"] = float(ctx.tree.height)
        if q_keys.size:
            q_steps = ctx.art["q_steps"]
            q_visit = im.node_visit_ntg if self.ntg else im.node_visit_plain
            ctx.totals.add(q_visit, count=float(q_steps.sum()), coalesce=COALESCE_SORTED)
            ctx.totals.add(
                im.leaf_lookup_plain, count=int(q_keys.size), coalesce=COALESCE_SORTED
            )
            q_old, _ = batch_leaf_lookup(ctx.tree, ctx.art["q_leaves"], q_keys)
            ctx.art["old_vals"][q_runs] = q_old
            ctx.art["q_steps_avg"] = float(q_steps.mean())
        ctx.phase.query_kernel = phase_seconds(ctx.totals, ctx.device)


class VectorRangeScanPass(Pass):
    """Range queries: pre-update leaf-chain scans (host plane), charged as
    part of the (unsynchronized) query-kernel bucket."""

    name = "range_scan"

    def run(self, ctx: PipelineContext) -> None:
        im = ctx.imodel
        raw, span_total = ctx.system._raw_ranges(ctx.batch)
        ctx.art["raw"] = raw
        if raw:
            height = ctx.tree.height
            ctx.totals.add(
                im.node_visit_plain, count=len(raw) * height, coalesce=COALESCE_SORTED
            )
            ctx.totals.add(im.leaf_lookup_plain, count=span_total, coalesce=COALESCE_SORTED)
            # copying each matched pair out costs a load+store per element
            n_elements = sum(len(ks) for ks, _ in raw.values())
            ctx.totals.add(InstCost(mem=2, alu=1), count=n_elements, coalesce=COALESCE_SORTED)
        ctx.phase.query_kernel = phase_seconds(ctx.totals, ctx.device)


class VectorUpdateKernelPass(Pass):
    """UPDATE_KERNEL: optimistic leaf-region STM; its own kernel roofline."""

    name = "update_kernel"

    def run(self, ctx: PipelineContext) -> None:
        plan: CombinePlan = ctx.art["plan"]
        im = ctx.imodel
        u_runs = ctx.art["u_runs"]
        u_keys = plan.issued_keys[u_runs]
        retries = np.zeros(ctx.n, dtype=np.float64)
        u_totals = EventTotals()
        ctx.art["u_steps_avg"] = float(ctx.tree.height)
        if u_keys.size:
            u_steps = ctx.art["u_steps"]
            u_totals.add(
                im.node_visit_plain, count=float(u_steps.sum()), coalesce=COALESCE_SORTED
            )
            u_totals.add(im.leaf_update_stm, count=int(u_keys.size), coalesce=COALESCE_SORTED)
            # structure conflicts: concurrent writers to the same leaf clash
            # only in the (short) leaf-region transaction
            _, u_rank = writer_collision_groups(ctx.art["u_leaves"])
            u_retry = OVERLAP * u_rank
            retry_cost = im.leaf_update_stm + im.abort_rollback
            u_totals.add(retry_cost, count=float(u_retry.sum()), coalesce=COALESCE_SORTED)
            u_totals.conflicts += float(u_retry.sum())
            retries[plan.issued_orig[u_runs]] = u_retry
            ctx.art["u_steps_avg"] = float(u_steps.mean())

        splits_before = len(ctx.tree.split_events)
        u_old = ctx.system._apply_issued_updates(plan, u_runs)
        splits = len(ctx.tree.split_events) - splits_before
        u_totals.add(im.split_smo, count=splits, coalesce=COALESCE_SORTED)
        ctx.phase.update_kernel = phase_seconds(u_totals, ctx.device)
        ctx.totals.merge(u_totals)
        ctx.art["old_vals"][u_runs] = u_old
        ctx.art["retries"] = retries
        ctx.art["splits"] = splits


class VectorUnifiedKernelPass(Pass):
    """``enable_kernel_partition=False`` ablation: one kernel runs queries
    and updates together. Queries lose the NTG search (the kernel is no
    longer homogeneous) and must read their leaf inside a short STM
    transaction (concurrent writers can split their leaf mid-read), paying
    ``UNIFIED_READER_EXPOSURE`` of the writers' conflict windows."""

    name = "unified_kernel"

    def run(self, ctx: PipelineContext) -> None:
        plan: CombinePlan = ctx.art["plan"]
        im = ctx.imodel
        tree = ctx.tree
        totals = ctx.totals
        height = tree.height
        q_runs, u_runs = ctx.art["q_runs"], ctx.art["u_runs"]
        q_keys = plan.issued_keys[q_runs]
        u_keys = plan.issued_keys[u_runs]
        retries = np.zeros(ctx.n, dtype=np.float64)
        ctx.art["q_steps_avg"] = float(height)
        ctx.art["u_steps_avg"] = float(height)

        u_leaves = ctx.art["u_leaves"]
        writers_on_leaf = (
            np.bincount(u_leaves, minlength=tree.max_nodes)
            if u_leaves.size
            else np.zeros(tree.max_nodes, dtype=np.int64)
        )

        if u_keys.size:
            u_steps = ctx.art["u_steps"]
            totals.add(
                im.node_visit_plain, count=float(u_steps.sum()), coalesce=COALESCE_SORTED
            )
            totals.add(im.leaf_update_stm, count=int(u_keys.size), coalesce=COALESCE_SORTED)
            _, u_rank = writer_collision_groups(u_leaves)
            u_retry = OVERLAP * u_rank
            retry_cost = im.leaf_update_stm + im.abort_rollback
            totals.add(retry_cost, count=float(u_retry.sum()), coalesce=COALESCE_SORTED)
            totals.conflicts += float(u_retry.sum())
            retries[plan.issued_orig[u_runs]] = u_retry
            ctx.art["u_steps_avg"] = float(u_steps.mean())

        if q_keys.size:
            q_steps = ctx.art["q_steps"]
            q_leaves = ctx.art["q_leaves"]
            # plain per-lane scans (no NTG) + protected leaf-region read
            totals.add(
                im.node_visit_plain, count=float(q_steps.sum()), coalesce=COALESCE_SORTED
            )
            q_leaf_read = im.leaf_lookup_stm + im.tx_begin_commit_query
            totals.add(q_leaf_read, count=int(q_keys.size), coalesce=COALESCE_SORTED)
            q_retry = OVERLAP * UNIFIED_READER_EXPOSURE * writers_on_leaf[q_leaves]
            totals.add(q_leaf_read, count=float(q_retry.sum()), coalesce=COALESCE_SORTED)
            totals.conflicts += float(q_retry.sum())
            retries[plan.issued_orig[q_runs]] += q_retry
            # old values are read before the host applies the batch's updates
            q_old, _ = batch_leaf_lookup(tree, q_leaves, q_keys)
            ctx.art["old_vals"][q_runs] = q_old
            ctx.art["q_steps_avg"] = float(q_steps.mean())

        splits_before = len(tree.split_events)
        u_old = ctx.system._apply_issued_updates(plan, u_runs)
        splits = len(tree.split_events) - splits_before
        totals.add(im.split_smo, count=splits, coalesce=COALESCE_SORTED)
        ctx.art["old_vals"][u_runs] = u_old
        ctx.art["retries"] = retries
        ctx.art["splits"] = splits
        # one launch: a single roofline over the merged work (incl. ranges)
        ctx.phase.query_kernel = phase_seconds(totals, ctx.device)


class VectorResultCalPass(Pass):
    """RESULT_CAL: propagate dependence-chain results, patch ranges, model
    response times (retry-heavy requests respond late)."""

    name = "result_cal"

    def run(self, ctx: PipelineContext) -> None:
        batch = ctx.batch
        plan: CombinePlan = ctx.art["plan"]
        im = ctx.imodel
        n = ctx.n
        propagate_results(plan, ctx.art["old_vals"], ctx.results)
        patches = plan_range_patches(batch, plan)
        apply_range_patches(batch, ctx.art.get("raw", {}), patches, ctx.results)
        ctx.phase.result_cal = ctx.art["t_rescal"]

        seconds = ctx.phase.total
        # response times: every request's result is ready at the end of the
        # pipeline; conflict retries add per-request jitter on top
        resp = np.full(n, seconds / max(n, 1))
        retries = ctx.art.get("retries")
        if retries is not None and retries.any():
            jitter = retries * (im.leaf_update_stm.mem + im.abort_rollback.mem) \
                * ctx.device.cycles_per_mem_transaction / ctx.device.clock_hz / n
            resp = resp + jitter
        ctx.response_time_s = resp

        q_steps, u_steps = ctx.art["q_steps"], ctx.art["u_steps"]
        issued_steps = np.concatenate([q_steps, u_steps]) if (
            q_steps.size or u_steps.size
        ) else np.zeros(0)
        ctx.traversal_steps = (
            float(issued_steps.mean()) if issued_steps.size else float(ctx.tree.height)
        )
        ctx.extras.update(
            plan=plan,
            n_combined=plan.n_combined,
            splits=ctx.art.get("splits", 0),
            query_steps=ctx.art["q_steps_avg"],
            update_steps=ctx.art["u_steps_avg"],
        )


# --------------------------------------------------------------------- #
# SIMT-engine passes
# --------------------------------------------------------------------- #
def _merge_counters_into(totals: EventTotals, counters) -> None:
    totals.mem += counters.mem_inst
    totals.ctrl += counters.control_inst
    totals.alu += counters.alu_inst
    totals.atomic += counters.atomic_inst
    totals.transactions += counters.transactions


class SimtQueryKernelPass(Pass):
    """QUERY_KERNEL launch: issued queries (iteration warps under locality)
    plus the batch's range programs, all in one unsynchronized launch."""

    name = "query_kernel"

    def __init__(self, locality: bool = True) -> None:
        self.locality = locality

    def run(self, ctx: PipelineContext) -> None:
        system = ctx.system
        batch = ctx.batch
        plan: CombinePlan = ctx.art["plan"]
        old_vals = ctx.art["old_vals"]
        steps_record = ctx.art.setdefault("steps_record", [])
        raw = ctx.art.setdefault("raw", {})
        q_runs = ctx.art["q_runs"]
        q_keys = plan.issued_keys[q_runs]

        launch = ctx.devctx.launch(ctx.n, rng=ctx.launch_rng())

        def on_result(slot: LaneSlot, val: int, steps: int, _horiz: bool) -> None:
            old_vals[slot.tag] = val
            steps_record.append(steps)

        if q_keys.size:
            if self.locality:
                system._add_iteration_warps(launch, plan, q_runs, on_result, update_ctx=None)
            else:
                launch.add_programs(
                    [
                        system._plain_query_program(plan, int(r), old_vals, steps_record)
                        for r in q_runs
                    ]
                )
        for i in np.flatnonzero(batch.kinds == OpKind.RANGE):
            launch.add_programs(
                [system._range_program(int(i), int(batch.keys[i]), int(batch.range_ends[i]), raw)]
            )
        counters = launch.run() if launch.n_warps else None
        if counters is not None:
            _merge_counters_into(ctx.totals, counters)
            ctx.phase.query_kernel = ctx.device.cycles_to_seconds(counters.cycles)
            ctx.art.setdefault("counters_list", []).append(counters)


class SimtUpdateKernelPass(Pass):
    """UPDATE_KERNEL launch: issued update-class requests under optimistic
    leaf-region STM (Algorithm 1); real conflicts from the STM stats."""

    name = "update_kernel"

    def __init__(self, locality: bool = True) -> None:
        self.locality = locality

    def run(self, ctx: PipelineContext) -> None:
        system = ctx.system
        cfg = system.config
        plan: CombinePlan = ctx.art["plan"]
        old_vals = ctx.art["old_vals"]
        steps_record = ctx.art.setdefault("steps_record", [])
        u_runs = ctx.art["u_runs"]
        u_retries = np.zeros(ctx.n, dtype=np.int64)
        stm_before = system.stm.stats.snapshot()

        launch = ctx.devctx.launch(ctx.n, rng=ctx.launch_rng())

        def on_result(slot: LaneSlot, val: int, steps: int, _horiz: bool) -> None:
            old_vals[slot.tag] = val
            steps_record.append(steps)

        if u_runs.size:
            if self.locality:
                system._add_iteration_warps(
                    launch,
                    plan,
                    u_runs,
                    on_result,
                    update_ctx=(system.stm, system.smo_lock_addr, cfg.stm_retry_threshold),
                )
            else:
                launch.add_programs(
                    [
                        system._plain_update_program(plan, int(r), old_vals, u_retries, steps_record)
                        for r in u_runs
                    ]
                )
        counters = launch.run() if launch.n_warps else None
        stm_delta = system.stm.stats.delta_since(stm_before)
        if counters is not None:
            _merge_counters_into(ctx.totals, counters)
            ctx.phase.update_kernel = ctx.device.cycles_to_seconds(counters.cycles)
            ctx.art.setdefault("counters_list", []).append(counters)
        ctx.totals.conflicts += float(stm_delta.conflicts)
        ctx.extras["stm"] = stm_delta
        ctx.extras["retries"] = int(u_retries.sum())


class SimtRangeScanPass(Pass):
    """Unified-kernel mode only: range programs launch *before* the unified
    kernel so they scan pre-update state (RESULT_CAL patches assume it)."""

    name = "range_scan"

    def run(self, ctx: PipelineContext) -> None:
        system = ctx.system
        batch = ctx.batch
        raw = ctx.art.setdefault("raw", {})
        range_idx = np.flatnonzero(batch.kinds == OpKind.RANGE)
        if not range_idx.size:
            return
        launch = ctx.devctx.launch(ctx.n, rng=ctx.launch_rng())
        for i in range_idx:
            launch.add_programs(
                [system._range_program(int(i), int(batch.keys[i]), int(batch.range_ends[i]), raw)]
            )
        counters = launch.run()
        _merge_counters_into(ctx.totals, counters)
        ctx.phase.query_kernel += ctx.device.cycles_to_seconds(counters.cycles)
        ctx.art.setdefault("counters_list", []).append(counters)


class SimtUnifiedKernelPass(Pass):
    """``enable_kernel_partition=False`` ablation: every issued request in
    one launch. Update-class requests run Algorithm 1 unchanged; queries run
    :func:`~repro.core.kernels.d_protected_query` — they can race concurrent
    leaf splits, so their leaf read needs the STM leaf-region transaction."""

    name = "unified_kernel"

    def __init__(self, locality: bool = True) -> None:
        self.locality = locality

    def run(self, ctx: PipelineContext) -> None:
        system = ctx.system
        cfg = system.config
        plan: CombinePlan = ctx.art["plan"]
        old_vals = ctx.art["old_vals"]
        steps_record = ctx.art.setdefault("steps_record", [])
        all_runs = np.arange(plan.n_runs)
        u_retries = np.zeros(ctx.n, dtype=np.int64)
        stm_before = system.stm.stats.snapshot()

        launch = ctx.devctx.launch(ctx.n, rng=ctx.launch_rng())

        def on_result(slot: LaneSlot, val: int, steps: int, _horiz: bool) -> None:
            old_vals[slot.tag] = val
            steps_record.append(steps)

        if all_runs.size:
            if self.locality:
                system._add_iteration_warps(
                    launch,
                    plan,
                    all_runs,
                    on_result,
                    update_ctx=(system.stm, system.smo_lock_addr, cfg.stm_retry_threshold),
                )
            else:
                programs = []
                for r in all_runs:
                    if int(plan.run_has_update[r]):
                        programs.append(
                            system._plain_update_program(
                                plan, int(r), old_vals, u_retries, steps_record
                            )
                        )
                    else:
                        programs.append(
                            system._protected_query_program(plan, int(r), old_vals, steps_record)
                        )
                launch.add_programs(programs)
        counters = launch.run() if launch.n_warps else None
        stm_delta = system.stm.stats.delta_since(stm_before)
        if counters is not None:
            _merge_counters_into(ctx.totals, counters)
            ctx.phase.query_kernel += ctx.device.cycles_to_seconds(counters.cycles)
            ctx.art.setdefault("counters_list", []).append(counters)
        ctx.totals.conflicts += float(stm_delta.conflicts)
        ctx.extras["stm"] = stm_delta
        ctx.extras["retries"] = int(u_retries.sum())


class SimtResultCalPass(Pass):
    """RESULT_CAL + response times from the merged launch counters."""

    name = "result_cal"

    def run(self, ctx: PipelineContext) -> None:
        batch = ctx.batch
        plan: CombinePlan = ctx.art["plan"]
        n = ctx.n
        propagate_results(plan, ctx.art["old_vals"], ctx.results)
        patches = plan_range_patches(batch, plan)
        apply_range_patches(batch, ctx.art.get("raw", {}), patches, ctx.results)
        ctx.phase.result_cal = ctx.art["t_rescal"]

        merged = None
        for counters in ctx.art.get("counters_list", []):
            merged = counters if merged is None else merged.merge(counters)
        seconds = ctx.phase.total
        if merged is not None:
            ctx.response_time_s = simt_response_times(merged, seconds, n)
        else:
            ctx.response_time_s = np.full(n, seconds / max(n, 1))
        ctx.counters = merged

        steps_arr = np.asarray(ctx.art.get("steps_record", []), dtype=np.int64)
        ctx.traversal_steps = (
            float(steps_arr.mean()) if steps_arr.size else float(ctx.tree.height)
        )
        ctx.extras.update(plan=plan, n_combined=plan.n_combined)


class EireneTree(System):
    """Combining-based concurrent GPU B+tree."""

    name = "Eirene"

    def __init__(
        self,
        tree: BPlusTree,
        stm_region: StmRegion,
        smo_lock_addr: int,
        device: DeviceConfig | None = None,
        config: EireneConfig = FULL_EIRENE,
        cost: CostModel | None = None,
        devctx=None,
    ) -> None:
        super().__init__(tree, device, devctx)
        if not config.enable_combining:
            raise ConfigError(
                "EireneTree always combines; for the no-combining baseline "
                "use StmGBTree (the paper's Fig. 11 ablation does the same)"
            )
        self.config = config
        self.stm = DeviceStm(tree.arena, stm_region)
        self.smo_lock_addr = smo_lock_addr
        self.cost = cost or self.devctx.cost

    # ------------------------------------------------------------------ #
    # pipeline assembly: EireneConfig flags -> pass selection
    # ------------------------------------------------------------------ #
    def build_pipeline(self, engine: str) -> PassPipeline:
        from .pipeline import eirene_pass_plan

        cfg = self.config
        factories = {
            "combine": CombinePass,
            "partition": PartitionPass,
            "finalize": FinalizePass,
        }
        if engine == "vector":
            factories.update(
                locality=lambda: VectorLocalityPass(enable_rf=cfg.enable_rf_decision),
                traversal=VectorPlainTraversalPass,
                query_kernel=lambda: VectorQueryKernelPass(
                    ntg=cfg.enable_narrowed_thread_groups
                ),
                range_scan=VectorRangeScanPass,
                update_kernel=VectorUpdateKernelPass,
                unified_kernel=VectorUnifiedKernelPass,
                result_cal=VectorResultCalPass,
            )
        else:
            factories.update(
                query_kernel=lambda: SimtQueryKernelPass(locality=cfg.enable_locality),
                update_kernel=lambda: SimtUpdateKernelPass(locality=cfg.enable_locality),
                range_scan=SimtRangeScanPass,
                unified_kernel=lambda: SimtUnifiedKernelPass(locality=cfg.enable_locality),
                result_cal=SimtResultCalPass,
            )
        passes = [factories[name]() for name in eirene_pass_plan(cfg, engine)]
        return PassPipeline(passes, name=f"eirene/{engine}")

    # ------------------------------------------------------------------ #
    # shared pipeline pieces (called by the passes above)
    # ------------------------------------------------------------------ #
    def _partition(self, plan: CombinePlan) -> tuple[np.ndarray, np.ndarray]:
        """Indices (into runs) of query-issued vs update-issued runs."""
        upd = plan.run_has_update
        return np.flatnonzero(~upd), np.flatnonzero(upd)

    def _host_phase_times(self, plan: CombinePlan) -> tuple[float, float, float]:
        """Sort / combine / result-cal device time from primitive work."""
        c = self.cost
        n = plan.n_point
        t_sort = c.seconds(c.cycles_per_sort_element_pass * plan.work.sort.passes * max(n, 1))
        t_combine = c.seconds(c.cycles_per_scan_element * max(plan.work.scan_elements, n))
        t_rescal = c.seconds(
            c.cycles_per_result_cal * max(plan.n_combined, 1)
            + c.cycles_per_scan_element * n
        )
        return t_sort, t_combine, t_rescal

    def _raw_ranges(self, batch: RequestBatch) -> tuple[dict, int]:
        """Pre-update range scans + total leaves spanned (host plane)."""
        raw: dict[int, tuple[np.ndarray, np.ndarray]] = {}
        span_total = 0
        for i in np.flatnonzero(batch.kinds == OpKind.RANGE):
            lo, hi = int(batch.keys[i]), int(batch.range_ends[i])
            ks, vs = self.tree.range_scan(lo, hi)
            raw[int(i)] = (ks, vs)
            span_total += max(1, len(ks) // max(self.imodel.fanout // 2, 1) + 1)
        return raw, span_total

    def _apply_issued_updates(self, plan: CombinePlan, u_runs: np.ndarray) -> np.ndarray:
        """Apply issued update-class requests (unique keys) host-side in
        run order; returns their old values."""
        old = np.full(u_runs.size, NULL_VALUE, dtype=np.int64)
        tree = self.tree
        for j, r in enumerate(u_runs):
            kind = int(plan.issued_kinds[r])
            key = int(plan.issued_keys[r])
            if kind == OpKind.DELETE:
                old[j] = tree.delete(key)
            else:
                old[j] = tree.upsert(key, int(plan.issued_values[r]))
        return old

    # ------------------------------------------------------------------ #
    # SIMT program builders
    # ------------------------------------------------------------------ #
    def _plain_query_program(self, plan: CombinePlan, run: int, old_vals, steps_record):
        tree = self.tree
        key = int(plan.issued_keys[run])
        req_id = int(plan.issued_orig[run])

        def program():
            val, steps = yield from d_query(tree, key)
            old_vals[run] = val
            steps_record.append(steps)
            yield Mark(req_id)

        return program()

    def _protected_query_program(self, plan: CombinePlan, run: int, old_vals, steps_record):
        """Unified-kernel query: STM-protected leaf read (can race writers)."""
        tree = self.tree
        key = int(plan.issued_keys[run])
        req_id = int(plan.issued_orig[run])

        def program():
            val, steps, _retries, _horiz, _leaf = yield from d_protected_query(
                tree, self.stm, key
            )
            old_vals[run] = val
            steps_record.append(steps)
            yield Mark(req_id)

        return program()

    def _range_program(self, req_id: int, lo: int, hi: int, raw: dict):
        tree = self.tree

        def program():
            ks, vs, _steps = yield from d_range_raw(tree, lo, hi)
            raw[req_id] = (np.array(ks, dtype=np.int64), np.array(vs, dtype=np.int64))
            yield Mark(req_id)

        return program()

    def _plain_update_program(self, plan: CombinePlan, run: int, old_vals, u_retries, steps_record):
        tree = self.tree
        cfg = self.config
        kind = int(plan.issued_kinds[run])
        key = int(plan.issued_keys[run])
        value = int(plan.issued_values[run])
        req_id = int(plan.issued_orig[run])

        def program():
            res = yield from d_update(
                tree, self.stm, self.smo_lock_addr, cfg.stm_retry_threshold,
                req_id, kind, key, value,
            )
            old_vals[run] = res.old
            u_retries[req_id] = res.retries
            steps_record.append(res.steps)
            yield Mark(req_id)

        return program()

    def _add_iteration_warps(self, launch, plan: CombinePlan, runs: np.ndarray,
                             on_result, update_ctx) -> None:
        """Pack the issued requests of ``runs`` (key-sorted) into iteration
        warps of ``rgs_per_iteration_warp`` request groups each."""
        cfg = self.config
        ws = self.device.warp_size
        iplan = build_iteration_plan(
            int(runs.size), ws, cfg.rgs_per_iteration_warp, self.device.num_sms
        )
        for w in range(iplan.n_warps):
            rgs = iplan.rgs_of_warp(w)
            n_iters = len(rgs)
            shared = make_warp_shared(n_iters)
            lane_count = max(int(iplan.rg_end[r] - iplan.rg_start[r]) for r in rgs)
            last_lane = [int(iplan.rg_end[r] - iplan.rg_start[r]) - 1 for r in rgs]
            rg_max_key = [int(plan.issued_keys[runs[int(iplan.rg_end[r]) - 1]]) for r in rgs]
            programs = []
            for lane in range(lane_count):
                slots: list[LaneSlot | None] = []
                for r in rgs:
                    pos = int(iplan.rg_start[r]) + lane
                    if pos < int(iplan.rg_end[r]):
                        run = int(runs[pos])
                        slots.append(
                            LaneSlot(
                                req_id=int(plan.issued_orig[run]),
                                kind=int(plan.issued_kinds[run]),
                                key=int(plan.issued_keys[run]),
                                value=int(plan.issued_values[run]),
                                tag=run,
                            )
                        )
                    else:
                        slots.append(None)
                programs.append(
                    make_iteration_lane_program(
                        self.tree, shared, lane, lane_count, slots, last_lane,
                        rg_max_key, cfg.enable_rf_decision, on_result, update_ctx,
                    )
                )
            launch.add_warp(programs)

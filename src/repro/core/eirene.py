"""Eirene: the combining-based concurrency control framework (§4–§7).

Pipeline per buffered batch (Algorithm 1):

1. **COMBINING** — radix-sort point requests by (key, timestamp), combine
   same-key runs, build the dependence structure
   (:mod:`repro.core.combining`); range queries get artificial-query
   patches (:mod:`repro.core.range_combining`).
2. **PARTITION** — issued requests split into the query kernel (queries +
   range queries, no synchronization) and the update kernel (optimistic
   STM with leaf-version validation).
3. **QUERY_KERNEL / UPDATE_KERNEL** — executed under locality-aware warp
   reorganization (§5) when enabled: consecutive request groups share an
   iteration warp and reuse each other's leaf positions.
4. **RESULT_CAL** — unissued requests compute their results from the
   dependence chain and the issued requests' retrieved old values; range
   results are patched by their artificial queries.

Because exactly one request per key is issued and every result follows the
timestamp-order dependence, the outcome is linearizable (§6) — the test
suite checks every batch against the sequential reference.
"""

from __future__ import annotations

import numpy as np

from .._types import NULL_VALUE, OpKind
from ..btree import batch_find_leaf, batch_leaf_lookup
from ..btree.tree import BPlusTree
from ..config import DeviceConfig, EireneConfig, FULL_EIRENE
from ..errors import ConfigError
from ..simt import CostModel, KernelLaunch, Mark, PhaseTime
from ..stm import DeviceStm, StmRegion
from ..baselines.base import BatchOutcome, System, simt_response_times
from ..baselines.model import (
    COALESCE_SORTED,
    OVERLAP,
    EventTotals,
    InstCost,
    phase_seconds,
    writer_collision_groups,
)
from ..workloads.requests import BatchResults, RequestBatch
from .combining import CombinePlan, combine_point_requests, propagate_results
from .kernels import LaneSlot, d_query, d_range_raw, d_update, make_iteration_lane_program, make_warp_shared
from .locality import build_iteration_plan, vector_locality_steps
from .range_combining import apply_range_patches, plan_range_patches


class EireneTree(System):
    """Combining-based concurrent GPU B+tree."""

    name = "Eirene"

    def __init__(
        self,
        tree: BPlusTree,
        stm_region: StmRegion,
        smo_lock_addr: int,
        device: DeviceConfig | None = None,
        config: EireneConfig = FULL_EIRENE,
        cost: CostModel | None = None,
    ) -> None:
        super().__init__(tree, device)
        if not config.enable_combining:
            raise ConfigError(
                "EireneTree always combines; for the no-combining baseline "
                "use StmGBTree (the paper's Fig. 11 ablation does the same)"
            )
        self.config = config
        self.stm = DeviceStm(tree.arena, stm_region)
        self.smo_lock_addr = smo_lock_addr
        self.cost = cost or CostModel(device=self.device)

    # ------------------------------------------------------------------ #
    # shared pipeline pieces
    # ------------------------------------------------------------------ #
    def _partition(self, plan: CombinePlan) -> tuple[np.ndarray, np.ndarray]:
        """Indices (into runs) of query-issued vs update-issued runs."""
        upd = plan.run_has_update
        return np.flatnonzero(~upd), np.flatnonzero(upd)

    def _host_phase_times(self, plan: CombinePlan) -> tuple[float, float, float]:
        """Sort / combine / result-cal device time from primitive work."""
        c = self.cost
        n = plan.n_point
        t_sort = c.seconds(c.cycles_per_sort_element_pass * plan.work.sort.passes * max(n, 1))
        t_combine = c.seconds(c.cycles_per_scan_element * max(plan.work.scan_elements, n))
        t_rescal = c.seconds(
            c.cycles_per_result_cal * max(plan.n_combined, 1)
            + c.cycles_per_scan_element * n
        )
        return t_sort, t_combine, t_rescal

    def _raw_ranges(self, batch: RequestBatch) -> tuple[dict, int]:
        """Pre-update range scans + total leaves spanned (host plane)."""
        raw: dict[int, tuple[np.ndarray, np.ndarray]] = {}
        span_total = 0
        for i in np.flatnonzero(batch.kinds == OpKind.RANGE):
            lo, hi = int(batch.keys[i]), int(batch.range_ends[i])
            ks, vs = self.tree.range_scan(lo, hi)
            raw[int(i)] = (ks, vs)
            span_total += max(1, len(ks) // max(self.imodel.fanout // 2, 1) + 1)
        return raw, span_total

    def _apply_issued_updates(self, plan: CombinePlan, u_runs: np.ndarray) -> np.ndarray:
        """Apply issued update-class requests (unique keys) host-side in
        run order; returns their old values."""
        old = np.full(u_runs.size, NULL_VALUE, dtype=np.int64)
        tree = self.tree
        for j, r in enumerate(u_runs):
            kind = int(plan.issued_kinds[r])
            key = int(plan.issued_keys[r])
            if kind == OpKind.DELETE:
                old[j] = tree.delete(key)
            else:
                old[j] = tree.upsert(key, int(plan.issued_values[r]))
        return old

    # ------------------------------------------------------------------ #
    # vector engine
    # ------------------------------------------------------------------ #
    def _process_vector(self, batch: RequestBatch) -> BatchOutcome:
        im = self.imodel
        cfg = self.config
        n = batch.n
        plan = combine_point_requests(batch)
        q_runs, u_runs = self._partition(plan)
        t_sort, t_combine, t_rescal = self._host_phase_times(plan)

        totals = EventTotals()
        retries = np.zeros(n, dtype=np.float64)
        height = self.tree.height

        # ---- query kernel ------------------------------------------------
        q_keys = plan.issued_keys[q_runs]
        q_steps_avg = float(height)
        if q_keys.size:
            if cfg.enable_locality:
                iplan = build_iteration_plan(
                    int(q_keys.size), self.device.warp_size,
                    cfg.rgs_per_iteration_warp, self.device.num_sms,
                )
                ls = vector_locality_steps(
                    self.tree, iplan, q_keys, enable_rf=cfg.enable_rf_decision
                )
                q_leaves = ls.leaves
                q_step_counts = ls.steps
            else:
                q_leaves, _ = batch_find_leaf(self.tree, q_keys)
                q_step_counts = np.full(q_keys.size, height, dtype=np.int64)
            q_visit = (
                im.node_visit_ntg
                if cfg.enable_narrowed_thread_groups
                else im.node_visit_plain
            )
            totals.add(q_visit, count=float(q_step_counts.sum()), coalesce=COALESCE_SORTED)
            totals.add(im.leaf_lookup_plain, count=int(q_keys.size), coalesce=COALESCE_SORTED)
            q_old, _ = batch_leaf_lookup(self.tree, q_leaves, q_keys)
            q_steps_avg = float(q_step_counts.mean())
        else:
            q_old = np.zeros(0, dtype=np.int64)
            q_step_counts = np.zeros(0, dtype=np.int64)

        # ---- range queries (in the query kernel, unprotected) -----------
        raw, span_total = self._raw_ranges(batch)
        n_ranges = len(raw)
        if n_ranges:
            totals.add(im.node_visit_plain, count=n_ranges * height, coalesce=COALESCE_SORTED)
            totals.add(im.leaf_lookup_plain, count=span_total, coalesce=COALESCE_SORTED)
            # copying each matched pair out costs a load+store per element
            n_elements = sum(len(ks) for ks, _ in raw.values())
            totals.add(InstCost(mem=2, alu=1), count=n_elements, coalesce=COALESCE_SORTED)

        t_query = phase_seconds(totals, self.device)

        # ---- update kernel ------------------------------------------------
        u_totals = EventTotals()
        u_keys = plan.issued_keys[u_runs]
        u_steps_avg = float(height)
        u_step_counts = np.zeros(0, dtype=np.int64)
        if u_keys.size:
            if cfg.enable_locality:
                iplan = build_iteration_plan(
                    int(u_keys.size), self.device.warp_size,
                    cfg.rgs_per_iteration_warp, self.device.num_sms,
                )
                ls = vector_locality_steps(
                    self.tree, iplan, u_keys, enable_rf=cfg.enable_rf_decision
                )
                u_leaves = ls.leaves
                u_step_counts = ls.steps
            else:
                u_leaves, _ = batch_find_leaf(self.tree, u_keys)
                u_step_counts = np.full(u_keys.size, height, dtype=np.int64)
            u_totals.add(
                im.node_visit_plain,
                count=float(u_step_counts.sum()),
                coalesce=COALESCE_SORTED,
            )
            u_totals.add(im.leaf_update_stm, count=int(u_keys.size), coalesce=COALESCE_SORTED)
            # structure conflicts: concurrent writers to the same leaf clash
            # only in the (short) leaf-region transaction
            _, u_rank = writer_collision_groups(u_leaves)
            u_retry = OVERLAP * u_rank
            retry_cost = im.leaf_update_stm + im.abort_rollback
            u_totals.add(retry_cost, count=float(u_retry.sum()), coalesce=COALESCE_SORTED)
            u_totals.conflicts += float(u_retry.sum())
            retries[plan.issued_orig[u_runs]] = u_retry
            u_steps_avg = float(u_step_counts.mean())

        splits_before = len(self.tree.split_events)
        u_old = self._apply_issued_updates(plan, u_runs)
        splits = len(self.tree.split_events) - splits_before
        u_totals.add(im.split_smo, count=splits, coalesce=COALESCE_SORTED)
        t_update = phase_seconds(u_totals, self.device)
        totals.merge(u_totals)

        # ---- RESULT_CAL ----------------------------------------------------
        old_vals = np.full(plan.n_runs, NULL_VALUE, dtype=np.int64)
        if q_runs.size:
            old_vals[q_runs] = q_old
        if u_runs.size:
            old_vals[u_runs] = u_old
        results = BatchResults.empty(n)
        propagate_results(plan, old_vals, results)
        patches = plan_range_patches(batch, plan)
        apply_range_patches(batch, raw, patches, results)

        phase = PhaseTime(
            sort=t_sort,
            combine=t_combine,
            query_kernel=t_query,
            update_kernel=t_update,
            result_cal=t_rescal,
        )
        seconds = phase.total
        # response times: every request's result is ready at the end of the
        # pipeline; conflict retries add per-request jitter on top
        resp = np.full(n, seconds / n)
        if retries.any():
            jitter = retries * (im.leaf_update_stm.mem + im.abort_rollback.mem) \
                * self.device.cycles_per_mem_transaction / self.device.clock_hz / n
            resp = resp + jitter

        issued_steps = np.concatenate([q_step_counts, u_step_counts]) if (
            q_keys.size or u_keys.size
        ) else np.zeros(0)
        steps_avg = float(issued_steps.mean()) if issued_steps.size else float(height)
        return self._outcome_from_totals(
            batch,
            results,
            totals,
            phase,
            resp,
            steps_avg,
            extras={
                "plan": plan,
                "n_combined": plan.n_combined,
                "splits": splits,
                "query_steps": q_steps_avg,
                "update_steps": u_steps_avg,
            },
        )

    # ------------------------------------------------------------------ #
    # SIMT engine
    # ------------------------------------------------------------------ #
    def _process_simt(self, batch: RequestBatch) -> BatchOutcome:
        cfg = self.config
        tree = self.tree
        n = batch.n
        plan = combine_point_requests(batch)
        q_runs, u_runs = self._partition(plan)
        t_sort, t_combine, t_rescal = self._host_phase_times(plan)
        stm_before = self.stm.stats.snapshot()

        old_vals = np.full(plan.n_runs, NULL_VALUE, dtype=np.int64)
        steps_record: list[int] = []
        retries_total = 0

        # ---- query kernel --------------------------------------------------
        raw: dict[int, tuple[np.ndarray, np.ndarray]] = {}
        sched_rng = self._launch_rng(batch)
        q_launch = KernelLaunch(self.device, tree.arena, n, rng=sched_rng)
        q_keys = plan.issued_keys[q_runs]

        def q_on_result(slot: LaneSlot, val: int, steps: int, _horiz: bool) -> None:
            old_vals[slot.tag] = val
            steps_record.append(steps)

        if q_keys.size:
            if cfg.enable_locality:
                self._add_iteration_warps(
                    q_launch, plan, q_runs, q_on_result, update_ctx=None
                )
            else:
                q_launch.add_programs(
                    [
                        self._plain_query_program(plan, int(r), old_vals, steps_record)
                        for r in q_runs
                    ]
                )

        range_idx = np.flatnonzero(batch.kinds == OpKind.RANGE)
        for i in range_idx:
            q_launch.add_programs(
                [self._range_program(int(i), int(batch.keys[i]), int(batch.range_ends[i]), raw)]
            )
        counters_q = q_launch.run() if q_launch.n_warps else None

        # ---- update kernel ---------------------------------------------------
        u_launch = KernelLaunch(self.device, tree.arena, n, rng=sched_rng)
        u_retries = np.zeros(n, dtype=np.int64)

        def u_on_result(slot: LaneSlot, val: int, steps: int, _horiz: bool) -> None:
            old_vals[slot.tag] = val
            steps_record.append(steps)

        if u_runs.size:
            if cfg.enable_locality:
                self._add_iteration_warps(
                    u_launch,
                    plan,
                    u_runs,
                    u_on_result,
                    update_ctx=(self.stm, self.smo_lock_addr, cfg.stm_retry_threshold),
                )
            else:
                u_launch.add_programs(
                    [
                        self._plain_update_program(plan, int(r), old_vals, u_retries, steps_record)
                        for r in u_runs
                    ]
                )
        counters_u = u_launch.run() if u_launch.n_warps else None

        # ---- RESULT_CAL -------------------------------------------------------
        results = BatchResults.empty(n)
        propagate_results(plan, old_vals, results)
        patches = plan_range_patches(batch, plan)
        apply_range_patches(batch, raw, patches, results)

        # ---- assemble metrics -------------------------------------------------
        t_query = self.device.cycles_to_seconds(counters_q.cycles) if counters_q else 0.0
        t_update = self.device.cycles_to_seconds(counters_u.cycles) if counters_u else 0.0
        phase = PhaseTime(
            sort=t_sort,
            combine=t_combine,
            query_kernel=t_query,
            update_kernel=t_update,
            result_cal=t_rescal,
        )
        seconds = phase.total
        stm_delta = self.stm.stats.delta_since(stm_before)
        retries_total = int(u_retries.sum())

        totals = EventTotals(conflicts=float(stm_delta.conflicts))
        for counters in (counters_q, counters_u):
            if counters is None:
                continue
            totals.mem += counters.mem_inst
            totals.ctrl += counters.control_inst
            totals.alu += counters.alu_inst
            totals.atomic += counters.atomic_inst
            totals.transactions += counters.transactions
        merged = counters_q.merge(counters_u) if (counters_q and counters_u) else (
            counters_q or counters_u
        )
        if merged is not None:
            finish = simt_response_times(merged, seconds, n)
        else:
            finish = np.full(n, seconds / max(n, 1))

        steps_arr = np.asarray(steps_record, dtype=np.int64)
        outcome = self._outcome_from_totals(
            batch,
            results,
            totals,
            phase,
            finish,
            float(steps_arr.mean()) if steps_arr.size else float(tree.height),
            extras={
                "plan": plan,
                "n_combined": plan.n_combined,
                "stm": stm_delta,
                "retries": retries_total,
            },
        )
        outcome.counters = merged
        return outcome

    # ------------------------------------------------------------------ #
    # SIMT program builders
    # ------------------------------------------------------------------ #
    def _plain_query_program(self, plan: CombinePlan, run: int, old_vals, steps_record):
        tree = self.tree
        key = int(plan.issued_keys[run])
        req_id = int(plan.issued_orig[run])

        def program():
            val, steps = yield from d_query(tree, key)
            old_vals[run] = val
            steps_record.append(steps)
            yield Mark(req_id)

        return program()

    def _range_program(self, req_id: int, lo: int, hi: int, raw: dict):
        tree = self.tree

        def program():
            ks, vs, _steps = yield from d_range_raw(tree, lo, hi)
            raw[req_id] = (np.array(ks, dtype=np.int64), np.array(vs, dtype=np.int64))
            yield Mark(req_id)

        return program()

    def _plain_update_program(self, plan: CombinePlan, run: int, old_vals, u_retries, steps_record):
        tree = self.tree
        cfg = self.config
        kind = int(plan.issued_kinds[run])
        key = int(plan.issued_keys[run])
        value = int(plan.issued_values[run])
        req_id = int(plan.issued_orig[run])

        def program():
            res = yield from d_update(
                tree, self.stm, self.smo_lock_addr, cfg.stm_retry_threshold,
                req_id, kind, key, value,
            )
            old_vals[run] = res.old
            u_retries[req_id] = res.retries
            steps_record.append(res.steps)
            yield Mark(req_id)

        return program()

    def _add_iteration_warps(self, launch, plan: CombinePlan, runs: np.ndarray,
                             on_result, update_ctx) -> None:
        """Pack the issued requests of ``runs`` (key-sorted) into iteration
        warps of ``rgs_per_iteration_warp`` request groups each."""
        cfg = self.config
        ws = self.device.warp_size
        iplan = build_iteration_plan(
            int(runs.size), ws, cfg.rgs_per_iteration_warp, self.device.num_sms
        )
        for w in range(iplan.n_warps):
            rgs = iplan.rgs_of_warp(w)
            n_iters = len(rgs)
            shared = make_warp_shared(n_iters)
            lane_count = max(int(iplan.rg_end[r] - iplan.rg_start[r]) for r in rgs)
            last_lane = [int(iplan.rg_end[r] - iplan.rg_start[r]) - 1 for r in rgs]
            rg_max_key = [int(plan.issued_keys[runs[int(iplan.rg_end[r]) - 1]]) for r in rgs]
            programs = []
            for lane in range(lane_count):
                slots: list[LaneSlot | None] = []
                for r in rgs:
                    pos = int(iplan.rg_start[r]) + lane
                    if pos < int(iplan.rg_end[r]):
                        run = int(runs[pos])
                        slots.append(
                            LaneSlot(
                                req_id=int(plan.issued_orig[run]),
                                kind=int(plan.issued_kinds[run]),
                                key=int(plan.issued_keys[run]),
                                value=int(plan.issued_values[run]),
                                tag=run,
                            )
                        )
                    else:
                        slots.append(None)
                programs.append(
                    make_iteration_lane_program(
                        self.tree, shared, lane, lane_count, slots, last_lane,
                        rg_max_key, cfg.enable_rf_decision, on_result, update_ctx,
                    )
                )
            launch.add_warp(programs)

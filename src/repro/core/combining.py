"""Combining-based synchronization (§4.1.1).

The batch's point requests are sorted by (key, logical timestamp) — a
stable radix sort by key over the arrival-ordered buffer — and scanned to
form *runs* of equal keys. Per run:

* one request is **issued** to traverse the tree: the update-class request
  with the largest timestamp if the run contains any update/insert/delete,
  otherwise the query with the largest timestamp;
* every request's return value is determined by its *dependence*: the
  nearest update-class request strictly before it (within the run, in
  timestamp order) supplies its value (``NULL`` if that is a delete);
  requests with no in-run predecessor take the key's *old value*, which the
  issued request retrieves from the leaf.

Because exactly one request per key is issued, key conflicts are eliminated,
and because every return value is computed from the timestamp-order
dependence chain, the batch is linearizable (§6).

Everything here is expressed as the GPU primitives the paper names: radix
sort, head-flag run detection, and segmented max-scans (implemented as one
``maximum.accumulate`` over offset-partitioned values).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .._types import NULL_VALUE, OpKind, is_query_kind_array, is_update_kind_array
from ..gpuprims import RadixWork, ScanWork, radix_argsort, run_heads, run_lengths
from ..workloads.requests import BatchResults, RequestBatch


@dataclass
class CombineWork:
    """Primitive work performed by the combining pass (for the cost model)."""

    sort: RadixWork = field(default_factory=RadixWork)
    scan: ScanWork = field(default_factory=ScanWork)
    scan_elements: int = 0


@dataclass
class CombinePlan:
    """Output of the combining pass over a batch's point requests."""

    n_total: int
    #: original indices of point (non-range) requests, and the sort perm
    point_idx: np.ndarray
    perm: np.ndarray
    #: per sorted position: original request index
    sorted_orig: np.ndarray
    #: sorted views of the point requests
    sorted_keys: np.ndarray
    sorted_kinds: np.ndarray
    sorted_values: np.ndarray
    #: run structure over sorted positions
    run_id: np.ndarray
    run_start: np.ndarray
    run_len: np.ndarray
    #: per run: sorted position / original index / fields of the issued request
    issued_pos: np.ndarray
    issued_orig: np.ndarray
    issued_kinds: np.ndarray
    issued_keys: np.ndarray
    issued_values: np.ndarray
    #: per sorted position: dependence (nearest in-run predecessor write)
    prev_valid: np.ndarray
    prev_is_delete: np.ndarray
    prev_value: np.ndarray
    work: CombineWork

    @property
    def n_point(self) -> int:
        return int(self.point_idx.size)

    @property
    def n_runs(self) -> int:
        return int(self.run_start.size)

    @property
    def n_combined(self) -> int:
        """Requests whose tree traversal was eliminated (key conflicts)."""
        return self.n_point - self.n_runs

    @property
    def run_has_update(self) -> np.ndarray:
        """Per run: does it contain any update-class request?"""
        return is_update_kind_array(self.issued_kinds)


def combine_point_requests(batch: RequestBatch) -> CombinePlan:
    """Sort + combine the batch's point requests (§4.1.1, Fig. 3)."""
    work = CombineWork()
    kinds = batch.kinds
    point_mask = kinds != OpKind.RANGE
    point_idx = np.flatnonzero(point_mask)
    keys = batch.keys[point_idx]
    ns = int(point_idx.size)

    # stable sort by key == (key, timestamp) lexicographic order, because
    # the buffer is already in timestamp order
    perm = radix_argsort(keys, work.sort)
    sorted_orig = point_idx[perm]
    sorted_keys = keys[perm]
    sorted_kinds = batch.kinds[sorted_orig]
    sorted_values = batch.values[sorted_orig]

    heads = run_heads(sorted_keys)
    run_start, run_len = run_lengths(heads, work.scan)
    run_id = np.cumsum(heads, dtype=np.int64) - 1
    work.scan_elements += ns

    if ns == 0:
        empty = np.zeros(0, dtype=np.int64)
        return CombinePlan(
            n_total=batch.n,
            point_idx=point_idx,
            perm=perm,
            sorted_orig=sorted_orig,
            sorted_keys=sorted_keys,
            sorted_kinds=sorted_kinds,
            sorted_values=sorted_values,
            run_id=run_id,
            run_start=run_start,
            run_len=run_len,
            issued_pos=empty,
            issued_orig=empty,
            issued_kinds=np.zeros(0, dtype=sorted_kinds.dtype),
            issued_keys=empty,
            issued_values=empty,
            prev_valid=np.zeros(0, dtype=bool),
            prev_is_delete=np.zeros(0, dtype=bool),
            prev_value=empty,
            work=work,
        )

    # -- segmented max-scans over update-class markers -------------------- #
    # offset partitioning: marker + run_id * BIG makes a global cummax act
    # as a per-run cummax (cross-run values decode below any real marker)
    pos = np.arange(ns, dtype=np.int64)
    is_upd = is_update_kind_array(sorted_kinds)
    marker = np.where(is_upd, pos, np.int64(-1))
    big = np.int64(ns + 2)
    seg_off = run_id * big
    work.scan_elements += 2 * ns

    # inclusive scan: last update-class at-or-before each position
    incl = np.maximum.accumulate(marker + seg_off) - seg_off
    # exclusive scan: shift markers one right, reset at run heads
    marker_ex = np.empty_like(marker)
    marker_ex[0] = -1
    marker_ex[1:] = marker[:-1]
    marker_ex[heads] = -1
    excl = np.maximum.accumulate(marker_ex + seg_off) - seg_off

    run_end = run_start + run_len - 1
    # per run: last update-class position, or -1 when the run is all-query
    last_upd = incl[run_end]
    last_upd = np.where(last_upd < 0, np.int64(-1), last_upd)
    issued_pos = np.where(last_upd >= 0, last_upd, run_end)

    prev = np.where(excl < 0, np.int64(-1), excl)
    prev_valid = prev >= 0
    prev_c = np.maximum(prev, 0)
    prev_is_delete = prev_valid & (sorted_kinds[prev_c] == OpKind.DELETE)
    prev_value = np.where(prev_valid, sorted_values[prev_c], NULL_VALUE)

    issued_orig = sorted_orig[issued_pos]
    return CombinePlan(
        n_total=batch.n,
        point_idx=point_idx,
        perm=perm,
        sorted_orig=sorted_orig,
        sorted_keys=sorted_keys,
        sorted_kinds=sorted_kinds,
        sorted_values=sorted_values,
        run_id=run_id,
        run_start=run_start,
        run_len=run_len,
        issued_pos=issued_pos,
        issued_orig=issued_orig,
        issued_kinds=sorted_kinds[issued_pos],
        issued_keys=sorted_keys[issued_pos],
        issued_values=sorted_values[issued_pos],
        prev_valid=prev_valid,
        prev_is_delete=prev_is_delete,
        prev_value=prev_value,
        work=work,
    )


def propagate_results(
    plan: CombinePlan, old_vals_per_run: np.ndarray, results: BatchResults
) -> None:
    """RESULT_CAL (§4.2, Algorithm 1 line 6): fill every point request's
    return value from its dependence and the issued requests' old values.

    ``old_vals_per_run`` holds, per run, the key's value in the tree at the
    start of the batch (``NULL_VALUE`` when absent) as retrieved by the
    issued request.
    """
    if plan.n_point == 0:
        return
    old = old_vals_per_run[plan.run_id]
    res_sorted = np.where(
        plan.prev_valid,
        np.where(plan.prev_is_delete, np.int64(NULL_VALUE), plan.prev_value),
        old,
    )
    results.values[plan.sorted_orig] = res_sorted

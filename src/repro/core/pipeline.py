"""Composable pass pipeline: every system's batch processing is a pass list.

Algorithm 1's phases (COMBINING → PARTITION → QUERY_KERNEL → UPDATE_KERNEL
→ RESULT_CAL) and the baselines' batch loops are expressed as concrete
:class:`Pass` objects threaded over one :class:`PipelineContext`. A system
is just a different pass list, and every ablation of
:class:`~repro.config.EireneConfig` is a different *pass selection*
(:func:`eirene_pass_plan`) — never a boolean branch inside system code.

Contract:

* a :class:`Pass` reads and writes the shared :class:`PipelineContext`:
  instruction totals (``ctx.totals``), the modeled per-phase device time
  (``ctx.phase``), results, response times, and free-form artifacts
  (``ctx.art``) that downstream passes consume;
* a pass that models device time must account it into ``ctx.phase`` —
  the pipeline attributes the ``ctx.phase.total`` *delta* of each pass to
  that pass's trace record, so per-pass modeled seconds always sum to the
  batch's reported ``seconds``;
* the final pass (:class:`FinalizePass`) assembles the
  :class:`~repro.baselines.base.BatchOutcome`; the pipeline then attaches
  the :class:`~repro.metrics.trace.PipelineTrace` to it.

This is the module DESIGN.md's experiment index refers to as
"``core.pipeline`` feature flags": Fig. 11/12 ablation variants are built
by selecting passes from an :class:`~repro.config.EireneConfig`.
"""

from __future__ import annotations

import abc
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

import numpy as np

from ..errors import ConfigError, SimulationError
from ..metrics.trace import PassRecord, PipelineTrace
from ..simt import PhaseTime
from ..workloads.requests import BatchResults, RequestBatch

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (base imports us lazily)
    from ..baselines.base import BatchOutcome, System
    from ..baselines.model import EventTotals
    from ..simt import KernelCounters


def _new_totals():
    from ..baselines.model import EventTotals

    return EventTotals()


@dataclass
class PipelineContext:
    """Everything a batch accumulates while flowing through the passes."""

    system: "System"
    batch: RequestBatch
    engine: str
    #: accumulated instruction/transaction/conflict totals (vector charges
    #: or SIMT counter sums) — becomes the outcome's instruction fields
    totals: "EventTotals" = field(default_factory=_new_totals)
    #: modeled device seconds per pipeline phase
    phase: PhaseTime = field(default_factory=PhaseTime)
    results: BatchResults | None = None
    response_time_s: np.ndarray | None = None
    traversal_steps: float | None = None
    counters: "KernelCounters | None" = None
    extras: dict = field(default_factory=dict)
    #: free-form artifacts handed between passes (plan, runs, leaves, ...)
    art: dict[str, Any] = field(default_factory=dict)
    trace: PipelineTrace | None = None
    outcome: "BatchOutcome | None" = None

    def __post_init__(self) -> None:
        if self.results is None:
            self.results = BatchResults.empty(self.batch.n)

    # -- conveniences ------------------------------------------------------ #
    @property
    def n(self) -> int:
        return self.batch.n

    @property
    def tree(self):
        return self.system.tree

    @property
    def device(self):
        return self.system.device

    @property
    def devctx(self):
        return self.system.devctx

    @property
    def imodel(self):
        return self.system.imodel

    def roofline_phase(self, bucket: str = "query_kernel") -> None:
        """Set ``phase.<bucket>`` to the roofline seconds of ``ctx.totals``.

        Single-kernel vector systems call this after each charging pass:
        the bucket tracks the *cumulative* roofline, so each pass's trace
        delta is its marginal device time and the deltas sum exactly to the
        final batch seconds.
        """
        from ..baselines.model import phase_seconds

        setattr(self.phase, bucket, 0.0)
        rest = self.phase.total
        setattr(self.phase, bucket, max(phase_seconds(self.totals, self.device) - rest, 0.0))

    def launch_rng(self) -> np.random.Generator:
        """One warp-scheduling rng per batch, shared by every kernel pass
        (consumed in pass order, like consecutive launches of one stream)."""
        if "sched_rng" not in self.art:
            self.art["sched_rng"] = self.system._launch_rng(self.batch)
        return self.art["sched_rng"]


class Pass(abc.ABC):
    """One stage of a system's batch-processing pipeline.

    Subclasses set ``name`` (the trace/plan identity — stable across
    engines) and implement :meth:`run`. Per-pass timing and counter deltas
    are recorded by the pipeline, not the pass.
    """

    name: str = "pass"

    @abc.abstractmethod
    def run(self, ctx: PipelineContext) -> None:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} name={self.name!r}>"


class PassPipeline:
    """An ordered pass list executed over one PipelineContext with tracing."""

    def __init__(self, passes: list[Pass], name: str = "") -> None:
        if not passes:
            raise ConfigError("a pipeline needs at least one pass")
        self.passes = list(passes)
        self.name = name

    @property
    def pass_names(self) -> tuple[str, ...]:
        return tuple(p.name for p in self.passes)

    def run(self, ctx: PipelineContext) -> PipelineContext:
        trace = PipelineTrace(system=ctx.system.name, engine=ctx.engine)
        for p in self.passes:
            before_phase = ctx.phase.total
            t = ctx.totals
            before = (t.mem, t.ctrl, t.alu, t.atomic, t.transactions, t.conflicts)
            wall0 = time.perf_counter()
            p.run(ctx)
            wall = time.perf_counter() - wall0
            t = ctx.totals
            trace.records.append(
                PassRecord(
                    name=p.name,
                    wall_s=wall,
                    modeled_s=ctx.phase.total - before_phase,
                    mem_inst=t.mem - before[0],
                    control_inst=t.ctrl - before[1],
                    alu_inst=t.alu - before[2],
                    atomic_inst=t.atomic - before[3],
                    transactions=t.transactions - before[4],
                    conflicts=t.conflicts - before[5],
                )
            )
        ctx.trace = trace
        if ctx.outcome is not None:
            ctx.outcome.trace = trace
        return ctx


# --------------------------------------------------------------------- #
# pass plans: EireneConfig feature flags -> pass selection
# --------------------------------------------------------------------- #
def eirene_pass_plan(config, engine: str) -> tuple[str, ...]:
    """Pass names Eirene's pipeline assembles for ``config`` on ``engine``.

    This is the single source of truth for the Fig. 11/12 ablation
    variants: ``enable_locality`` swaps the traversal pass,
    ``enable_kernel_partition`` swaps the split query/update kernels for
    one unified (fully protected) kernel. ``enable_combining`` is
    structural for Eirene (the no-combining bar is the STM baseline, as in
    the paper), so ``combine`` is always present.
    """
    names = ["combine", "partition"]
    if engine == "vector":
        names.append("locality" if config.enable_locality else "traversal")
        if config.enable_kernel_partition:
            names += ["query_kernel", "range_scan", "update_kernel"]
        else:
            names += ["range_scan", "unified_kernel"]
    elif engine == "simt":
        # the SIMT query kernel carries the range programs in its own
        # launch (same warp packing as Algorithm 1), so there is no
        # separate range pass unless the kernels are unified
        if config.enable_kernel_partition:
            names += ["query_kernel", "update_kernel"]
        else:
            names += ["range_scan", "unified_kernel"]
    else:
        raise ConfigError(f"unknown engine {engine!r}; use 'vector' or 'simt'")
    names += ["result_cal", "finalize"]
    return tuple(names)


# --------------------------------------------------------------------- #
# shared passes (used by every system's pipeline)
# --------------------------------------------------------------------- #
class HostApplyPass(Pass):
    """Vector-engine state evolution: execute the batch against the tree in
    timestamp order and charge the split SMOs it performed.

    ``split_cost_factor`` scales the SMO instruction bundle to the
    system's split mechanism (plain rewrite, latched, ownership storm).
    """

    name = "apply"

    def __init__(self, split_cost_factor: float = 1.0, bucket: str = "query_kernel") -> None:
        self.split_cost_factor = split_cost_factor
        self.bucket = bucket

    def run(self, ctx: PipelineContext) -> None:
        tree = ctx.tree
        before = len(tree.split_events)
        ctx.results = ctx.system._apply_in_timestamp_order(ctx.batch)
        splits = len(tree.split_events) - before
        ctx.totals.add(ctx.imodel.split_smo * self.split_cost_factor, count=splits)
        ctx.roofline_phase(self.bucket)


class WeightedResponsePass(Pass):
    """Vector-engine response times: uniform ``seconds / n`` baseline,
    skewed by the per-request ``work`` artifact when a model pass left one
    (retry-heavy requests respond late)."""

    name = "response_model"

    def run(self, ctx: PipelineContext) -> None:
        n = max(ctx.n, 1)
        seconds = ctx.phase.total
        work = ctx.art.get("work")
        if work is None or ctx.n == 0:
            ctx.response_time_s = np.full(ctx.n, seconds / n)
        else:
            ctx.response_time_s = (seconds / n) * (work / max(work.mean(), 1e-12))


class SimtResponsePass(Pass):
    """SIMT-engine response times from measured per-lane service steps."""

    name = "response_model"

    def run(self, ctx: PipelineContext) -> None:
        from ..baselines.base import simt_response_times

        seconds = ctx.phase.total
        if ctx.counters is not None:
            ctx.response_time_s = simt_response_times(ctx.counters, seconds, ctx.n)
        else:
            ctx.response_time_s = np.full(ctx.n, seconds / max(ctx.n, 1))


class FinalizePass(Pass):
    """Assemble the BatchOutcome from the accumulated context."""

    name = "finalize"

    def run(self, ctx: PipelineContext) -> None:
        if ctx.response_time_s is None:
            ctx.response_time_s = np.full(ctx.n, ctx.phase.total / max(ctx.n, 1))
        steps = ctx.traversal_steps
        if steps is None:
            steps = float(ctx.tree.height)
        outcome = ctx.system._outcome_from_totals(
            ctx.batch,
            ctx.results,
            ctx.totals,
            ctx.phase,
            ctx.response_time_s,
            steps,
            extras=ctx.extras,
        )
        outcome.counters = ctx.counters
        ctx.outcome = outcome


def run_pipeline(system: "System", batch: RequestBatch, engine: str) -> "BatchOutcome":
    """Build the system's pipeline for ``engine`` and push one batch through."""
    pipeline = system.build_pipeline(engine)
    ctx = PipelineContext(system=system, batch=batch, engine=engine)
    pipeline.run(ctx)
    if ctx.outcome is None:
        raise SimulationError(
            f"pipeline {pipeline.pass_names} for {system.name!r} produced no outcome "
            "(is a FinalizePass missing?)"
        )
    return ctx.outcome

"""Locality-aware warp reorganization (§5).

After sorting/combining, adjacent issued requests target the same or
adjacent leaves. Requests are chunked into request groups (RGs) of one warp
width; ``rgs_per_iteration_warp`` *consecutive* RGs form one iteration
warp, executed by a single warp one RG at a time. A warp-shared buffer
carries the previous RG's last leaf (and its RF value); the next RG walks
the leaf chain from there (*horizontal traversal*) instead of descending
from the root, unless its maximal key exceeds the buffered RF value — the
range field that marks where horizontal traversal stops being profitable.

This module holds the grouping structure (shared by both engines) and the
vector engine's exact step computation; the SIMT iteration-warp programs
live in :mod:`repro.core.kernels`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._types import EMPTY_KEY
from ..btree import batch_find_leaf, leaf_rf_values
from ..btree.tree import BPlusTree


@dataclass
class IterationPlan:
    """Grouping of ``n`` key-sorted issued requests into RGs and warps."""

    n: int
    warp_size: int
    rgs_per_warp: int
    rg_start: np.ndarray  # per RG: first request index
    rg_end: np.ndarray  # per RG: one past last
    warp_of_rg: np.ndarray

    @property
    def n_rgs(self) -> int:
        return int(self.rg_start.size)

    @property
    def n_warps(self) -> int:
        return int(self.warp_of_rg.max()) + 1 if self.n_rgs else 0

    def rgs_of_warp(self, w: int) -> np.ndarray:
        return np.flatnonzero(self.warp_of_rg == w)


def build_iteration_plan(
    n: int, warp_size: int, rgs_per_warp: int, num_sms: int | None = None
) -> IterationPlan:
    """Chunk ``n`` issued requests into RGs and group consecutive RGs.

    §5: "to fully use the computing resources, the RGs are evenly
    distributed to different SMs; then they are organized into iteration
    warps executed on each SM" — grouping must never drop the warp count
    below one per SM, so when ``num_sms`` is given the effective iteration
    depth shrinks for small kernels instead of starving SMs.
    """
    n_rgs = (n + warp_size - 1) // warp_size
    rg_start = np.arange(n_rgs, dtype=np.int64) * warp_size
    rg_end = np.minimum(rg_start + warp_size, n)
    n_warps = (n_rgs + max(rgs_per_warp, 1) - 1) // max(rgs_per_warp, 1)
    if num_sms is not None and n_rgs:
        n_warps = max(n_warps, min(n_rgs, num_sms))
    if n_rgs:
        # contiguous, even partition: consecutive RGs share a warp
        warp_of_rg = (np.arange(n_rgs, dtype=np.int64) * n_warps) // n_rgs
    else:
        warp_of_rg = np.zeros(0, dtype=np.int64)
    return IterationPlan(
        n=n,
        warp_size=warp_size,
        rgs_per_warp=rgs_per_warp,
        rg_start=rg_start,
        rg_end=rg_end,
        warp_of_rg=warp_of_rg,
    )


@dataclass
class LocalitySteps:
    """Per-request traversal steps under the locality optimization."""

    steps: np.ndarray  # per request: nodes traversed (own lane)
    horizontal: np.ndarray  # per request: took the leaf-chain path
    leaves: np.ndarray  # per request: final leaf
    #: per RG: lockstep cost (max steps over its lanes — SIMT executes the
    #: longest lane's walk)
    rg_lockstep_steps: np.ndarray
    rf_updates: int = 0

    @property
    def vertical_fraction(self) -> float:
        return 1.0 - float(self.horizontal.mean()) if self.steps.size else 0.0


def vector_locality_steps(
    tree: BPlusTree,
    plan: IterationPlan,
    keys: np.ndarray,
    enable_rf: bool = True,
    update_rf: bool = True,
) -> LocalitySteps:
    """Exact traversal-step computation for the vector engine.

    Uses the leaf-chain index: a horizontal walk from leaf at chain
    position ``a`` to position ``b`` takes ``b - a + 1`` node visits
    (reading the buffered leaf included), versus ``height`` for a vertical
    descent.
    """
    n = int(keys.size)
    leaves, _ = batch_find_leaf(tree, keys)
    chain = tree.leaf_ids()
    index_of = np.full(tree.max_nodes, -1, dtype=np.int64)
    index_of[np.asarray(chain, dtype=np.int64)] = np.arange(len(chain))
    leaf_idx = index_of[leaves]
    height = tree.height

    steps = np.full(n, height, dtype=np.int64)
    horizontal = np.zeros(n, dtype=bool)
    rg_lockstep = np.zeros(plan.n_rgs, dtype=np.int64)
    rf_updates = 0

    rf_of_leaf = leaf_rf_values(tree, np.asarray(chain, dtype=np.int64))
    for w in range(plan.n_warps):
        buffered_idx = -1
        buffered_rf = -1
        for r in plan.rgs_of_warp(w):
            lo, hi = int(plan.rg_start[r]), int(plan.rg_end[r])
            rg_max_key = int(keys[hi - 1])  # key-sorted: last lane holds max
            go_horizontal = buffered_idx >= 0 and (
                not enable_rf or rg_max_key <= buffered_rf
            )
            if go_horizontal:
                s = leaf_idx[lo:hi] - buffered_idx + 1
                steps[lo:hi] = s
                horizontal[lo:hi] = True
                rg_lockstep[r] = int(s.max())
                if update_rf and int(s.max()) > height:
                    # §5: record the RF so later iterations go vertical
                    tree.update_rf(int(chain[buffered_idx]), int(s.max()))
                    rf_of_leaf = leaf_rf_values(tree, np.asarray(chain, dtype=np.int64))
                    rf_updates += 1
            else:
                rg_lockstep[r] = height
            buffered_idx = int(leaf_idx[hi - 1])
            buffered_rf = int(rf_of_leaf[buffered_idx])
            if buffered_rf == EMPTY_KEY:
                buffered_rf = np.iinfo(np.int64).max
    return LocalitySteps(
        steps=steps,
        horizontal=horizontal,
        leaves=leaves,
        rg_lockstep_steps=rg_lockstep,
        rf_updates=rf_updates,
    )

"""Eirene's SIMT kernels (§4.2 Algorithm 1 + §5 iteration warps).

Query kernel: issued queries and range queries run **without any
synchronization** — combining removed key conflicts, queries cannot be hurt
by each other, and the query kernel launches before the update kernel so
they cannot race with writers either.

Update kernel: optimistic concurrency per Algorithm 1 — unprotected inner
traversal until ``stm_retry_threshold`` failures (then STM-protected
traversal), leaf operations always inside a leaf-region transaction with
leaf-version validation; splits take the SMO path.

Iteration warps: ``rgs_per_iteration_warp`` request groups share one warp;
each lane processes one request per iteration, a warp-shared buffer carries
the previous RG's last leaf + RF, and each iteration picks horizontal or
vertical traversal by comparing the RG's maximal key with the buffered RF
value. Lanes synchronize between iterations with a zero-cost barrier
(parked lanes retire no instructions, like predication).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._types import OpKind
from ..btree.device_ops import (
    d_find_leaf,
    d_find_leaf_stm,
    d_leaf_covers,
    d_leaf_delete_stm,
    d_leaf_upsert_stm,
    d_search_leaf,
    d_search_leaf_stm,
    d_smo_upsert,
    d_walk_leaves,
)
from ..btree.tree import BPlusTree
from ..errors import SimulationError, TransactionAborted
from ..simt import BRANCH, Load, Mark, WaitGE
from ..stm import DeviceStm

MAX_RETRIES = 10_000


# --------------------------------------------------------------------- #
# plain (non-iteration-warp) programs
# --------------------------------------------------------------------- #
def d_query(tree: BPlusTree, key: int):
    """Unprotected point query; returns (value, steps)."""
    leaf, steps = yield from d_find_leaf(tree, key)
    val = yield from d_search_leaf(tree, leaf, key)
    return val, steps


def d_range_raw(tree: BPlusTree, lo: int, hi: int):
    """Unprotected range scan (pre-batch state; patched by RESULT_CAL).

    Returns (keys, values, steps)."""
    leaf, steps = yield from d_find_leaf(tree, lo)
    ks: list[int] = []
    vs: list[int] = []
    node = leaf
    while True:
        a = tree.views.addrs(node)
        cnt = yield Load(a.count)
        yield BRANCH
        done = False
        for slot in range(cnt):
            k = yield Load(a.keys[slot])
            yield BRANCH
            if k > hi:
                done = True
                break
            if k >= lo:
                v = yield Load(a.values[slot])
                ks.append(int(k))
                vs.append(int(v))
        nxt = yield Load(a.next_leaf)
        yield BRANCH
        if done or nxt == -1:
            return ks, vs, steps
        node = nxt
        steps += 1


def d_protected_query(tree: BPlusTree, stm: DeviceStm, key: int, leaf_hint: int | None = None):
    """Point query inside a *unified* (non-partitioned) kernel.

    Without kernel partition, a query can race a concurrent writer splitting
    its leaf, so the leaf read runs inside a short STM leaf-region
    transaction (the reader analogue of Algorithm 1's leaf-region tx): the
    inner traversal stays unprotected, the leaf scan is transactional, and a
    validation failure re-finds the leaf vertically and retries.

    Returns ``(value, steps, retries, horizontal, leaf)``.
    """
    retries = 0
    horizontal = False
    if leaf_hint is not None:
        leaf, steps_total = yield from d_walk_leaves(tree, leaf_hint, key)
        horizontal = True
    else:
        leaf, steps_total = yield from d_find_leaf(tree, key)
    while True:
        if retries > MAX_RETRIES:
            raise SimulationError(f"protected query for key {key} livelocked")
        tx = stm.begin()
        try:
            covers = yield from d_leaf_covers(tree, leaf, key)
            yield BRANCH
            if not covers:
                # a completed split moved the key range: not a data conflict
                yield from stm.d_abort(tx, counted=False)
                leaf, steps = yield from d_find_leaf(tree, key)
                steps_total += steps
                continue
            val = yield from d_search_leaf_stm(tree, stm, tx, leaf, key)
            yield from stm.d_commit(tx)
            return val, steps_total, retries, horizontal, leaf
        except TransactionAborted:
            retries += 1
            leaf, steps = yield from d_find_leaf(tree, key)
            steps_total += steps


@dataclass
class UpdateResult:
    old: int
    steps: int
    retries: int
    horizontal: bool
    leaf: int


def _d_attempt_leaf_op(
    tree: BPlusTree,
    stm: DeviceStm,
    smo_lock_addr: int,
    req_id: int,
    kind: int,
    key: int,
    value: int,
    leaf: int,
    leafvers: int,
):
    """One leaf-region transaction attempt (Algorithm 1 lines 37–45).

    Returns the old value; raises TransactionAborted to request a retry.
    """
    tx = stm.begin()
    cur_vers = yield from stm.d_read(tx, tree.views.addrs(leaf).version)
    covers = yield from d_leaf_covers(tree, leaf, key)
    yield BRANCH
    if cur_vers != leafvers or not covers:
        yield from stm.d_abort(tx)  # counted: a structure conflict
        raise TransactionAborted("leaf validation failed")
    if kind == OpKind.DELETE:
        old = yield from d_leaf_delete_stm(tree, stm, tx, leaf, key)
        yield from stm.d_commit(tx)
        return old
    old, needs_split = yield from d_leaf_upsert_stm(tree, stm, tx, leaf, key, value)
    yield BRANCH
    if needs_split:
        yield from stm.d_abort(tx, counted=False)
        old = yield from d_smo_upsert(tree, stm, smo_lock_addr, req_id, key, value)
        return old
    yield from stm.d_commit(tx)
    return old


def d_update(
    tree: BPlusTree,
    stm: DeviceStm,
    smo_lock_addr: int,
    threshold: int,
    req_id: int,
    kind: int,
    key: int,
    value: int,
    leaf_hint: int | None = None,
):
    """Optimistic update (Algorithm 1), optionally starting from a buffered
    leaf hint (horizontal traversal, §5). Returns :class:`UpdateResult`."""
    retries = 0
    steps_total = 0
    horizontal = False
    if leaf_hint is not None:
        leaf, steps = yield from d_walk_leaves(tree, leaf_hint, key)
        steps_total += steps
        leafvers = yield Load(tree.views.addrs(leaf).version)
        try:
            old = yield from _d_attempt_leaf_op(
                tree, stm, smo_lock_addr, req_id, kind, key, value, leaf, leafvers
            )
            return UpdateResult(old, steps_total, retries, True, leaf)
        except TransactionAborted:
            # §5: conflicts on the horizontal path retry vertically
            retries += 1
            horizontal = True
    while True:
        if retries > MAX_RETRIES:
            raise SimulationError(f"update request {req_id} livelocked")
        if retries < threshold:
            leaf, steps = yield from d_find_leaf(tree, key)
        else:
            tx0 = stm.begin()
            try:
                leaf, steps = yield from d_find_leaf_stm(tree, stm, tx0, key)
                yield from stm.d_commit(tx0)
            except TransactionAborted:
                retries += 1
                continue
        steps_total += steps
        leafvers = yield Load(tree.views.addrs(leaf).version)
        try:
            old = yield from _d_attempt_leaf_op(
                tree, stm, smo_lock_addr, req_id, kind, key, value, leaf, leafvers
            )
            return UpdateResult(old, steps_total, retries, horizontal, leaf)
        except TransactionAborted:
            retries += 1


# --------------------------------------------------------------------- #
# iteration-warp programs (§5)
# --------------------------------------------------------------------- #
@dataclass
class LaneSlot:
    """One lane's request in one iteration of an iteration warp."""

    req_id: int  # original batch index (used for Mark / response time)
    kind: int
    key: int
    value: int  # write payload for update-class requests
    tag: int = 0  # caller-defined id (Eirene passes the combine-run id)


def make_iteration_lane_program(
    tree: BPlusTree,
    shared: dict,
    lane: int,
    n_lanes: int,
    slots: list[LaneSlot | None],
    last_lane_of_iter: list[int],
    rg_max_key: list[int],
    enable_rf: bool,
    on_result,
    update_ctx: tuple[DeviceStm, int, int] | None = None,
):
    """Build one lane of an iteration warp.

    ``slots[it]`` is the lane's request in iteration ``it`` (None when the
    final RG is ragged). ``on_result(slot, value, steps, horizontal)`` is
    called with each finished request. For update kernels pass
    ``update_ctx=(stm, smo_lock_addr, retry_threshold)``; queries run
    unprotected.
    """
    height = tree.height

    def program():
        n_iters = len(slots)
        for it in range(n_iters):
            slot = slots[it]
            if slot is not None:
                buffered = shared["leaf"][it - 1] if it > 0 else None
                use_horizontal = buffered is not None and (
                    not enable_rf or rg_max_key[it] <= shared["rf"][it - 1]
                )
                if update_ctx is not None and slot.kind != OpKind.QUERY:
                    stm, smo_addr, threshold = update_ctx
                    hint = buffered if use_horizontal else None
                    res = yield from d_update(
                        tree, stm, smo_addr, threshold,
                        slot.req_id, slot.kind, slot.key, slot.value, hint,
                    )
                    val, steps, horiz, my_leaf = (
                        res.old, res.steps, res.horizontal, res.leaf,
                    )
                elif update_ctx is not None:
                    # unified kernel: query slots ride in update-class warps
                    # and read their leaf under STM protection
                    stm, _smo_addr, _threshold = update_ctx
                    hint = buffered if use_horizontal else None
                    val, steps, _retries, horiz, my_leaf = yield from d_protected_query(
                        tree, stm, slot.key, hint
                    )
                else:
                    if use_horizontal:
                        my_leaf, steps = yield from d_walk_leaves(tree, buffered, slot.key)
                        horiz = True
                    else:
                        my_leaf, steps = yield from d_find_leaf(tree, slot.key)
                        horiz = False
                    val = yield from d_search_leaf(tree, my_leaf, slot.key)
                on_result(slot, val, steps, horiz)
                # the RG's last lane publishes its leaf + RF to the buffer,
                # and §5's dynamic RF maintenance fires on long walks
                if lane == last_lane_of_iter[it] and my_leaf is not None:
                    if horiz and steps > height:
                        tree.update_rf(buffered, steps)
                    rf = yield Load(tree.views.addrs(my_leaf).rf)
                    shared["leaf"][it] = my_leaf
                    shared["rf"][it] = rf
                yield Mark(slot.req_id)
            # barrier: wait for every lane to finish this iteration
            arrived = shared["arrived"]
            arrived[it] += 1
            while arrived[it] < n_lanes:
                yield WaitGE(arrived, it, n_lanes)
        return None

    return program()


def make_warp_shared(n_iters: int) -> dict:
    """Fresh shared buffer for one iteration warp."""
    return {
        "leaf": [None] * n_iters,
        "rf": [np.iinfo(np.int64).max] * n_iters,
        "arrived": [0] * n_iters,
    }

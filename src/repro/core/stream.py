"""Host-side request buffering (§7): the service front-end.

The real system accepts individual key-value requests, buffers them in host
memory, and ships a batch to the GPU once a configurable threshold (1M in
the paper) is reached. :class:`EireneService` reproduces that interface:
``submit_*`` calls enqueue a request and return a :class:`Ticket`; a batch
is processed automatically when the buffer reaches
``EireneConfig.batch_threshold`` (or explicitly via :meth:`flush`), after
which every ticket of that batch is resolved.

Tickets expose the request's linearization-consistent result — queries get
the value at their logical timestamp, update-class requests get the value
they replaced, range queries get their (keys, values) snapshot.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .._types import KIND_DTYPE, NULL_VALUE, OpKind
from ..baselines.base import BatchOutcome, System
from ..errors import WorkloadError
from ..workloads.requests import RequestBatch


@dataclass
class Ticket:
    """Handle for one submitted request; resolved when its batch completes."""

    kind: OpKind
    key: int
    _resolved: bool = False
    _value: int = NULL_VALUE
    _range: tuple[np.ndarray, np.ndarray] | None = None

    @property
    def done(self) -> bool:
        return self._resolved

    def value(self) -> int:
        """Point-request result; raises until the batch was processed."""
        if not self._resolved:
            raise WorkloadError("request not processed yet; call flush()")
        if self.kind == OpKind.RANGE:
            raise WorkloadError("range tickets resolve via .range_items()")
        return self._value

    def range_items(self) -> tuple[np.ndarray, np.ndarray]:
        if not self._resolved:
            raise WorkloadError("request not processed yet; call flush()")
        if self.kind != OpKind.RANGE:
            raise WorkloadError("not a range request")
        assert self._range is not None
        return self._range


@dataclass
class _Pending:
    kinds: list[int] = field(default_factory=list)
    keys: list[int] = field(default_factory=list)
    values: list[int] = field(default_factory=list)
    ends: list[int] = field(default_factory=list)
    tickets: list[Ticket] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.kinds)


class EireneService:
    """Buffered request front-end over any :class:`~repro.baselines.base.System`.

    Works with Eirene (linearizable results) or a baseline (for
    comparisons); the batch threshold comes from Eirene's config when
    available, else the constructor argument.
    """

    def __init__(self, system: System, batch_threshold: int | None = None,
                 engine: str = "vector") -> None:
        self.system = system
        cfg = getattr(system, "config", None)
        self.batch_threshold = batch_threshold or getattr(cfg, "batch_threshold", 8192)
        if self.batch_threshold < 1:
            raise WorkloadError("batch_threshold must be >= 1")
        self.engine = engine
        self._pending = _Pending()
        self.batches_processed = 0
        self.requests_processed = 0
        self.outcomes: list[BatchOutcome] = []

    # ------------------------------------------------------------------ #
    def submit_query(self, key: int) -> Ticket:
        return self._enqueue(OpKind.QUERY, key, 0, 0)

    def submit_update(self, key: int, value: int) -> Ticket:
        return self._enqueue(OpKind.UPDATE, key, value, 0)

    def submit_insert(self, key: int, value: int) -> Ticket:
        return self._enqueue(OpKind.INSERT, key, value, 0)

    def submit_delete(self, key: int) -> Ticket:
        return self._enqueue(OpKind.DELETE, key, 0, 0)

    def submit_range(self, lo: int, hi: int) -> Ticket:
        if hi < lo:
            raise WorkloadError(f"empty range [{lo}, {hi}]")
        return self._enqueue(OpKind.RANGE, lo, 0, hi)

    @property
    def pending(self) -> int:
        return len(self._pending)

    # ------------------------------------------------------------------ #
    def _enqueue(self, kind: OpKind, key: int, value: int, end: int) -> Ticket:
        ticket = Ticket(kind=kind, key=key)
        p = self._pending
        p.kinds.append(int(kind))
        p.keys.append(key)
        p.values.append(value)
        p.ends.append(end)
        p.tickets.append(ticket)
        if len(p) >= self.batch_threshold:
            self.flush()
        return ticket

    def flush(self) -> BatchOutcome | None:
        """Process the buffered batch now; resolves its tickets."""
        p = self._pending
        if not len(p):
            return None
        batch = RequestBatch(
            kinds=np.array(p.kinds, dtype=KIND_DTYPE),
            keys=np.array(p.keys, dtype=np.int64),
            values=np.array(p.values, dtype=np.int64),
            range_ends=np.array(p.ends, dtype=np.int64),
        )
        self._pending = _Pending()
        outcome = self.system.process_batch(batch, engine=self.engine)
        for i, ticket in enumerate(p.tickets):
            ticket._resolved = True
            if ticket.kind == OpKind.RANGE:
                ks, vs = outcome.results.range_result(i)
                ticket._range = (ks.copy(), vs.copy())
            else:
                ticket._value = int(outcome.results.values[i])
        self.batches_processed += 1
        self.requests_processed += batch.n
        self.outcomes.append(outcome)
        return outcome

"""Device cost model: counted events → cycles → seconds.

Two consumers:

* the SIMT engine already produces cycles directly (its per-step charges use
  :class:`~repro.config.DeviceConfig` weights); this module only converts to
  seconds and adds host-pipeline phases (sort, combine scans) that run as
  separate device launches in the real system;
* the vector engine produces *event counts* (node visits, retries, lock
  spins, scan/sort passes); :class:`CostModel` converts them with per-event
  weights that are **shared across all systems** and can be recalibrated
  from SIMT measurements (:mod:`repro.simt.calibration`), so no system gets
  a private fudge factor.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..config import DeviceConfig


@dataclass
class PhaseTime:
    """Seconds spent per pipeline phase of one batch."""

    sort: float = 0.0
    combine: float = 0.0
    query_kernel: float = 0.0
    update_kernel: float = 0.0
    result_cal: float = 0.0
    other: float = 0.0

    @property
    def total(self) -> float:
        return (
            self.sort
            + self.combine
            + self.query_kernel
            + self.update_kernel
            + self.result_cal
            + self.other
        )


@dataclass
class CostModel:
    """Event → cycle weights for the vector engine.

    The defaults were calibrated once against the SIMT engine on the default
    workload (see ``repro/simt/calibration.py``; EXPERIMENTS.md records the
    run): a node visit in a fanout-16 tree costs roughly a header load plus
    half a key row of loads plus the comparison/branch chain.
    """

    device: DeviceConfig = field(default_factory=DeviceConfig)
    #: per node visited during traversal (loads + compares + branches)
    cycles_per_node_visit: float = 40.0
    #: per leaf lookup / leaf mutation slot operation
    cycles_per_leaf_op: float = 30.0
    #: per STM-protected word access (ownership check + version read)
    cycles_per_stm_access: float = 20.0
    #: per lock acquire/release pair including expected spinning
    cycles_per_lock_pair: float = 24.0
    #: per retry/abort: wasted work is re-charged by the caller; this is the
    #: fixed rollback/bookkeeping surcharge
    cycles_per_abort: float = 60.0
    #: per element per radix pass (CUB onesweep-class sort)
    cycles_per_sort_element_pass: float = 0.55
    #: per element for one scan/compact pass over the batch
    cycles_per_scan_element: float = 0.30
    #: per combined (unissued) request during RESULT_CAL
    cycles_per_result_cal: float = 4.0

    def seconds(self, cycles: float) -> float:
        """Device-wide seconds for ``cycles`` of *aggregate* work.

        Aggregate cycles are divided across SMs: the vector engine counts
        total work, the device executes it ``num_sms``-wide.
        """
        return cycles / (self.device.num_sms * self.device.clock_hz)

    def sm_seconds(self, cycles: float) -> float:
        """Seconds for cycles already expressed per-SM (SIMT engine)."""
        return self.device.cycles_to_seconds(cycles)

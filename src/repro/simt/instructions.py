"""Instruction protocol between thread programs and the warp executor.

A *thread program* is a Python generator: it ``yield``s one :class:`Op` per
simulated instruction and receives the result (for loads/atomics) from the
executor via ``send``. Sub-routines compose with ``yield from`` and return
values through ``StopIteration``, so device code reads like straight-line
CUDA with explicit memory operations:

.. code-block:: python

    def d_search_leaf(tree, leaf, key):
        cnt = yield Load(tree.layout.addr(leaf, OFF_COUNT))
        for slot in range(cnt):
            k = yield Load(tree.layout.key_addr(leaf, slot))
            yield Branch()
            if k == key:
                return (yield Load(tree.layout.payload_addr(leaf, slot)))
        return NULL_VALUE

Ops are plain ``__slots__`` classes (they are instantiated millions of times
per kernel).
"""

from __future__ import annotations


class Op:
    """Base class for all simulated instructions."""

    __slots__ = ()


class Load(Op):
    """Global-memory load of one word; executor sends back the value."""

    __slots__ = ("addr",)

    def __init__(self, addr: int) -> None:
        self.addr = addr


class Store(Op):
    """Global-memory store of one word."""

    __slots__ = ("addr", "value")

    def __init__(self, addr: int, value: int) -> None:
        self.addr = addr
        self.value = value


class AtomicCAS(Op):
    """``atomicCAS``; executor sends back the *old* value."""

    __slots__ = ("addr", "expected", "desired")

    def __init__(self, addr: int, expected: int, desired: int) -> None:
        self.addr = addr
        self.expected = expected
        self.desired = desired


class AtomicAdd(Op):
    """``atomicAdd``; executor sends back the old value."""

    __slots__ = ("addr", "delta")

    def __init__(self, addr: int, delta: int) -> None:
        self.addr = addr
        self.delta = delta


class AtomicExch(Op):
    """``atomicExch``; executor sends back the old value."""

    __slots__ = ("addr", "value")

    def __init__(self, addr: int, value: int) -> None:
        self.addr = addr
        self.value = value


class Alu(Op):
    """``count`` arithmetic instructions (comparisons folded into Branch)."""

    __slots__ = ("count",)

    def __init__(self, count: int = 1) -> None:
        self.count = count


class Branch(Op):
    """One control-flow instruction (conditional branch / loop latch).

    ``taken`` is informational; divergence is detected by the executor from
    lanes issuing different op kinds in the same lockstep slot.
    """

    __slots__ = ("taken",)

    def __init__(self, taken: bool = True) -> None:
        self.taken = taken


#: shared default-branch instance. Ops are immutable once yielded and both
#: executors (and all probes) dispatch on ``type(op)`` alone, so device code
#: on a hot path may ``yield BRANCH`` instead of allocating ``Branch()``
#: per control-flow slot.
BRANCH = Branch()


class Noop(Op):
    """Zero-cost wait slot (models a lane parked at a warp-level barrier).

    Charges nothing: a lane spinning on ``Noop`` while its warp mates catch
    up mirrors SIMT predication-off lanes, which retire no instructions.
    """

    __slots__ = ()


class WaitGE(Op):
    """Barrier wait slot: park until ``seq[idx] >= target``.

    Semantically identical to :class:`Noop` — a zero-cost predicated-off
    slot charged nothing — but it *names the wake condition*, so the fast
    executor can park the lane and skip resuming its generator until the
    condition holds instead of re-entering the spin loop every slot. The
    reference interpreter treats it exactly like ``Noop``; programs keep
    their own ``while`` re-check around the yield, so the condition here is
    a scheduling hint, never a source of truth.

    ``seq`` is any indexable shared object (e.g. the iteration warp's
    ``shared["arrived"]`` list) whose ``seq[idx]`` is monotonically
    non-decreasing while any lane waits on it.

    Contract (what the parking fast path relies on): *mid-slot* wakes are
    only guaranteed when ``seq[idx]`` is advanced by a lane of the **same
    warp** during the current lockstep slot — the executor re-checks parked
    groups after each same-warp resumption and at every slot boundary.
    Advancement from outside the warp (host code, another warp) is
    observed at the next slot boundary, one slot later at most. Warp-local
    barriers (the only current use) arrive strictly through same-warp
    lanes, so both paths wake waiters in the identical slot.
    """

    __slots__ = ("seq", "idx", "target")

    def __init__(self, seq, idx: int, target: int) -> None:
        self.seq = seq
        self.idx = idx
        self.target = target


class Mark(Op):
    """Retire a request: records its completion cycle (response time).

    Programs yield ``Mark(request_id)`` once per logical request — for
    one-request-per-thread kernels right before returning; iteration-warp
    programs yield one per request group element they finish.
    """

    __slots__ = ("request_id",)

    def __init__(self, request_id: int) -> None:
        self.request_id = request_id


#: op-kind tags used by the divergence model (distinct kinds in one lockstep
#: slot serialize into separate issue cycles).
_KIND = {
    Load: 0,
    Store: 1,
    AtomicCAS: 2,
    AtomicAdd: 2,
    AtomicExch: 2,
    Alu: 3,
    Branch: 4,
    Mark: 5,
    Noop: 6,
    WaitGE: 6,
}


def op_kind(op: Op) -> int:
    return _KIND[type(op)]

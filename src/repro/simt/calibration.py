"""Cross-engine calibration: SIMT-measured costs vs the vector event model.

The vector engine converts counted events to instructions with the shared
per-event weights of :class:`repro.baselines.model.InstModel` and one
temporal-overlap constant. This module runs the *same workload* through
both engines for every system and reports measured/modelled ratios — the
check that no system's vector numbers drift away from what its instruction
stream actually does. EXPERIMENTS.md records a calibration run; the test
suite asserts the ratios stay within a factor-2 band.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..config import DeviceConfig, TreeConfig
from ..factory import make_system
from ..workloads import YcsbWorkload, build_key_pool


@dataclass
class CalibrationRow:
    system: str
    metric: str
    simt: float
    vector: float

    @property
    def ratio(self) -> float:
        return self.simt / self.vector if self.vector else float("inf")


@dataclass
class CalibrationReport:
    rows: list[CalibrationRow] = field(default_factory=list)

    def add(self, system: str, metric: str, simt: float, vector: float) -> None:
        self.rows.append(CalibrationRow(system, metric, simt, vector))

    def worst_ratio(self, metric: str | None = None) -> float:
        """Largest deviation from 1.0 (as max(r, 1/r)) over selected rows."""
        worst = 1.0
        for row in self.rows:
            if metric and row.metric != metric:
                continue
            if row.vector <= 0 or row.simt <= 0:
                continue
            r = row.ratio
            worst = max(worst, r if r >= 1 else 1 / r)
        return worst

    def render(self) -> str:
        lines = ["=== SIMT vs vector-model calibration (ratio = measured/modelled) ==="]
        lines.append(f"{'system':<14}{'metric':<16}{'simt':>12}{'vector':>12}{'ratio':>9}")
        for row in self.rows:
            lines.append(
                f"{row.system:<14}{row.metric:<16}{row.simt:>12.3f}"
                f"{row.vector:>12.3f}{row.ratio:>9.3f}"
            )
        return "\n".join(lines)


def calibrate(
    tree_size: int = 2**12,
    batch_size: int = 2**11,
    fanout: int = 32,
    num_sms: int = 8,
    seed: int = 42,
    systems: tuple[str, ...] = ("nocc", "stm", "lock", "eirene"),
) -> CalibrationReport:
    """Run one identical batch through both engines for each system."""
    report = CalibrationReport()
    for name in systems:
        metrics: dict[str, dict[str, float]] = {}
        for engine in ("simt", "vector"):
            rng = np.random.default_rng(seed)
            keys, values = build_key_pool(tree_size, rng)
            sys_ = make_system(
                name, keys, values,
                tree_config=TreeConfig(fanout=fanout),
                device=DeviceConfig(num_sms=num_sms),
            )
            batch = YcsbWorkload(pool=keys).generate(batch_size, rng)
            out = sys_.process_batch(batch, engine=engine)
            metrics[engine] = {
                "mem_inst/req": out.mem_inst_per_request,
                "ctrl_inst/req": out.control_inst_per_request,
                "steps/req": out.traversal_steps,
            }
        for metric in ("mem_inst/req", "ctrl_inst/req", "steps/req"):
            report.add(name, metric, metrics["simt"][metric], metrics["vector"][metric])
    return report

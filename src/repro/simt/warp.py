"""Lockstep warp executor.

A :class:`Warp` holds up to ``warp_size`` lanes, each an independent thread
program (generator). :meth:`Warp.step` advances every active lane by one
instruction slot, performs the memory/atomic operations against the arena,
and charges counters:

* per-lane executed instructions (memory / control / ALU / atomic) — the
  paper's per-thread Nsight metrics;
* warp-level *issue slots*: lanes executing the same op kind in a slot issue
  together; distinct kinds serialize (the divergence model);
* memory *transactions* via the 128-byte coalescing model — one warp load
  costs as many transactions as distinct segments its lanes touch.

Atomics execute immediately in lane order (the sequential interpreter makes
them trivially atomic); a CAS that observes a value different from
``expected`` counts as an atomic conflict, which the timing model surcharges
— that is where lock contention and STM ownership churn show up in time.
"""

from __future__ import annotations

from collections.abc import Generator

import numpy as np

from ..errors import SimulationError
from ..memory import MemoryArena
from .counters import KernelCounters
from .instructions import (
    Alu,
    AtomicAdd,
    AtomicCAS,
    AtomicExch,
    Branch,
    Load,
    Mark,
    Noop,
    Op,
    Store,
)


class Lane:
    """One thread: a program generator plus its in-flight state."""

    __slots__ = ("gen", "active", "send_value", "result", "steps", "mark_base")

    def __init__(self, gen: Generator) -> None:
        self.gen = gen
        self.active = True
        self.send_value: int | None = None
        self.result: object = None
        #: lockstep slots this lane has executed (service-time accounting)
        self.steps = 0
        #: slot count at the lane's previous Mark (per-request service delta)
        self.mark_base = 0


class Warp:
    """A cohort of lanes executing in lockstep."""

    def __init__(self, programs: list[Generator], arena: MemoryArena, warp_size: int = 32):
        if not programs:
            raise SimulationError("a warp needs at least one lane")
        if len(programs) > warp_size:
            raise SimulationError(f"warp overfull: {len(programs)} > {warp_size}")
        self.lanes = [Lane(g) for g in programs]
        self.arena = arena
        self.words_per_segment = arena.words_per_segment
        self.active = True
        #: warp-shared scratch (models shared memory, e.g. the §5 iteration
        #: warp buffer); populated by the kernel code that built this warp.
        self.shared: dict = {}
        #: analysis probe (race detector / hotspot profiler); set by the
        #: launcher when the owning DeviceContext has one attached. ``None``
        #: keeps the hot path identical to a probe-free build.
        self.probe = None
        #: grid-unique warp id assigned by the launcher (0 when standalone)
        self.warp_id = 0

    def step(self, counters: KernelCounters, cycle: float) -> tuple[int, int, int]:
        """Advance every active lane one slot.

        Returns ``(issue_slots, transactions, atomic_conflicts)`` for the
        timing model. Marks the warp inactive when all lanes finished.
        """
        data = self.arena.data
        size = data.size
        load_addrs: list[int] = []
        store_addrs: list[int] = []
        kinds = 0  # bitmask of op kinds present in this slot
        transactions = 0
        atomic_conflicts = 0
        any_active = False
        probe = self.probe
        if probe is not None:
            probe.begin_slot(self.warp_id)

        for lane_idx, lane in enumerate(self.lanes):
            if not lane.active:
                continue
            try:
                op: Op = lane.gen.send(lane.send_value)
            except StopIteration as stop:
                lane.active = False
                lane.result = stop.value
                continue
            any_active = True
            lane.send_value = None
            lane.steps += 1
            t = type(op)
            if t is Load:
                addr = op.addr
                if not 0 <= addr < size:
                    raise SimulationError(f"load address {addr} out of bounds")
                lane.send_value = int(data[addr])
                load_addrs.append(addr)
                counters.mem_inst += 1
                counters.load_inst += 1
                kinds |= 1
            elif t is Branch:
                counters.control_inst += 1
                kinds |= 16
            elif t is Alu:
                counters.alu_inst += op.count
                kinds |= 8
            elif t is Store:
                addr = op.addr
                if not 0 <= addr < size:
                    raise SimulationError(f"store address {addr} out of bounds")
                data[addr] = op.value
                store_addrs.append(addr)
                counters.mem_inst += 1
                counters.store_inst += 1
                kinds |= 2
            elif t is AtomicCAS:
                old = int(data[op.addr])
                if old == op.expected:
                    data[op.addr] = op.desired
                else:
                    atomic_conflicts += 1
                lane.send_value = old
                counters.atomic_inst += 1
                counters.atomic_transactions += 1
                transactions += 1
                kinds |= 4
            elif t is AtomicAdd:
                old = int(data[op.addr])
                data[op.addr] = old + op.delta
                lane.send_value = old
                counters.atomic_inst += 1
                counters.atomic_transactions += 1
                transactions += 1
                kinds |= 4
            elif t is AtomicExch:
                old = int(data[op.addr])
                data[op.addr] = op.value
                lane.send_value = old
                counters.atomic_inst += 1
                counters.atomic_transactions += 1
                transactions += 1
                kinds |= 4
            elif t is Mark:
                counters.finish_cycle[op.request_id] = cycle
                counters.service_steps[op.request_id] = lane.steps - lane.mark_base
                lane.mark_base = lane.steps
                kinds |= 32
            elif t is Noop:
                # barrier wait: costs nothing (predicated-off lane) and does
                # not count toward the lane's per-request service time
                lane.steps -= 1
            else:
                raise SimulationError(f"unknown op {op!r}")
            if probe is not None:
                probe.observe(
                    self.warp_id, lane_idx, op, lane.send_value, lane.gen
                )

        if load_addrs:
            transactions += self._segments(load_addrs)
        if store_addrs:
            transactions += self._segments(store_addrs)
        issue_slots = bin(kinds).count("1")
        if issue_slots > 1:
            counters.divergent_slots += issue_slots - 1
        counters.issued_slots += issue_slots
        counters.transactions += transactions
        counters.atomic_conflicts += atomic_conflicts
        if not any_active:
            self.active = False
        return issue_slots, transactions, atomic_conflicts

    def _segments(self, addrs: list[int]) -> int:
        wps = self.words_per_segment
        return len({a // wps for a in addrs})

    def results(self) -> list[object]:
        """Return values of all lane programs (after the warp retired)."""
        return [lane.result for lane in self.lanes]


def run_subroutine(gen: Generator, arena: MemoryArena) -> object:
    """Drive a single thread program to completion outside any warp.

    Debug/teaching helper (and unit-test harness): executes the program's
    memory ops directly, returns its return value. No counters are charged.
    """
    data = arena.data
    send: int | None = None
    while True:
        try:
            op = gen.send(send)
        except StopIteration as stop:
            return stop.value
        send = None
        t = type(op)
        if t is Load:
            send = int(data[op.addr])
        elif t is Store:
            data[op.addr] = op.value
        elif t is AtomicCAS:
            old = int(data[op.addr])
            if old == op.expected:
                data[op.addr] = op.desired
            send = old
        elif t is AtomicAdd:
            old = int(data[op.addr])
            data[op.addr] = old + op.delta
            send = old
        elif t is AtomicExch:
            old = int(data[op.addr])
            data[op.addr] = op.value
            send = old
        # Alu / Branch / Mark: no data effect

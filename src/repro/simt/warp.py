"""Lockstep warp executor.

A :class:`Warp` holds up to ``warp_size`` lanes, each an independent thread
program (generator). :meth:`Warp.step` advances every active lane by one
instruction slot, performs the memory/atomic operations against the arena,
and charges counters:

* per-lane executed instructions (memory / control / ALU / atomic) — the
  paper's per-thread Nsight metrics;
* warp-level *issue slots*: lanes executing the same op kind in a slot issue
  together; distinct kinds serialize (the divergence model);
* memory *transactions* via the 128-byte coalescing model — one warp load
  costs as many transactions as distinct segments its lanes touch.

Atomics execute immediately in lane order (the sequential interpreter makes
them trivially atomic); a CAS that observes a value different from
``expected`` counts as an atomic conflict, which the timing model surcharges
— that is where lock contention and STM ownership churn show up in time.

Two interpreter paths implement the identical semantics (see DESIGN.md §9):

* the **reference path** (:meth:`Warp._step_slow`) resumes every active
  lane every slot and updates counters per op — the original interpreter,
  kept verbatim as the executable specification;
* the **fast path** (:meth:`Warp._step_fast`) produces bit-for-bit the same
  counters, memory contents and lane results, but parks lanes blocked on a
  :class:`WaitGE` barrier (skipping their generators entirely), batches
  counter updates into one flush per slot, drops retired lanes from the
  iteration list, and can defer a slot's loads into one
  :meth:`~repro.memory.MemoryArena.gather` (off by default at warp width
  32, where scalar fetches measure faster).

Attaching an analysis probe (race sanitizer, hotspot profiler) always
selects the reference path, so probes observe every op exactly as before.
``REPRO_SLOW_PATH=1`` (see :mod:`repro.config`) forces it globally.
"""

from __future__ import annotations

from collections.abc import Generator
from operator import attrgetter

import numpy as np

from ..config import ExecutionConfig, execution_config
from ..errors import SimulationError
from ..memory import MemoryArena
from .counters import KernelCounters
from .instructions import (
    Alu,
    AtomicAdd,
    AtomicCAS,
    AtomicExch,
    Branch,
    Load,
    Mark,
    Noop,
    Op,
    Store,
    WaitGE,
)

#: popcount of the 6-bit op-kind bitmask (fast ``bin(kinds).count("1")``)
_POPCOUNT = tuple(bin(i).count("1") for i in range(64))

#: sort key re-establishing lane order when woken lanes rejoin the iteration
_lane_pos = attrgetter("pos")


class Lane:
    """One thread: a program generator plus its in-flight state."""

    __slots__ = (
        "gen", "send", "active", "send_value", "result", "steps",
        "mark_base", "pos", "wait",
    )

    def __init__(self, gen: Generator, pos: int = 0) -> None:
        self.gen = gen
        #: bound ``gen.send`` (resumed once per slot; avoids the per-slot
        #: method lookup on the hot path)
        self.send = gen.send
        self.active = True
        self.send_value: int | None = None
        self.result: object = None
        #: lockstep slots this lane has executed (service-time accounting)
        self.steps = 0
        #: slot count at the lane's previous Mark (per-request service delta)
        self.mark_base = 0
        #: fixed index within the warp; orders lanes when the fast path
        #: re-inserts woken lanes into the iteration
        self.pos = pos
        #: fast path: the barrier group this lane is parked on (see
        #: :meth:`Warp._step_fast`), else None. Parked lanes are not resumed
        #: until ``seq[idx] >= target`` holds at their turn in lane order.
        self.wait: list | None = None


class Warp:
    """A cohort of lanes executing in lockstep."""

    __slots__ = (
        "lanes", "arena", "words_per_segment", "active", "shared", "probe",
        "warp_id", "_fast", "_park", "_defer", "_awake", "_groups", "_hot",
        "_live_stale",
    )

    def __init__(
        self,
        programs: list[Generator],
        arena: MemoryArena,
        warp_size: int = 32,
        execution: ExecutionConfig | None = None,
    ):
        if not programs:
            raise SimulationError("a warp needs at least one lane")
        if len(programs) > warp_size:
            raise SimulationError(f"warp overfull: {len(programs)} > {warp_size}")
        self.lanes = [Lane(g, i) for i, g in enumerate(programs)]
        self.arena = arena
        self.words_per_segment = arena.words_per_segment
        self.active = True
        #: warp-shared scratch (models shared memory, e.g. the §5 iteration
        #: warp buffer); populated by the kernel code that built this warp.
        self.shared: dict = {}
        #: analysis probe (race detector / hotspot profiler); set by the
        #: launcher when the owning DeviceContext has one attached. ``None``
        #: keeps the hot path identical to a probe-free build.
        self.probe = None
        #: grid-unique warp id assigned by the launcher (0 when standalone)
        self.warp_id = 0
        ex = execution if execution is not None else execution_config()
        self._fast = ex.vectorize_slots
        self._park = ex.park_barrier_waits
        #: defer this slot's loads into one arena.gather? Static per warp:
        #: profitable only when a slot can batch >= gather_threshold
        #: addresses, which a narrower warp never reaches.
        self._defer = len(self.lanes) >= ex.gather_threshold
        #: lanes that are runnable (active and not parked), in lane order;
        #: the fast path iterates only these, so retired lanes and lanes
        #: parked at a barrier cost nothing per slot.
        self._awake = list(self.lanes)
        #: parked barrier groups ``[seq, idx, target, lanes]`` — one entry
        #: per distinct WaitGE condition with at least one parked lane.
        self._groups: list[list] = []
        #: groups one arrival away from opening (``parked >= target - 1``);
        #: only these can open mid-slot, so only these are re-checked after
        #: each lane resumption (see the WaitGE contract in instructions.py).
        self._hot: list[list] = []
        #: set by the reference path: fast-path scheduling state is stale
        #: and must be rebuilt (probe runs interleave the two paths).
        self._live_stale = False

    def step(self, counters: KernelCounters, cycle: float) -> tuple[int, int, int]:
        """Advance every active lane one slot.

        Returns ``(issue_slots, transactions, atomic_conflicts)`` for the
        timing model. Marks the warp inactive when all lanes finished.
        """
        if self.probe is not None or not self._fast:
            return self._step_slow(counters, cycle)
        return self._step_fast(counters, cycle)

    # ------------------------------------------------------------------ #
    # reference interpreter (the executable specification)
    # ------------------------------------------------------------------ #
    def _step_slow(self, counters: KernelCounters, cycle: float) -> tuple[int, int, int]:
        data = self.arena.data
        size = data.size
        load_addrs: list[int] = []
        store_addrs: list[int] = []
        kinds = 0  # bitmask of op kinds present in this slot
        transactions = 0
        atomic_conflicts = 0
        any_active = False
        probe = self.probe
        self._live_stale = True
        if probe is not None:
            probe.begin_slot(self.warp_id)

        for lane_idx, lane in enumerate(self.lanes):
            if not lane.active:
                continue
            try:
                op: Op = lane.gen.send(lane.send_value)
            except StopIteration as stop:
                lane.active = False
                lane.result = stop.value
                continue
            any_active = True
            lane.send_value = None
            lane.steps += 1
            t = type(op)
            if t is Load:
                addr = op.addr
                if not 0 <= addr < size:
                    raise SimulationError(f"load address {addr} out of bounds")
                lane.send_value = int(data[addr])
                load_addrs.append(addr)
                counters.mem_inst += 1
                counters.load_inst += 1
                kinds |= 1
            elif t is Branch:
                counters.control_inst += 1
                kinds |= 16
            elif t is Alu:
                counters.alu_inst += op.count
                kinds |= 8
            elif t is Store:
                addr = op.addr
                if not 0 <= addr < size:
                    raise SimulationError(f"store address {addr} out of bounds")
                data[addr] = op.value
                store_addrs.append(addr)
                counters.mem_inst += 1
                counters.store_inst += 1
                kinds |= 2
            elif t is AtomicCAS:
                old = int(data[op.addr])
                if old == op.expected:
                    data[op.addr] = op.desired
                else:
                    atomic_conflicts += 1
                lane.send_value = old
                counters.atomic_inst += 1
                counters.atomic_transactions += 1
                transactions += 1
                kinds |= 4
            elif t is AtomicAdd:
                old = int(data[op.addr])
                data[op.addr] = old + op.delta
                lane.send_value = old
                counters.atomic_inst += 1
                counters.atomic_transactions += 1
                transactions += 1
                kinds |= 4
            elif t is AtomicExch:
                old = int(data[op.addr])
                data[op.addr] = op.value
                lane.send_value = old
                counters.atomic_inst += 1
                counters.atomic_transactions += 1
                transactions += 1
                kinds |= 4
            elif t is Mark:
                counters.finish_cycle[op.request_id] = cycle
                counters.service_steps[op.request_id] = lane.steps - lane.mark_base
                lane.mark_base = lane.steps
                kinds |= 32
            elif t is Noop or t is WaitGE:
                # barrier wait: costs nothing (predicated-off lane) and does
                # not count toward the lane's per-request service time
                lane.steps -= 1
            else:
                raise SimulationError(f"unknown op {op!r}")
            if probe is not None:
                probe.observe(
                    self.warp_id, lane_idx, op, lane.send_value, lane.gen
                )

        if load_addrs:
            transactions += self._segments(load_addrs)
        if store_addrs:
            transactions += self._segments(store_addrs)
        issue_slots = bin(kinds).count("1")
        if issue_slots > 1:
            counters.divergent_slots += issue_slots - 1
        counters.issued_slots += issue_slots
        counters.transactions += transactions
        counters.atomic_conflicts += atomic_conflicts
        if not any_active:
            self.active = False
        return issue_slots, transactions, atomic_conflicts

    # ------------------------------------------------------------------ #
    # fast interpreter (identical observable behaviour)
    # ------------------------------------------------------------------ #
    def _step_fast(self, counters: KernelCounters, cycle: float) -> tuple[int, int, int]:
        arena = self.arena
        data = arena.data
        item = data.item
        size = data.size
        park = self._park
        wps = self.words_per_segment
        groups = self._groups
        if self._live_stale:
            # the reference path ran in between (probe attached): dissolve
            # all parking state — woken lanes just re-yield their WaitGE,
            # which charges nothing, so spurious wakes are free
            for ln in self.lanes:
                ln.wait = None
            groups.clear()
            self._hot = []
            self._awake = [ln for ln in self.lanes if ln.active]
            self._live_stale = False
        awake = self._awake
        wake_next: list[Lane] = []
        if groups:
            # barriers satisfied between slots (host code or another warp
            # advanced the sequence): wake at slot start, in lane order
            for g in groups:
                if g[0][g[1]] >= g[2]:
                    self._open_groups(awake, 0, -1, wake_next)
                    break
        if not awake:
            if not groups:
                self.active = False
            return 0, 0, 0
        hot = self._hot
        compact = False
        load_addrs: list[int] = []
        load_segs: set[int] = set()
        store_segs: set[int] = set()
        lseg_add = load_segs.add
        sseg_add = store_segs.add
        kinds = 0
        n_load = n_store = n_branch = n_alu = 0
        n_atomic = transactions = atomic_conflicts = 0

        # Load deferral (only for warps wide enough that one bulk gather
        # beats scalar fetches): queued loads are flushed before any op or
        # host-plane helper can write device memory, so a deferred load can
        # never observe a later lane's store. Host-side mutators signal via
        # arena.host_write_sync() -> _host_barrier (see MemoryArena).
        defer = self._defer
        if defer:
            pend_lanes: list[Lane] = []

            def flush() -> None:
                if not pend_lanes:
                    return
                base = len(load_addrs) - len(pend_lanes)
                addrs = load_addrs[base:]
                if len(addrs) >= 2:
                    for ln, v in zip(pend_lanes, arena.gather(addrs).tolist()):
                        ln.send_value = v
                else:
                    pend_lanes[0].send_value = item(addrs[0])
                pend_lanes.clear()

            arena._host_barrier = flush

        try:
            i = 0
            n = len(awake)
            while i < n:
                lane = awake[i]
                i += 1
                try:
                    op = lane.send(lane.send_value)
                except StopIteration as stop:
                    lane.active = False
                    lane.result = stop.value
                    compact = True
                    if hot:
                        # a lane may pass its last barrier and retire in one
                        # resumption; its followers still wake this slot
                        for g in hot:
                            if g[0][g[1]] >= g[2]:
                                self._open_groups(awake, i, lane.pos, wake_next)
                                hot = self._hot
                                n = len(awake)
                                break
                    continue
                lane.steps += 1
                t = type(op)
                if t is Load:
                    addr = op.addr
                    if not 0 <= addr < size:
                        raise SimulationError(f"load address {addr} out of bounds")
                    n_load += 1
                    kinds |= 1
                    if defer:
                        load_addrs.append(addr)
                        pend_lanes.append(lane)
                    else:
                        lseg_add(addr // wps)
                        lane.send_value = item(addr)
                elif t is Branch:
                    lane.send_value = None
                    n_branch += 1
                    kinds |= 16
                elif t is Alu:
                    lane.send_value = None
                    n_alu += op.count
                    kinds |= 8
                elif t is Store:
                    addr = op.addr
                    if not 0 <= addr < size:
                        raise SimulationError(f"store address {addr} out of bounds")
                    if defer:
                        flush()
                    data[addr] = op.value
                    sseg_add(addr // wps)
                    lane.send_value = None
                    n_store += 1
                    kinds |= 2
                elif t is AtomicCAS:
                    if defer:
                        flush()
                    old = int(data[op.addr])
                    if old == op.expected:
                        data[op.addr] = op.desired
                    else:
                        atomic_conflicts += 1
                    lane.send_value = old
                    n_atomic += 1
                    transactions += 1
                    kinds |= 4
                elif t is AtomicAdd:
                    if defer:
                        flush()
                    old = int(data[op.addr])
                    data[op.addr] = old + op.delta
                    lane.send_value = old
                    n_atomic += 1
                    transactions += 1
                    kinds |= 4
                elif t is AtomicExch:
                    if defer:
                        flush()
                    old = int(data[op.addr])
                    data[op.addr] = op.value
                    lane.send_value = old
                    n_atomic += 1
                    transactions += 1
                    kinds |= 4
                elif t is Mark:
                    lane.send_value = None
                    counters.finish_cycle[op.request_id] = cycle
                    counters.service_steps[op.request_id] = lane.steps - lane.mark_base
                    lane.mark_base = lane.steps
                    kinds |= 32
                elif t is WaitGE or t is Noop:
                    lane.send_value = None
                    lane.steps -= 1
                    if park and t is WaitGE:
                        seq = op.seq
                        idx = op.idx
                        tgt = op.target
                        for g in groups:
                            if g[0] is seq and g[1] == idx and g[2] == tgt:
                                g[3].append(lane)
                                break
                        else:
                            g = [seq, idx, tgt, [lane]]
                            groups.append(g)
                        lane.wait = g
                        compact = True
                        if len(g[3]) >= tgt - 1:
                            hot = self._hot = [
                                gg for gg in groups if len(gg[3]) >= gg[2] - 1
                            ]
                else:
                    raise SimulationError(f"unknown op {op!r}")
                if hot:
                    # a barrier one arrival away may have been opened by the
                    # lane we just ran: wake its followers at their turn
                    for g in hot:
                        if g[0][g[1]] >= g[2]:
                            self._open_groups(awake, i, lane.pos, wake_next)
                            hot = self._hot
                            n = len(awake)
                            break
            if defer:
                flush()
        finally:
            if defer:
                arena._host_barrier = None

        if n_load:
            counters.load_inst += n_load
            transactions += self._segments(load_addrs) if defer else len(load_segs)
        if n_store:
            counters.store_inst += n_store
            transactions += len(store_segs)
        if n_load or n_store:
            counters.mem_inst += n_load + n_store
        if n_branch:
            counters.control_inst += n_branch
        if n_alu:
            counters.alu_inst += n_alu
        if n_atomic:
            counters.atomic_inst += n_atomic
            counters.atomic_transactions += n_atomic
        issue_slots = _POPCOUNT[kinds]
        if issue_slots:
            if issue_slots > 1:
                counters.divergent_slots += issue_slots - 1
            counters.issued_slots += issue_slots
        if transactions:
            counters.transactions += transactions
        if atomic_conflicts:
            counters.atomic_conflicts += atomic_conflicts
        if compact or wake_next:
            alive = [ln for ln in awake if ln.active and ln.wait is None]
            if wake_next:
                alive.extend(wake_next)
                alive.sort(key=_lane_pos)
            self._awake = alive
            if not alive and not groups:
                self.active = False
        return issue_slots, transactions, atomic_conflicts

    def _open_groups(self, awake: list, i: int, pos: int, wake_next: list) -> None:
        """Wake every parked group whose barrier condition now holds.

        Lanes positioned after ``pos`` rejoin *this* slot — spliced into the
        remaining iteration in lane order — because the reference path would
        visit them later in the same slot and see the condition satisfied.
        Lanes at or before ``pos`` were already passed over this slot and
        rejoin at the next one, again matching the reference schedule.
        """
        groups = self._groups
        still: list[list] = []
        late: list[Lane] = []
        for g in groups:
            if g[0][g[1]] >= g[2]:
                for ln in g[3]:
                    ln.wait = None
                    if ln.pos > pos:
                        late.append(ln)
                    elif ln not in awake:
                        # parked in an earlier slot: rejoins next slot. A
                        # lane that parked *this* slot is still in ``awake``
                        # and survives compaction by its cleared wait alone.
                        wake_next.append(ln)
            else:
                still.append(g)
        groups[:] = still
        self._hot = [g for g in still if len(g[3]) >= g[2] - 1]
        if late:
            tail = awake[i:] + late
            tail.sort(key=_lane_pos)
            awake[i:] = tail

    def _segments(self, addrs: list[int]) -> int:
        wps = self.words_per_segment
        return len({a // wps for a in addrs})

    def results(self) -> list[object]:
        """Return values of all lane programs (after the warp retired)."""
        return [lane.result for lane in self.lanes]


def run_subroutine(gen: Generator, arena: MemoryArena) -> object:
    """Drive a single thread program to completion outside any warp.

    Debug/teaching helper (and unit-test harness): executes the program's
    memory ops directly, returns its return value. No counters are charged.
    """
    data = arena.data
    send: int | None = None
    while True:
        try:
            op = gen.send(send)
        except StopIteration as stop:
            return stop.value
        send = None
        t = type(op)
        if t is Load:
            send = int(data[op.addr])
        elif t is Store:
            data[op.addr] = op.value
        elif t is AtomicCAS:
            old = int(data[op.addr])
            if old == op.expected:
                data[op.addr] = op.desired
            send = old
        elif t is AtomicAdd:
            old = int(data[op.addr])
            data[op.addr] = old + op.delta
            send = old
        elif t is AtomicExch:
            old = int(data[op.addr])
            data[op.addr] = op.value
            send = old
        # Alu / Branch / Mark / Noop / WaitGE: no data effect

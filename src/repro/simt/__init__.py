"""SIMT execution simulator: warps, lockstep stepping, counters, timing."""

from .counters import KernelCounters
from .instructions import (
    Alu,
    AtomicAdd,
    AtomicCAS,
    AtomicExch,
    Branch,
    Load,
    Mark,
    Noop,
    Op,
    Store,
    op_kind,
)
from .launcher import KernelLaunch
from .timing import CostModel, PhaseTime
from .warp import Lane, Warp, run_subroutine

__all__ = [
    "Alu",
    "AtomicAdd",
    "AtomicCAS",
    "AtomicExch",
    "Branch",
    "CostModel",
    "KernelCounters",
    "KernelLaunch",
    "Lane",
    "Load",
    "Mark",
    "Noop",
    "Op",
    "PhaseTime",
    "Store",
    "Warp",
    "op_kind",
    "run_subroutine",
]

"""SIMT execution simulator: warps, lockstep stepping, counters, timing."""

from .counters import KernelCounters
from .instructions import (
    BRANCH,
    Alu,
    AtomicAdd,
    AtomicCAS,
    AtomicExch,
    Branch,
    Load,
    Mark,
    Noop,
    Op,
    Store,
    WaitGE,
    op_kind,
)
from .launcher import KernelLaunch
from .timing import CostModel, PhaseTime
from .warp import Lane, Warp, run_subroutine

__all__ = [
    "BRANCH",
    "Alu",
    "AtomicAdd",
    "AtomicCAS",
    "AtomicExch",
    "Branch",
    "CostModel",
    "KernelCounters",
    "KernelLaunch",
    "Lane",
    "Load",
    "Mark",
    "Noop",
    "Op",
    "PhaseTime",
    "Store",
    "WaitGE",
    "Warp",
    "op_kind",
    "run_subroutine",
]

"""Kernel launch and SM scheduling.

A :class:`KernelLaunch` collects thread programs, packs them into warps,
distributes warps round-robin over the device's SMs, and interleaves all
warps globally (one slot per warp per round). Global interleaving is what
makes transactions genuinely concurrent: STM conflicts, lock contention and
split/validation races arise from real overlap, not from a probability
model.

Warp *order* within each round is randomized when an ``rng`` is supplied —
GPU warp schedulers are not deterministic round-robin, and this
nondeterminism is what turns conflict retries into run-to-run response-time
variance (the paper's QoS argument: "it is unpredictable where the conflict
occurs and how many retries are required"). Systems seed the rng from the
batch contents, so runs stay reproducible while varying across batches.

Timing: each SM accumulates the issue and memory cycles of its own warps'
steps; the kernel's device time is the maximum over SMs (the straggler SM),
matching how a real grid retires.
"""

from __future__ import annotations

from collections.abc import Generator

from ..config import DeviceConfig, ExecutionConfig
from ..errors import SimulationError
from ..memory import MemoryArena
from .counters import KernelCounters
from .warp import Warp


class KernelLaunch:
    """One simulated kernel grid."""

    def __init__(
        self,
        device: DeviceConfig,
        arena: MemoryArena,
        n_requests: int,
        rng=None,
        probe=None,
        execution: ExecutionConfig | None = None,
    ) -> None:
        self.device = device
        self.arena = arena
        self.counters = KernelCounters(n_requests=n_requests)
        self.rng = rng
        #: analysis probe (race detector / hotspot profiler) observing every
        #: executed op; ``None`` leaves execution bit-for-bit unchanged.
        self.probe = probe
        #: interpreter selection for this grid's warps; ``None`` defers to
        #: the process-wide :func:`repro.config.execution_config`.
        self.execution = execution
        self._warps: list[Warp] = []
        self._launched = False

    # ------------------------------------------------------------------ #
    def add_warp(self, programs: list[Generator]) -> Warp:
        """Create a warp from explicit lane programs (iteration warps build
        their shared buffer around the returned object)."""
        if self._launched:
            raise SimulationError("cannot add warps after launch")
        warp = Warp(
            programs, self.arena, self.device.warp_size, execution=self.execution
        )
        warp.warp_id = len(self._warps)
        warp.probe = self.probe
        self._warps.append(warp)
        return warp

    def add_programs(self, programs: list[Generator]) -> None:
        """Pack one-thread-per-request programs into warps of ``warp_size``."""
        ws = self.device.warp_size
        for start in range(0, len(programs), ws):
            self.add_warp(programs[start : start + ws])

    @property
    def n_warps(self) -> int:
        return len(self._warps)

    # ------------------------------------------------------------------ #
    def run(self) -> KernelCounters:
        """Execute the grid to completion; returns the filled counters."""
        if self._launched:
            raise SimulationError("kernel already launched")
        self._launched = True
        if self.probe is not None:
            # kernel launches are global barriers: accesses in different
            # launches are ordered and can never race
            self.probe.begin_launch()
        dev = self.device
        n_sms = dev.num_sms
        sm_of = [i % n_sms for i in range(len(self._warps))]
        sm_cycles = [0.0] * n_sms
        counters = self.counters
        cpi = dev.cycles_per_inst
        cpm = dev.cycles_per_mem_transaction
        cpa = dev.cycles_per_atomic_conflict

        warps = self._warps
        steps = [w.step for w in warps]
        rng = self.rng
        active = list(range(len(warps)))
        while active:
            still = []
            append = still.append
            if rng is not None and len(active) > 1:
                order = [active[i] for i in rng.permutation(len(active)).tolist()]
            else:
                order = active
            for wi in order:
                sm = sm_of[wi]
                issue, trans, conflicts = steps[wi](counters, sm_cycles[sm])
                sm_cycles[sm] += issue * cpi + trans * cpm + conflicts * cpa
                if warps[wi].active:
                    append(wi)
            active = still
        counters.cycles = max(sm_cycles) if sm_cycles else 0.0
        if self.probe is not None:
            self.probe.end_launch(counters)
        return counters

    def lane_results(self) -> list[object]:
        """Flat list of lane return values in warp/lane order."""
        out: list[object] = []
        for warp in self._warps:
            out.extend(warp.results())
        return out

"""Per-kernel instruction and timing counters.

These are the simulator's equivalent of the paper's Nsight Compute metrics:
``memory_inst`` and ``control_inst`` per request (Figs. 1, 9, 12), plus the
per-request completion cycles that response-time variance (Figs. 2, 8) is
computed from.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class KernelCounters:
    """Counters for one kernel launch (or several merged launches)."""

    n_requests: int
    #: per-lane-executed instruction totals (the paper's per-thread metrics)
    mem_inst: int = 0
    control_inst: int = 0
    alu_inst: int = 0
    atomic_inst: int = 0
    #: ``mem_inst`` split by access kind — loads vs plain stores — and the
    #: atomic-RMW transaction count, so profiles (Fig. 9) and the race
    #: detector can tell an atomic apart from a plain store.
    #: ``load_inst + store_inst == mem_inst`` and
    #: ``atomic_transactions == atomic_inst`` always hold.
    load_inst: int = 0
    store_inst: int = 0
    atomic_transactions: int = 0
    #: warp-level issue slots (timing), memory transactions (timing)
    issued_slots: int = 0
    transactions: int = 0
    atomic_conflicts: int = 0
    divergent_slots: int = 0
    #: completion cycle per request id (NaN until retired)
    finish_cycle: np.ndarray = field(default_factory=lambda: np.zeros(0))
    #: per-request service time in lockstep slots the owning lane was live
    #: between Marks — the per-request work measure QoS variance comes from
    service_steps: np.ndarray = field(default_factory=lambda: np.zeros(0))
    #: total device cycles of the launch (max over SMs)
    cycles: float = 0.0

    def __post_init__(self) -> None:
        if self.finish_cycle.size == 0:
            self.finish_cycle = np.full(self.n_requests, np.nan)
        if self.service_steps.size == 0:
            self.service_steps = np.full(self.n_requests, np.nan)

    # -- derived per-request metrics ------------------------------------ #
    @property
    def mem_inst_per_request(self) -> float:
        return self.mem_inst / self.n_requests if self.n_requests else 0.0

    @property
    def control_inst_per_request(self) -> float:
        return self.control_inst / self.n_requests if self.n_requests else 0.0

    @property
    def total_inst(self) -> int:
        return self.mem_inst + self.control_inst + self.alu_inst + self.atomic_inst

    def merge(self, other: "KernelCounters") -> "KernelCounters":
        """Combine two launches over the same request id space."""
        if other.n_requests != self.n_requests:
            raise ValueError("cannot merge counters over different request spaces")
        out = KernelCounters(n_requests=self.n_requests)
        out.mem_inst = self.mem_inst + other.mem_inst
        out.control_inst = self.control_inst + other.control_inst
        out.alu_inst = self.alu_inst + other.alu_inst
        out.atomic_inst = self.atomic_inst + other.atomic_inst
        out.load_inst = self.load_inst + other.load_inst
        out.store_inst = self.store_inst + other.store_inst
        out.atomic_transactions = (
            self.atomic_transactions + other.atomic_transactions
        )
        out.issued_slots = self.issued_slots + other.issued_slots
        out.transactions = self.transactions + other.transactions
        out.atomic_conflicts = self.atomic_conflicts + other.atomic_conflicts
        out.divergent_slots = self.divergent_slots + other.divergent_slots
        out.cycles = self.cycles + other.cycles
        # a request retired in either launch keeps its (shifted) retire time;
        # the second launch is assumed to start after the first completes
        fc = self.finish_cycle.copy()
        shifted = other.finish_cycle + self.cycles
        take = np.isnan(fc) & ~np.isnan(other.finish_cycle)
        fc[take] = shifted[take]
        out.finish_cycle = fc
        ss = self.service_steps.copy()
        take = np.isnan(ss) & ~np.isnan(other.service_steps)
        ss[take] = other.service_steps[take]
        out.service_steps = ss
        return out

"""Request batches and result containers.

Requests are stored structure-of-arrays (numpy), matching how the real
system buffers them in host memory before transfer (§7). A request's
*logical timestamp* is its index in the batch — its arrival order in the
buffer — which is exactly what the paper's linearizability argument keys on.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .._types import KIND_DTYPE, NULL_VALUE, OpKind
from ..errors import WorkloadError


@dataclass
class RequestBatch:
    """One buffered batch of concurrent requests (SoA)."""

    kinds: np.ndarray  # int8 OpKind per request
    keys: np.ndarray  # int64 target key (lower bound for RANGE)
    values: np.ndarray  # int64 payload for UPDATE/INSERT; 0 otherwise
    range_ends: np.ndarray  # int64 inclusive upper bound for RANGE; 0 otherwise

    def __post_init__(self) -> None:
        n = self.kinds.size
        if not (self.keys.size == self.values.size == self.range_ends.size == n):
            raise WorkloadError("request batch arrays must have equal length")
        self.kinds = np.ascontiguousarray(self.kinds, dtype=KIND_DTYPE)
        self.keys = np.ascontiguousarray(self.keys, dtype=np.int64)
        self.values = np.ascontiguousarray(self.values, dtype=np.int64)
        self.range_ends = np.ascontiguousarray(self.range_ends, dtype=np.int64)

    @property
    def n(self) -> int:
        return int(self.kinds.size)

    def __len__(self) -> int:
        return self.n

    @property
    def timestamps(self) -> np.ndarray:
        """Logical timestamps = arrival order in the buffer."""
        return np.arange(self.n, dtype=np.int64)

    def kind_counts(self) -> dict[OpKind, int]:
        return {k: int((self.kinds == k).sum()) for k in OpKind}

    def subset(self, idx: np.ndarray) -> "RequestBatch":
        return RequestBatch(
            kinds=self.kinds[idx],
            keys=self.keys[idx],
            values=self.values[idx],
            range_ends=self.range_ends[idx],
        )

    @classmethod
    def from_ops(cls, ops: list[tuple]) -> "RequestBatch":
        """Build from a list of op tuples — test/example convenience.

        Accepted forms: ``(OpKind.QUERY, key)``, ``(OpKind.UPDATE, key, value)``,
        ``(OpKind.INSERT, key, value)``, ``(OpKind.DELETE, key)``,
        ``(OpKind.RANGE, lo, hi)``.
        """
        n = len(ops)
        kinds = np.zeros(n, dtype=KIND_DTYPE)
        keys = np.zeros(n, dtype=np.int64)
        values = np.zeros(n, dtype=np.int64)
        ends = np.zeros(n, dtype=np.int64)
        for i, op in enumerate(ops):
            kind = OpKind(op[0])
            kinds[i] = kind
            keys[i] = op[1]
            if kind in (OpKind.UPDATE, OpKind.INSERT):
                if len(op) != 3:
                    raise WorkloadError(f"{kind.name} needs (kind, key, value): {op}")
                values[i] = op[2]
            elif kind == OpKind.RANGE:
                if len(op) != 3:
                    raise WorkloadError(f"RANGE needs (kind, lo, hi): {op}")
                ends[i] = op[2]
                if op[2] < op[1]:
                    raise WorkloadError(f"empty range {op}")
            elif len(op) != 2:
                raise WorkloadError(f"{kind.name} needs (kind, key): {op}")
        return cls(kinds=kinds, keys=keys, values=values, range_ends=ends)


@dataclass
class BatchResults:
    """Results for one batch, indexed by request position (timestamp).

    Point requests put their answer in ``values`` (queries: the value or
    ``NULL_VALUE``; update-class: the *old* value at their linearization
    point, i.e. the value an atomic swap would have returned). Range
    queries store their pairs in the flat ``range_keys``/``range_values``
    arrays, delimited by ``range_offsets``.
    """

    values: np.ndarray
    range_offsets: np.ndarray = field(default_factory=lambda: np.zeros(1, dtype=np.int64))
    range_keys: np.ndarray = field(default_factory=lambda: np.zeros(0, dtype=np.int64))
    range_values: np.ndarray = field(default_factory=lambda: np.zeros(0, dtype=np.int64))

    @classmethod
    def empty(cls, n: int) -> "BatchResults":
        return cls(
            values=np.full(n, NULL_VALUE, dtype=np.int64),
            range_offsets=np.zeros(n + 1, dtype=np.int64),
        )

    @property
    def n(self) -> int:
        return int(self.values.size)

    def range_result(self, i: int) -> tuple[np.ndarray, np.ndarray]:
        lo, hi = int(self.range_offsets[i]), int(self.range_offsets[i + 1])
        return self.range_keys[lo:hi], self.range_values[lo:hi]

    def set_range_results(self, per_request: dict[int, tuple[np.ndarray, np.ndarray]]) -> None:
        """Install ragged range results from a {request index: (keys, values)} map."""
        counts = np.zeros(self.n, dtype=np.int64)
        for i, (ks, _vs) in per_request.items():
            counts[i] = len(ks)
        self.range_offsets = np.zeros(self.n + 1, dtype=np.int64)
        np.cumsum(counts, out=self.range_offsets[1:])
        total = int(self.range_offsets[-1])
        self.range_keys = np.zeros(total, dtype=np.int64)
        self.range_values = np.zeros(total, dtype=np.int64)
        for i, (ks, vs) in per_request.items():
            lo = int(self.range_offsets[i])
            self.range_keys[lo : lo + len(ks)] = ks
            self.range_values[lo : lo + len(vs)] = vs

"""Key distributions for workload generation.

The paper's default is Uniform; YCSB's canonical skewed distribution is
(scrambled) Zipfian, which we provide for skew-sensitivity studies — key
conflicts, which combining eliminates, grow sharply with skew.
"""

from __future__ import annotations

import numpy as np

from ..errors import WorkloadError


class UniformKeys:
    """Sample uniformly from a fixed key pool."""

    def __init__(self, pool: np.ndarray) -> None:
        if pool.size == 0:
            raise WorkloadError("key pool must be non-empty")
        self.pool = np.ascontiguousarray(pool, dtype=np.int64)

    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        return self.pool[rng.integers(0, self.pool.size, size=n)]


class ZipfianKeys:
    """Scrambled Zipfian over a key pool (YCSB's ``zipfian`` semantics).

    Rank ``r`` (1-based) is drawn with probability proportional to
    ``1 / r**theta``; ranks are scrambled over the pool with a fixed
    permutation so hot keys are spread across the key space (and hence
    across B+tree leaves), as in YCSB's ScrambledZipfianGenerator.
    """

    def __init__(self, pool: np.ndarray, theta: float = 0.99, seed: int = 0x5EED) -> None:
        if pool.size == 0:
            raise WorkloadError("key pool must be non-empty")
        if not 0.0 < theta < 1.0:
            raise WorkloadError(f"zipfian theta must be in (0, 1), got {theta}")
        self.pool = np.ascontiguousarray(pool, dtype=np.int64)
        self.theta = theta
        ranks = np.arange(1, self.pool.size + 1, dtype=np.float64)
        weights = ranks ** (-theta)
        self._cdf = np.cumsum(weights)
        self._cdf /= self._cdf[-1]
        scramble_rng = np.random.default_rng(seed)
        self._perm = scramble_rng.permutation(self.pool.size)

    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        u = rng.random(n)
        ranks = np.searchsorted(self._cdf, u, side="left")
        return self.pool[self._perm[ranks]]


def make_distribution(name: str, pool: np.ndarray, **kwargs) -> UniformKeys | ZipfianKeys:
    """Factory: ``"uniform"`` or ``"zipfian"`` (with optional ``theta``)."""
    if name == "uniform":
        return UniformKeys(pool)
    if name == "zipfian":
        return ZipfianKeys(pool, **kwargs)
    raise WorkloadError(f"unknown distribution {name!r}")

"""Workload generation: request batches, key distributions, YCSB mixes."""

from .distributions import UniformKeys, ZipfianKeys, make_distribution
from .requests import BatchResults, RequestBatch
from .ycsb import (
    PAPER_DEFAULT,
    RANGE_4,
    RANGE_8,
    YCSB_A,
    YCSB_B,
    YCSB_C,
    YCSB_D,
    YCSB_E,
    YCSB_F,
    YcsbMix,
    YcsbWorkload,
    build_key_pool,
)

__all__ = [
    "BatchResults",
    "PAPER_DEFAULT",
    "RANGE_4",
    "RANGE_8",
    "RequestBatch",
    "UniformKeys",
    "YCSB_A",
    "YCSB_B",
    "YCSB_C",
    "YCSB_D",
    "YCSB_E",
    "YCSB_F",
    "YcsbMix",
    "YcsbWorkload",
    "ZipfianKeys",
    "build_key_pool",
    "make_distribution",
]

"""YCSB-style workload generation (Cooper et al., SoCC'10).

The paper evaluates with YCSB request mixes over a pre-built tree: the
default is 95% query / 5% update with uniformly distributed 32-bit keys
(§8.1); the range experiment (Fig. 13) uses 100% range queries of length 4
or 8. :class:`YcsbWorkload` generates request batches with those mixes and
also provides the canonical YCSB A–F presets for the examples.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .._types import KIND_DTYPE, OpKind
from ..errors import WorkloadError
from .distributions import make_distribution
from .requests import RequestBatch


@dataclass(frozen=True)
class YcsbMix:
    """Operation mix; ratios must sum to 1."""

    query: float = 0.95
    update: float = 0.05
    insert: float = 0.0
    delete: float = 0.0
    range_: float = 0.0
    range_length: int = 4

    def __post_init__(self) -> None:
        total = self.query + self.update + self.insert + self.delete + self.range_
        if abs(total - 1.0) > 1e-9:
            raise WorkloadError(f"mix ratios sum to {total}, expected 1.0")
        if min(self.query, self.update, self.insert, self.delete, self.range_) < 0:
            raise WorkloadError("mix ratios must be non-negative")
        if self.range_length < 1:
            raise WorkloadError("range_length must be >= 1")


#: the paper's default workload: 95% query / 5% update, uniform keys (§8.1)
PAPER_DEFAULT = YcsbMix()

#: canonical YCSB core workloads (F's read-modify-write = query + update)
YCSB_A = YcsbMix(query=0.5, update=0.5)
YCSB_B = YcsbMix(query=0.95, update=0.05)
YCSB_C = YcsbMix(query=1.0, update=0.0)
YCSB_D = YcsbMix(query=0.95, update=0.0, insert=0.05)
YCSB_E = YcsbMix(query=0.0, update=0.0, insert=0.05, range_=0.95)
YCSB_F = YcsbMix(query=0.5, update=0.5)

#: Fig. 13 workloads: pure range queries of length 4 and 8
RANGE_4 = YcsbMix(query=0.0, update=0.0, range_=1.0, range_length=4)
RANGE_8 = YcsbMix(query=0.0, update=0.0, range_=1.0, range_length=8)


@dataclass
class YcsbWorkload:
    """Batch generator over a fixed key pool.

    ``pool`` holds the keys loaded into the tree; queries/updates/deletes
    target pool keys, inserts draw fresh keys from the gaps of the key
    space (or overwrite, which the update-class upsert semantics allow).
    """

    pool: np.ndarray
    mix: YcsbMix = field(default_factory=lambda: PAPER_DEFAULT)
    distribution: str = "uniform"
    key_space: int | None = None
    theta: float = 0.99
    value_bits: int = 31

    def __post_init__(self) -> None:
        self.pool = np.ascontiguousarray(self.pool, dtype=np.int64)
        if self.pool.size == 0:
            raise WorkloadError("key pool must be non-empty")
        if self.key_space is None:
            self.key_space = int(self.pool.max()) + 1
        kwargs = {"theta": self.theta} if self.distribution == "zipfian" else {}
        self._dist = make_distribution(self.distribution, self.pool, **kwargs)

    def generate(self, batch_size: int, rng: np.random.Generator) -> RequestBatch:
        """One buffered batch of ``batch_size`` requests in arrival order."""
        if batch_size < 1:
            raise WorkloadError("batch_size must be >= 1")
        m = self.mix
        u = rng.random(batch_size)
        edges = np.cumsum([m.query, m.update, m.insert, m.delete, m.range_])
        kinds = np.empty(batch_size, dtype=KIND_DTYPE)
        kinds[u < edges[0]] = OpKind.QUERY
        kinds[(u >= edges[0]) & (u < edges[1])] = OpKind.UPDATE
        kinds[(u >= edges[1]) & (u < edges[2])] = OpKind.INSERT
        kinds[(u >= edges[2]) & (u < edges[3])] = OpKind.DELETE
        kinds[u >= edges[3]] = OpKind.RANGE

        keys = self._dist.sample(batch_size, rng)
        insert_mask = kinds == OpKind.INSERT
        n_ins = int(insert_mask.sum())
        if n_ins:
            keys[insert_mask] = rng.integers(0, self.key_space, size=n_ins)

        values = rng.integers(1, 1 << self.value_bits, size=batch_size)
        values[(kinds != OpKind.UPDATE) & (kinds != OpKind.INSERT)] = 0

        ends = np.zeros(batch_size, dtype=np.int64)
        range_mask = kinds == OpKind.RANGE
        if np.any(range_mask):
            # a length-L range covers ~L pool keys: scale the span by the
            # average key gap so range results match the nominal length
            gap = max(1, self.key_space // self.pool.size)
            ends[range_mask] = keys[range_mask] + m.range_length * gap - 1
        return RequestBatch(
            kinds=kinds, keys=keys, values=values.astype(np.int64), range_ends=ends
        )

    def generate_epoch(
        self, n_batches: int, batch_size: int, rng: np.random.Generator
    ) -> list[RequestBatch]:
        """Several consecutive batches (multi-batch experiments)."""
        return [self.generate(batch_size, rng) for _ in range(n_batches)]


def build_key_pool(tree_size: int, rng: np.random.Generator, key_space_factor: int = 8):
    """Sample ``tree_size`` distinct keys from a key space ``factor``× larger.

    Mirrors the paper's setup of a 32-bit key space populated with 2^k
    records; returns (keys, values) ready for ``BPlusTree.build``.
    """
    if tree_size < 1:
        raise WorkloadError("tree_size must be >= 1")
    space = tree_size * key_space_factor
    keys = rng.choice(space, size=tree_size, replace=False).astype(np.int64)
    values = rng.integers(1, 1 << 31, size=tree_size).astype(np.int64)
    return np.sort(keys), values

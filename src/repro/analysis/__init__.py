"""Sanitizer suite: dynamic race detection, device-code lint, hotspots.

Three engines over the SIMT interpreter's perfect per-instruction
visibility (see DESIGN.md §8):

* :mod:`repro.analysis.races` — shadow-memory data-race detector
  (:class:`Sanitizer`), attached opt-in to a
  :class:`~repro.device.DeviceContext`;
* :mod:`repro.analysis.lint` — static AST lint of the device Op protocol
  (``python -m repro.analysis.lint``);
* :mod:`repro.analysis.hotspots` — per-address-class divergence and
  coalescing attribution (:class:`HotspotProfiler`).
"""

from .addrmap import AddressMap
from .hotspots import HotspotProfiler, HotspotReport, attach_hotspots
from .races import (
    AccessRecord,
    CompositeProbe,
    DeviceProbe,
    RaceReport,
    Sanitizer,
    attach_sanitizer,
)

__all__ = [
    "AccessRecord",
    "AddressMap",
    "CompositeProbe",
    "DeviceProbe",
    "Finding",
    "HotspotProfiler",
    "HotspotReport",
    "RaceReport",
    "Sanitizer",
    "attach_hotspots",
    "attach_sanitizer",
    "lint_file",
    "lint_paths",
    "lint_source",
]

#: lint exports resolve lazily so ``python -m repro.analysis.lint`` does
#: not import the module twice (once here, once as __main__)
_LINT_NAMES = ("Finding", "lint_file", "lint_paths", "lint_source")


def __getattr__(name: str):
    if name in _LINT_NAMES:
        from . import lint

        return getattr(lint, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

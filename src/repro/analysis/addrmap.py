"""Arena address classification shared by the sanitizer engines.

The race detector and the hotspot profiler both need to answer, for a raw
word address, "what *is* this word?" — a node header field, a key slot, an
STM metadata word, a standalone latch. An :class:`AddressMap` is told which
structures live in an arena (:meth:`watch_tree`, :meth:`watch_stm_region`,
:meth:`add_lock_word`) and then classifies and names addresses using the
same declarative :data:`~repro.btree.views.FIELDS` table the typed node
views are generated from, so reports speak layout language ("node 12
keys[3]") instead of raw offsets.

Classification kinds:

``lock``
    a synchronization word acquired/released via CAS/store — per-node latch
    words (``OFF_LOCK``), registered standalone latches (the SMO latch).
``version``
    a validation word (node ``OFF_VERSION``, STM version table): written to
    *signal* writers, read to *validate* — never a data race by protocol.
``stm_owner``
    an STM ownership-table word; CAS/store traffic here drives the lockset.
``data``
    everything else — the words the race detector actually checks.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..btree.layout import OFF_LEAF, OFF_LOCK, OFF_VERSION
from ..btree.views import FIELDS

#: FIELDS row by header offset (offsets are dense: 0 .. HEADER_WORDS - 1)
_FIELD_BY_OFFSET = {f.offset: f for f in FIELDS}


@dataclass(frozen=True)
class NodeRegion:
    """One tree's node block: address arithmetic + the arena for leaf bits."""

    base: int
    end: int
    stride: int
    node_words: int
    payload_off: int
    header_words: int
    arena: object  # MemoryArena; only ``.data`` is read (leaf flag)

    def locate(self, addr: int) -> tuple[int, int]:
        """``(node_id, offset)`` of an address inside this region."""
        rel = addr - self.base
        return rel // self.stride, rel % self.stride

    def is_leaf(self, node_id: int) -> bool:
        return int(self.arena.data[self.base + node_id * self.stride + OFF_LEAF]) == 1


@dataclass(frozen=True)
class StmTables:
    """One STM region's metadata ranges, mapped back to their data words."""

    owner_base: int
    version_base: int
    data_base: int
    nwords: int


class AddressMap:
    """Classify and describe raw arena addresses."""

    def __init__(self) -> None:
        self._nodes: list[NodeRegion] = []
        self._stm: list[StmTables] = []
        self._locks: dict[int, str] = {}

    # ------------------------------------------------------------------ #
    # registration
    # ------------------------------------------------------------------ #
    def watch_tree(self, tree) -> None:
        """Register a B+tree's node block (layout + max_nodes)."""
        lay = tree.layout
        self._nodes.append(
            NodeRegion(
                base=lay.base,
                end=lay.base + tree.max_nodes * lay.stride,
                stride=lay.stride,
                node_words=lay.node_words,
                payload_off=lay.payload_off,
                header_words=len(FIELDS),
                arena=tree.arena,
            )
        )

    def watch_stm_region(self, region) -> None:
        """Register an :class:`~repro.stm.StmRegion`'s metadata tables."""
        self._stm.append(
            StmTables(
                owner_base=region.owner_base,
                version_base=region.version_base,
                data_base=region.data_base,
                nwords=region.nwords,
            )
        )

    def add_lock_word(self, addr: int, name: str = "latch") -> None:
        """Register a standalone latch word (e.g. the SMO latch)."""
        self._locks[addr] = name

    # ------------------------------------------------------------------ #
    # classification
    # ------------------------------------------------------------------ #
    def classify(self, addr: int) -> tuple[str, int | None]:
        """``(kind, aux)`` for an address.

        ``kind`` ∈ {"lock", "version", "stm_owner", "data"}; for
        ``stm_owner`` the aux value is the *data* word the ownership entry
        guards.
        """
        if addr in self._locks:
            return "lock", None
        for t in self._stm:
            if t.owner_base <= addr < t.owner_base + t.nwords:
                return "stm_owner", t.data_base + (addr - t.owner_base)
            if t.version_base <= addr < t.version_base + t.nwords:
                return "version", None
        for r in self._nodes:
            if r.base <= addr < r.end:
                _, off = r.locate(addr)
                if off == OFF_LOCK:
                    return "lock", None
                if off == OFF_VERSION:
                    return "version", None
                return "data", None
        return "data", None

    # ------------------------------------------------------------------ #
    # naming
    # ------------------------------------------------------------------ #
    def describe(self, addr: int) -> str:
        """Human name for an address ("node 12 keys[3]", "stm owner(...)")."""
        if addr in self._locks:
            return self._locks[addr]
        for t in self._stm:
            if t.owner_base <= addr < t.owner_base + t.nwords:
                inner = self.describe(t.data_base + (addr - t.owner_base))
                return f"stm owner({inner})"
            if t.version_base <= addr < t.version_base + t.nwords:
                inner = self.describe(t.data_base + (addr - t.version_base))
                return f"stm version({inner})"
        for r in self._nodes:
            if r.base <= addr < r.end:
                node, off = r.locate(addr)
                if off < r.header_words:
                    return f"node {node} {_FIELD_BY_OFFSET[off].name}"
                if off < r.payload_off:
                    return f"node {node} keys[{off - r.header_words}]"
                if off < r.node_words:
                    slot = off - r.payload_off
                    part = "values" if r.is_leaf(node) else "children"
                    return f"node {node} {part}[{slot}]"
                return f"node {node} pad[{off}]"
        return f"word {addr}"

    def bucket(self, addr: int) -> str:
        """Coarse address class for hotspot aggregation."""
        if addr in self._locks:
            return "latch"
        for t in self._stm:
            if t.owner_base <= addr < t.owner_base + t.nwords:
                return "stm.owner"
            if t.version_base <= addr < t.version_base + t.nwords:
                return "stm.version"
        for r in self._nodes:
            if r.base <= addr < r.end:
                node, off = r.locate(addr)
                if off < r.header_words:
                    return f"node.{_FIELD_BY_OFFSET[off].name}"
                kind = "leaf" if r.is_leaf(node) else "inner"
                if off < r.payload_off:
                    return f"{kind}.keys"
                if off < r.node_words:
                    return f"{kind}.values" if kind == "leaf" else "inner.children"
                return "node.pad"
        return "other"

    def node_of(self, addr: int) -> int | None:
        """Node id owning ``addr`` when it lies in a watched node block."""
        for r in self._nodes:
            if r.base <= addr < r.end:
                return r.locate(addr)[0]
        return None

"""Divergence and coalescing hotspot attribution.

The simulator already *charges* divergence (extra issue slots when lanes
of a warp execute different op kinds) and uncoalesced memory traffic
(one transaction per 128-byte segment touched) — but only as launch-wide
totals in :class:`~repro.simt.counters.KernelCounters`. A
:class:`HotspotProfiler` is a :class:`~repro.analysis.races.DeviceProbe`
that re-derives both penalties per lockstep slot and attributes them to
*address classes* (leaf keys, inner children, latch words, STM metadata —
the buckets of :meth:`~repro.analysis.addrmap.AddressMap.bucket`), plus a
per-node heat count, answering "*where* does the divergence/transaction
budget go" rather than "how big is it".

Attribution model, per warp slot:

* every memory address observed in the slot counts one **access** for its
  bucket;
* the slot's loads (and separately stores) are grouped by 128-byte
  segment; each bucket is charged ``segments_touched - ideal_segments``
  **waste** transactions, where ``ideal`` is the fewest segments that
  could hold the bucket's distinct addresses — i.e. the coalescing
  shortfall attributable to that bucket's placement;
* a slot issuing ``k > 1`` distinct op kinds charges ``k - 1``
  **divergent slots** to every bucket it touched (divergence serializes
  the whole warp, so every participant pays it; overlaps across buckets
  are intended and documented).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .addrmap import AddressMap
from .races import DeviceProbe

#: op-kind tags for divergence grouping (mirrors Warp.step's bitmask)
_KIND_TAG = {
    "Load": "mem",
    "Store": "st",
    "AtomicCAS": "atomic",
    "AtomicAdd": "atomic",
    "AtomicExch": "atomic",
    "Alu": "alu",
    "Branch": "ctrl",
    "Mark": "mark",
}


@dataclass
class BucketStats:
    """Aggregated penalties for one address class."""

    accesses: int = 0
    transactions: int = 0
    waste: int = 0
    divergent_slots: int = 0

    @property
    def score(self) -> int:
        return self.waste + self.divergent_slots


@dataclass
class HotspotReport:
    """Ranked per-bucket penalties plus the hottest individual nodes."""

    buckets: dict[str, BucketStats]
    hot_nodes: list[tuple[int, int, str]]  # (node_id, accesses, name)
    slots: int

    def ranked(self) -> list[tuple[str, BucketStats]]:
        return sorted(
            self.buckets.items(), key=lambda kv: kv[1].score, reverse=True
        )

    def render(self) -> str:
        lines = [
            f"hotspots over {self.slots} warp slots "
            "(waste = uncoalesced transactions, div = serialized slots)",
            f"{'bucket':<16}{'accesses':>10}{'trans':>8}{'waste':>8}{'div':>8}",
        ]
        for name, b in self.ranked():
            lines.append(
                f"{name:<16}{b.accesses:>10}{b.transactions:>8}"
                f"{b.waste:>8}{b.divergent_slots:>8}"
            )
        if self.hot_nodes:
            lines.append("hottest nodes:")
            for node, count, name in self.hot_nodes:
                lines.append(f"  {name}: {count} accesses")
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "slots": self.slots,
            "buckets": {
                name: {
                    "accesses": b.accesses,
                    "transactions": b.transactions,
                    "waste": b.waste,
                    "divergent_slots": b.divergent_slots,
                }
                for name, b in self.ranked()
            },
            "hot_nodes": [
                {"node": node, "accesses": count, "name": name}
                for node, count, name in self.hot_nodes
            ],
        }


class HotspotProfiler(DeviceProbe):
    """Per-slot divergence/coalescing attributor (attach like a Sanitizer)."""

    def __init__(self, words_per_segment: int = 16, top_nodes: int = 5) -> None:
        self.map = AddressMap()
        self.words_per_segment = words_per_segment
        self.top_nodes = top_nodes
        self._buckets: dict[str, BucketStats] = {}
        self._node_heat: dict[int, int] = {}
        self._slots = 0
        # in-flight slot: op-kind tags seen + (kind is load?, addr) accesses
        self._tags: set = set()
        self._accs: list[tuple[bool, int]] = []
        self._pending = False

    def watch_tree(self, tree) -> None:
        self.map.watch_tree(tree)

    def watch_stm_region(self, region) -> None:
        self.map.watch_stm_region(region)

    def add_lock_word(self, addr: int, name: str = "latch") -> None:
        self.map.add_lock_word(addr, name)

    # -- probe hooks ----------------------------------------------------- #
    def begin_slot(self, warp_id: int) -> None:
        self._flush()
        self._pending = True
        self._slots += 1

    def end_launch(self, counters) -> None:
        self._flush()

    def observe(self, warp_id, lane, op, result, gen) -> None:
        tag = _KIND_TAG.get(type(op).__name__)
        if tag is None:  # Noop: predicated-off lane, free
            return
        self._tags.add(tag)
        if tag in ("mem", "st", "atomic"):
            self._accs.append((tag == "mem", op.addr))

    # -- aggregation ------------------------------------------------------ #
    def _bucket(self, name: str) -> BucketStats:
        b = self._buckets.get(name)
        if b is None:
            b = self._buckets[name] = BucketStats()
        return b

    def _flush(self) -> None:
        if not self._pending:
            return
        self._pending = False
        tags, accs = self._tags, self._accs
        self._tags = set()
        self._accs = []
        if not tags:
            return
        extra = len(tags) - 1
        touched: set[str] = set()
        # group addresses by (is_load, bucket) for coalescing attribution
        by_bucket: dict[tuple[bool, str], set[int]] = {}
        wps = self.words_per_segment
        for is_load, addr in accs:
            name = self.map.bucket(addr)
            touched.add(name)
            self._bucket(name).accesses += 1
            by_bucket.setdefault((is_load, name), set()).add(addr)
            node = self.map.node_of(addr)
            if node is not None:
                self._node_heat[node] = self._node_heat.get(node, 0) + 1
        for (_, name), addrs in by_bucket.items():
            segs = len({a // wps for a in addrs})
            ideal = (len(addrs) + wps - 1) // wps
            b = self._bucket(name)
            b.transactions += segs
            b.waste += segs - ideal
        if extra > 0:
            for name in touched or {"control"}:
                self._bucket(name).divergent_slots += extra

    def report(self) -> HotspotReport:
        self._flush()
        hot = sorted(
            self._node_heat.items(), key=lambda kv: kv[1], reverse=True
        )[: self.top_nodes]
        return HotspotReport(
            buckets=dict(self._buckets),
            hot_nodes=[
                (node, count, f"node {node}") for node, count in hot
            ],
            slots=self._slots,
        )


def attach_hotspots(system, top_nodes: int = 5) -> HotspotProfiler:
    """Attach a :class:`HotspotProfiler` to a constructed system (same
    registration rules as :func:`~repro.analysis.races.attach_sanitizer`)."""
    prof = HotspotProfiler(
        words_per_segment=system.devctx.arena.words_per_segment,
        top_nodes=top_nodes,
    )
    prof.watch_tree(system.tree)
    stm = getattr(system, "stm", None)
    if stm is not None:
        prof.watch_stm_region(stm.region)
    smo = getattr(system, "smo_lock_addr", None)
    if smo is not None:
        prof.add_lock_word(smo, "smo latch")
    system.devctx.attach_probe(prof)
    return prof

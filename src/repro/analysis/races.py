"""Shadow-memory data-race detector for the SIMT interpreter.

The pure-Python interpreter executes every device instruction one at a
time, which makes precise dynamic race detection cheap: a
:class:`Sanitizer` attached to a :class:`~repro.device.DeviceContext`
observes every executed :class:`~repro.simt.instructions.Op` (via the
probe hooks in :class:`~repro.simt.warp.Warp` /
:class:`~repro.simt.launcher.KernelLaunch`) and keeps, per arena word, a
shadow record of the last write and the reads since — who accessed it
(warp, lane), when (global slot sequence), and how (load / store /
atomic).

**Locksets.** Synchronization in this codebase is word-based, so the
detector derives each thread's lockset directly from the instruction
stream, with no annotations:

* a successful ``AtomicCAS(lock_word, FREE, ...)`` acquires
  ``("lock", lock_word)``; ``Store(lock_word, FREE)`` releases it — this
  covers both the per-node latches (:mod:`repro.locks.latch`) and the SMO
  latch;
* a successful ``AtomicCAS(owner_addr(w), FREEʼ, ...)`` on an STM
  ownership entry acquires ``("own", w)`` for the *data* word ``w``;
  ``Store(owner_addr(w), FREE)`` releases it.

An access to data word ``w`` carries a **guard set**: every ``("lock",
L)`` token currently held (Eraser-style — whichever latch the protocol
associates with ``w``, two conflicting accesses must share it) plus
``("own", w)`` when the thread owns exactly that word. A write is
*guarded* when its guard set is non-empty.

**Race rules** (within one kernel launch — launches are global barriers,
so cross-launch accesses are ordered and never race):

* **W/W** — two plain stores to the same data word from different threads
  whose guard sets are disjoint; a data-word atomic vs. an *unguarded*
  plain store is also W/W (the atomic is itself synchronized, so it only
  conflicts with writers that have no ordering at all).
* **R/W** — a read and a plain store to the same data word from different
  threads where the *write side* is unguarded. Guarded writes racing
  unguarded reads are *not* flagged: both the Lock GB-tree's validated
  readers and STM's invisible readers deliberately read racily and detect
  interference through version words — the seqlock exemption. A write
  with no synchronization at all has no such protocol, so reads against
  it are real races.

Synchronization words themselves (latch words, version words, STM
owner/version tables) are exempt from the data rules — racing on them is
their job.

Intra-warp conflicts — two lanes of the same warp touching one word in
the same lockstep slot — are flagged by the same rules and marked
``same_slot`` (the classic "lockstep threads still race through shared
memory" CUDA bug class).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .addrmap import AddressMap

#: lock/owner words encode "free" as 0 everywhere in this codebase
FREE = 0

READ = "R"
WRITE = "W"
ATOMIC = "A"


class DeviceProbe:
    """Base class for instruction-stream observers; all hooks are no-ops."""

    def begin_launch(self) -> None:  # pragma: no cover - trivial
        """A kernel launch starts (a global synchronization barrier)."""

    def end_launch(self, counters) -> None:  # pragma: no cover - trivial
        """The launch retired; ``counters`` is its KernelCounters."""

    def begin_slot(self, warp_id: int) -> None:  # pragma: no cover - trivial
        """A warp begins one lockstep slot."""

    def observe(self, warp_id, lane, op, result, gen) -> None:  # pragma: no cover
        """One lane executed ``op``; ``result`` is the value sent back to
        the program (loads/atomics), ``gen`` its generator (for naming)."""


class CompositeProbe(DeviceProbe):
    """Fan one probe slot out to several observers (sanitizer + profiler)."""

    def __init__(self, probes) -> None:
        self.probes = list(probes)

    def begin_launch(self) -> None:
        for p in self.probes:
            p.begin_launch()

    def end_launch(self, counters) -> None:
        for p in self.probes:
            p.end_launch(counters)

    def begin_slot(self, warp_id: int) -> None:
        for p in self.probes:
            p.begin_slot(warp_id)

    def observe(self, warp_id, lane, op, result, gen) -> None:
        for p in self.probes:
            p.observe(warp_id, lane, op, result, gen)


def _program_name(gen) -> str:
    """Thread-program name from its generator (qualname, trimmed)."""
    try:
        name = gen.gi_code.co_qualname
    except AttributeError:  # pragma: no cover - older interpreters
        name = gen.gi_code.co_name
    return name.replace(".<locals>.", ".")


@dataclass(frozen=True)
class AccessRecord:
    """One observed memory access to one word."""

    warp: int
    lane: int
    slot: int  # global slot sequence number (same slot = same lockstep step)
    kind: str  # READ / WRITE / ATOMIC
    op: str  # Op class name
    addr: int
    program: str
    guards: frozenset = frozenset()


@dataclass(frozen=True)
class RaceReport:
    """One detected unsynchronized conflicting pair."""

    kind: str  # "W/W" or "R/W"
    addr: int
    location: str  # AddressMap.describe(addr)
    first: AccessRecord
    second: AccessRecord

    @property
    def same_slot(self) -> bool:
        """Both accesses in one lockstep slot of one warp (intra-warp)."""
        return (
            self.first.warp == self.second.warp
            and self.first.slot == self.second.slot
        )

    def __str__(self) -> str:
        where = "same warp slot" if self.same_slot else "cross-warp"
        return (
            f"{self.kind} race on {self.location} (word {self.addr}, {where}): "
            f"{self.first.program} w{self.first.warp}/l{self.first.lane} "
            f"{self.first.op}@{self.first.slot} vs "
            f"{self.second.program} w{self.second.warp}/l{self.second.lane} "
            f"{self.second.op}@{self.second.slot}"
        )


@dataclass
class _WordState:
    """Shadow state of one data word within the current launch epoch."""

    last_write: AccessRecord | None = None
    reads: list = field(default_factory=list)


#: cap on reads retained per word per epoch (enough to pair every racing
#: writer with *a* reader without letting read-mostly words hoard records)
_MAX_READS_PER_WORD = 16


class Sanitizer(DeviceProbe):
    """Dynamic race detector; attach via :func:`attach_sanitizer` or
    ``devctx.attach_probe(Sanitizer(devctx.arena))``.

    When built with an arena, one shadow word per device word is reserved
    via :meth:`~repro.memory.MemoryArena.alloc_system` (outside the device
    heap, excluded from all counted statistics) holding the launch epoch
    that last touched the word — giving O(1) lazy invalidation of shadow
    records at launch boundaries instead of clearing the record table on
    every launch.
    """

    def __init__(self, arena=None, max_reports: int = 100) -> None:
        self.map = AddressMap()
        self.reports: list[RaceReport] = []
        self.max_reports = max_reports
        self._arena = arena
        self._shadow_base = arena.alloc_system(arena.capacity) if arena else None
        self._shadow = None
        self._words: dict[int, _WordState] = {}
        self._locks: dict[tuple[int, int], set] = {}
        self._epoch = 0
        self._seq = 0
        self._seen: set = set()

    # -- registration (delegates) --------------------------------------- #
    def watch_tree(self, tree) -> None:
        self.map.watch_tree(tree)

    def watch_stm_region(self, region) -> None:
        self.map.watch_stm_region(region)

    def add_lock_word(self, addr: int, name: str = "latch") -> None:
        self.map.add_lock_word(addr, name)

    def describe(self, addr: int) -> str:
        return self.map.describe(addr)

    # -- probe hooks ----------------------------------------------------- #
    def begin_launch(self) -> None:
        self._epoch += 1
        self._locks.clear()
        if self._shadow_base is not None:
            # re-slice: a later alloc_system call reallocates the backing
            # array, which would leave a cached view stale
            base = self._shadow_base
            self._shadow = self._arena.data[base : base + self._arena.capacity]
        else:
            self._words.clear()

    def begin_slot(self, warp_id: int) -> None:
        self._seq += 1

    def observe(self, warp_id, lane, op, result, gen) -> None:
        opname = type(op).__name__
        if opname == "Load":
            kind = READ
        elif opname == "Store":
            kind = WRITE
        elif opname in ("AtomicCAS", "AtomicAdd", "AtomicExch"):
            kind = ATOMIC
        else:
            return
        addr = op.addr
        cls, aux = self.map.classify(addr)
        tid = (warp_id, lane)
        if cls == "lock":
            self._sync_event(tid, ("lock", addr), opname, op, result)
            return
        if cls == "stm_owner":
            self._sync_event(tid, ("own", aux), opname, op, result)
            return
        if cls == "version":
            return
        self._check_data(tid, kind, opname, addr, gen)

    # -- lockset maintenance --------------------------------------------- #
    def _sync_event(self, tid, token, opname, op, result) -> None:
        held = self._locks.get(tid)
        if opname == "AtomicCAS":
            if op.expected == FREE and result == FREE:
                if held is None:
                    held = self._locks[tid] = set()
                held.add(token)
        elif opname == "Store":
            if op.value == FREE and held:
                held.discard(token)
        elif opname == "AtomicExch":
            if op.value == FREE:
                if held:
                    held.discard(token)
            elif result == FREE:
                if held is None:
                    held = self._locks[tid] = set()
                held.add(token)
        # plain loads of sync words (d_is_locked, owner peeks) are protocol
        # traffic, not data accesses — nothing to do

    def _guards(self, tid, addr) -> frozenset:
        held = self._locks.get(tid)
        if not held:
            return frozenset()
        own = ("own", addr)
        return frozenset(
            t for t in held if t[0] == "lock" or t == own
        )

    # -- the data-race engine -------------------------------------------- #
    def _check_data(self, tid, kind, opname, addr, gen) -> None:
        shadow = self._shadow
        state = self._words.get(addr)
        if shadow is not None:
            if int(shadow[addr]) != self._epoch:
                shadow[addr] = self._epoch
                state = None
        if state is None:
            state = self._words[addr] = _WordState()
        rec = AccessRecord(
            warp=tid[0],
            lane=tid[1],
            slot=self._seq,
            kind=kind,
            op=opname,
            addr=addr,
            program=_program_name(gen),
            guards=self._guards(tid, addr),
        )
        w = state.last_write
        if kind == READ:
            if (
                w is not None
                and (w.warp, w.lane) != tid
                and w.kind == WRITE
                and not w.guards
            ):
                self._report("R/W", w, rec)
            if len(state.reads) < _MAX_READS_PER_WORD:
                state.reads.append(rec)
            return
        # WRITE or ATOMIC
        if w is not None and (w.warp, w.lane) != tid:
            if kind == WRITE and w.kind == WRITE:
                if not (rec.guards & w.guards):
                    self._report("W/W", w, rec)
            elif WRITE in (kind, w.kind):  # one plain store, one atomic
                plain = rec if kind == WRITE else w
                if not plain.guards:
                    self._report("W/W", w, rec)
        if kind == WRITE and not rec.guards:
            for r in state.reads:
                if (r.warp, r.lane) != tid:
                    self._report("R/W", rec, r)
                    break
        state.last_write = rec
        state.reads.clear()

    def _report(self, kind, first, second) -> None:
        if len(self.reports) >= self.max_reports:
            return
        key = (kind, first.addr, first.program, second.program)
        if key in self._seen:
            return
        self._seen.add(key)
        self.reports.append(
            RaceReport(
                kind=kind,
                addr=first.addr,
                location=self.map.describe(first.addr),
                first=first,
                second=second,
            )
        )

    # -- reporting -------------------------------------------------------- #
    @property
    def race_count(self) -> int:
        return len(self.reports)

    def render(self) -> str:
        if not self.reports:
            return "no races detected"
        lines = [f"{len(self.reports)} race(s) detected:"]
        lines += [f"  {r}" for r in self.reports]
        return "\n".join(lines)


def attach_sanitizer(system, max_reports: int = 100) -> Sanitizer:
    """Build a :class:`Sanitizer` for a constructed system and attach it.

    Registers whatever synchronization structure the system has — the
    tree's node block always; STM metadata tables and the SMO latch when
    present (``system.stm`` / ``system.smo_lock_addr``) — and installs the
    probe on the system's :class:`~repro.device.DeviceContext` so every
    subsequent SIMT launch is observed.
    """
    san = Sanitizer(system.devctx.arena, max_reports=max_reports)
    san.watch_tree(system.tree)
    stm = getattr(system, "stm", None)
    if stm is not None:
        san.watch_stm_region(stm.region)
    smo = getattr(system, "smo_lock_addr", None)
    if smo is not None:
        san.add_lock_word(smo, "smo latch")
    system.devctx.attach_probe(san)
    return san

"""Static lint for device thread programs (the Op protocol).

Device code in this repo is Python generators that ``yield``
:class:`~repro.simt.instructions.Op` instances; the interpreter executes
the op and sends results back. The protocol has rules the runtime cannot
cheaply enforce, so this AST pass does — over every *device generator* in
a source tree (a function is one when it is a generator and either its
name starts with ``d_`` or it directly yields a known Op constructor):

====  =================================================================
rule  meaning
====  =================================================================
R1    **op-protocol** — every direct ``yield`` must yield a constructed
      Op (``yield Load(...)``, ``yield Branch()``, …). A bare ``yield``
      or a non-Op value would crash — or worse, silently skew — the
      executor. (``yield from`` delegates to another device generator
      and is always fine.)
R2    **unused-result** — a ``yield Load(...)`` or ``yield
      AtomicCAS(...)`` whose result is discarded (statement position) is
      dead traffic: the executor charges a transaction for a value the
      program never sees. ``AtomicAdd``/``AtomicExch`` are exempt — they
      are legitimately used for their side effect (version bumps).
R3    **host-call** — counted arena accessors (``arena.read``,
      ``arena.write``, ``arena.atomic_*``, gathers/scatters) must not be
      called from device code: they mutate memory *and* statistics
      outside the instruction stream, bypassing the SIMT cost model.
      (Host-plane idioms — reading ``arena.data`` to charge equivalent
      Stores, calling ``tree.upsert`` under a held latch — stay legal:
      they are the documented "instantaneous host mutation" device.)
R4    **missing-branch** — a value obtained from a direct data yield
      (``Load``/atomic) that feeds an ``if``/``while``/``for`` test must
      have a ``yield Branch()`` between the yield and the test:
      data-dependent control flow costs a control instruction and is
      where divergence charges come from. Values from ``yield from`` are
      exempt (the callee charges its own branches), and a delegation
      between the yield and the test also satisfies the rule.
====  =================================================================

Run as ``python -m repro.analysis.lint [paths...]`` (defaults to the
installed ``repro`` package); exits non-zero when findings exist.
"""

from __future__ import annotations

import ast
import sys
from dataclasses import dataclass
from pathlib import Path

#: Op constructors a device program may yield (repro.simt.instructions)
OP_NAMES = frozenset(
    {"Load", "Store", "AtomicCAS", "AtomicAdd", "AtomicExch",
     "Alu", "Branch", "Mark", "Noop", "WaitGE"}
)
#: module-level op singletons device code may yield directly (hot paths
#: avoid allocating the op per slot; see simt/instructions.py)
OP_SINGLETONS = {"BRANCH": "Branch"}
#: ops whose yielded result carries data (taint sources for R4)
DATA_OPS = frozenset({"Load", "AtomicCAS", "AtomicAdd", "AtomicExch"})
#: ops whose result must be consumed (R2)
CONSUME_OPS = frozenset({"Load", "AtomicCAS"})
#: counted MemoryArena accessors forbidden in device code (R3)
COUNTED_ACCESSORS = frozenset(
    {"read", "write", "atomic_cas", "atomic_add", "atomic_exch",
     "read_gather", "write_scatter"}
)

_NESTED_SCOPES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.ClassDef)


@dataclass(frozen=True)
class Finding:
    """One lint violation."""

    path: str
    line: int
    rule: str
    func: str
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.func}: {self.message}"


# --------------------------------------------------------------------- #
# AST helpers
# --------------------------------------------------------------------- #
def _walk_own(node: ast.AST):
    """Walk a function's own nodes, not descending into nested scopes."""
    stack = list(ast.iter_child_nodes(node))
    while stack:
        child = stack.pop()
        yield child
        if not isinstance(child, _NESTED_SCOPES):
            stack.extend(ast.iter_child_nodes(child))


def _yield_op_name(node: ast.Yield) -> str | None:
    """Op name yielded by ``yield Call(...)`` or an op singleton, else None.

    Hot device code may yield a shared immutable instance (``yield BRANCH``)
    instead of constructing the op per slot; the singleton names map to
    their op class here.
    """
    v = node.value
    if isinstance(v, ast.Call) and isinstance(v.func, ast.Name):
        return v.func.id
    if isinstance(v, ast.Name):
        return OP_SINGLETONS.get(v.id)
    return None


def _own_yields(fn: ast.AST) -> tuple[list[ast.Yield], list[ast.YieldFrom]]:
    ys, yfs = [], []
    for n in _walk_own(fn):
        if isinstance(n, ast.Yield):
            ys.append(n)
        elif isinstance(n, ast.YieldFrom):
            yfs.append(n)
    return ys, yfs


def _is_device_function(fn: ast.FunctionDef) -> bool:
    ys, yfs = _own_yields(fn)
    if not ys and not yfs:
        return False  # not a generator
    if fn.name.startswith("d_"):
        return True
    return any(_yield_op_name(y) in OP_NAMES for y in ys)


def _names_in(node: ast.AST) -> set[str]:
    return {n.id for n in ast.walk(node) if isinstance(n, ast.Name)}


def _target_names(target: ast.AST) -> list[str]:
    """Plain Name targets of an assignment (tuples unpacked)."""
    if isinstance(target, ast.Name):
        return [target.id]
    if isinstance(target, (ast.Tuple, ast.List)):
        out: list[str] = []
        for elt in target.elts:
            out.extend(_target_names(elt))
        return out
    return []


# --------------------------------------------------------------------- #
# per-function lint
# --------------------------------------------------------------------- #
class _FunctionLinter:
    def __init__(self, fn: ast.FunctionDef, path: str, findings: list[Finding]):
        self.fn = fn
        self.path = path
        self.findings = findings
        #: tainted name -> source line of its originating data yield
        self.taint: dict[str, int] = {}
        #: lines holding a yield Branch() or a yield-from delegation
        self.branch_lines: list[int] = []

    def emit(self, line: int, rule: str, message: str) -> None:
        self.findings.append(
            Finding(self.path, line, rule, self.fn.name, message)
        )

    # -- R1 / R2 / R3 (structural, order-independent) -------------------- #
    def check_structure(self) -> None:
        stmt_yields = {
            id(s.value)
            for s in _walk_own(self.fn)
            if isinstance(s, ast.Expr) and isinstance(s.value, ast.Yield)
        }
        ys, _ = _own_yields(self.fn)
        for y in ys:
            name = _yield_op_name(y)
            if name not in OP_NAMES:
                got = "bare yield" if y.value is None else ast.unparse(y.value)
                self.emit(
                    y.lineno, "R1-op-protocol",
                    f"device code must yield an Op, got: {got}",
                )
            elif name in CONSUME_OPS and id(y) in stmt_yields:
                self.emit(
                    y.lineno, "R2-unused-result",
                    f"result of yield {name}(...) is discarded",
                )
        for n in _walk_own(self.fn):
            if (
                isinstance(n, ast.Call)
                and isinstance(n.func, ast.Attribute)
                and n.func.attr in COUNTED_ACCESSORS
                and "arena" in ast.unparse(n.func.value)
            ):
                self.emit(
                    n.lineno, "R3-host-call",
                    f"counted accessor {ast.unparse(n.func)}() bypasses "
                    "the Op stream in device code",
                )

    # -- R4 (linear taint scan) ------------------------------------------ #
    def check_branches(self) -> None:
        self._scan(self.fn.body)

    def _note_value_yields(self, value: ast.AST) -> tuple[bool, bool]:
        """Record Branch/delegation lines inside ``value``; return
        ``(has_data_yield, has_yield_from)``."""
        has_data = has_yf = False
        for n in ast.walk(value):
            if isinstance(n, _NESTED_SCOPES):
                continue
            if isinstance(n, ast.Yield):
                name = _yield_op_name(n)
                if name == "Branch":
                    self.branch_lines.append(n.lineno)
                elif name in DATA_OPS:
                    has_data = True
            elif isinstance(n, ast.YieldFrom):
                self.branch_lines.append(n.lineno)
                has_yf = True
        return has_data, has_yf

    def _check_test(self, test: ast.AST, line: int) -> None:
        for name in _names_in(test):
            origin = self.taint.get(name)
            if origin is None:
                continue
            if not any(origin < b <= line for b in self.branch_lines):
                self.emit(
                    line, "R4-missing-branch",
                    f"'{name}' (from a data yield at line {origin}) drives "
                    "control flow without an intervening yield Branch()",
                )

    def _assign(self, targets: list[ast.AST], value: ast.AST, line: int) -> None:
        has_data, has_yf = self._note_value_yields(value)
        names: list[str] = []
        for t in targets:
            names.extend(_target_names(t))
        if has_data and not has_yf:
            for n in names:
                self.taint[n] = line
            return
        if has_yf:
            for n in names:
                self.taint.pop(n, None)
            return
        # plain assignment: propagate the earliest tainted origin, if any
        used = _names_in(value) & self.taint.keys()
        if used:
            origin = min(self.taint[n] for n in used)
            # already satisfied by a Branch between origin and here? then
            # the derived value is clean
            if any(origin < b <= line for b in self.branch_lines):
                for n in names:
                    self.taint.pop(n, None)
            else:
                for n in names:
                    self.taint[n] = origin
        else:
            for n in names:
                self.taint.pop(n, None)

    def _scan(self, stmts: list[ast.stmt]) -> None:
        for stmt in stmts:
            if isinstance(stmt, _NESTED_SCOPES):
                continue
            if isinstance(stmt, ast.Expr):
                self._note_value_yields(stmt.value)
            elif isinstance(stmt, ast.Assign):
                self._assign(stmt.targets, stmt.value, stmt.lineno)
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                self._assign([stmt.target], stmt.value, stmt.lineno)
            elif isinstance(stmt, ast.AugAssign):
                # x += f(...): taint sticks to x; new data yields re-taint
                has_data, _ = self._note_value_yields(stmt.value)
                if has_data:
                    for n in _target_names(stmt.target):
                        self.taint[n] = stmt.lineno
            elif isinstance(stmt, ast.If):
                self._check_test(stmt.test, stmt.lineno)
            elif isinstance(stmt, ast.While):
                self._check_test(stmt.test, stmt.lineno)
            elif isinstance(stmt, ast.For):
                self._check_test(stmt.iter, stmt.lineno)
            elif isinstance(stmt, (ast.Return, ast.Raise, ast.Assert)):
                for n in ast.walk(stmt):
                    if isinstance(n, ast.YieldFrom):
                        self.branch_lines.append(n.lineno)
            # recurse into compound bodies in source order
            for attr in ("body", "orelse", "finalbody"):
                inner = getattr(stmt, attr, None)
                if inner:
                    self._scan(inner)
            for handler in getattr(stmt, "handlers", []) or []:
                self._scan(handler.body)


# --------------------------------------------------------------------- #
# entry points
# --------------------------------------------------------------------- #
def lint_source(source: str, path: str = "<string>") -> list[Finding]:
    """Lint one module's source text."""
    findings: list[Finding] = []
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        findings.append(
            Finding(path, exc.lineno or 0, "R0-syntax", "<module>", str(exc))
        )
        return findings
    for node in ast.walk(tree):
        if isinstance(node, ast.FunctionDef) and _is_device_function(node):
            fl = _FunctionLinter(node, path, findings)
            fl.check_structure()
            fl.check_branches()
    findings.sort(key=lambda f: (f.path, f.line))
    return findings


def lint_file(path: str | Path) -> list[Finding]:
    p = Path(path)
    return lint_source(p.read_text(encoding="utf-8"), str(p))


def lint_paths(paths) -> list[Finding]:
    """Lint files and/or directory trees (``*.py``, sorted, recursively)."""
    findings: list[Finding] = []
    for path in paths:
        p = Path(path)
        files = sorted(p.rglob("*.py")) if p.is_dir() else [p]
        for f in files:
            findings.extend(lint_file(f))
    return findings


def default_target() -> Path:
    """The installed ``repro`` package tree."""
    return Path(__file__).resolve().parents[1]


def main(argv: list[str] | None = None) -> int:
    args = list(sys.argv[1:] if argv is None else argv)
    targets = args or [default_target()]
    findings = lint_paths(targets)
    for f in findings:
        print(f)
    roots = ", ".join(str(t) for t in targets)
    print(f"device-code lint: {len(findings)} finding(s) in {roots}")
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())

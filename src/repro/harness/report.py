"""Figure/table rendering: paper-vs-measured reports."""

from __future__ import annotations

import json
from dataclasses import dataclass, field


@dataclass
class FigureResult:
    """One reproduced figure: a labelled table plus paper-reference notes."""

    figure: str
    title: str
    columns: list[str]
    rows: list[list] = field(default_factory=list)
    paper_notes: list[str] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add_row(self, label: str, *values) -> None:
        self.rows.append([label, *values])

    def value(self, label: str, column: str) -> float:
        try:
            col = self.columns.index(column) + 1
        except ValueError as exc:
            raise KeyError(f"unknown column {column!r}") from exc
        for row in self.rows:
            if row[0] == label:
                return float(row[col])
        raise KeyError(f"unknown row {label!r}")

    def ratio(self, label_a: str, label_b: str, column: str) -> float:
        """rows[a][col] / rows[b][col] — speedups and normalizations."""
        denom = self.value(label_b, column)
        return self.value(label_a, column) / denom if denom else float("inf")

    def to_dict(self) -> dict:
        return {
            "figure": self.figure,
            "title": self.title,
            "columns": self.columns,
            "rows": self.rows,
            "paper_notes": self.paper_notes,
            "notes": self.notes,
        }

    def to_json(self, **kwargs) -> str:
        """Machine-readable form of the table (numpy scalars coerced)."""
        kwargs.setdefault("default", float)
        return json.dumps(self.to_dict(), **kwargs)

    def render(self, width: int = 30) -> str:
        lines = [f"=== {self.figure}: {self.title} ==="]
        col_w = max(16, max((len(c) for c in self.columns), default=0) + 2)
        header = f"{'':<{width}}" + "".join(f"{c:>{col_w}}" for c in self.columns)
        lines.append(header)
        for row in self.rows:
            cells = []
            for v in row[1:]:
                if isinstance(v, float):
                    cells.append(f"{v:>{col_w}.3f}")
                else:
                    cells.append(f"{v!s:>{col_w}}")
            lines.append(f"{row[0]:<{width}}" + "".join(cells))
        if self.paper_notes:
            lines.append("-- paper reference --")
            lines.extend(f"  {n}" for n in self.paper_notes)
        if self.notes:
            lines.append("-- notes --")
            lines.extend(f"  {n}" for n in self.notes)
        return "\n".join(lines)

"""Ablation studies beyond the paper's Fig. 11/12: the design knobs
DESIGN.md §6 calls out, swept individually over identical workloads.

These are *extension* experiments — the paper fixes these knobs (retry
threshold, iteration depth, RF decision, kernel partition); the sweeps show
why its choices are sensible.
"""

from __future__ import annotations

from ..config import EireneConfig
from .experiment import ExperimentConfig, run_system
from .report import FigureResult


def ablate_retry_threshold(
    cfg: ExperimentConfig | None = None,
    thresholds: tuple[int, ...] = (0, 1, 3, 8),
) -> FigureResult:
    """§4.2 knob: retries of unprotected inner traversal before STM kicks in.

    Threshold 0 means every traversal is STM-protected (pessimistic);
    large thresholds keep traversal optimistic under churn.
    """
    cfg = cfg or ExperimentConfig(engine="simt", batch_size=2**11, tree_size=2**13)
    fig = FigureResult(
        figure="Ablation A",
        title="Eirene: stm_retry_threshold sweep (Mreq/s, conflicts/req)",
        columns=["Mreq/s", "conflicts_per_req", "mem_per_req"],
    )
    for t in thresholds:
        run = run_system(
            "eirene", cfg, eirene_config=EireneConfig(stm_retry_threshold=t)
        )
        fig.add_row(
            f"threshold={t}",
            run.outcome.throughput.mops,
            run.outcome.conflicts_per_request,
            run.outcome.mem_inst_per_request,
        )
    fig.paper_notes = [
        "paper fixes the threshold (Algorithm 1); the sweep shows the "
        "optimistic inner traversal is essentially free at low contention",
    ]
    return fig


def ablate_iteration_depth(
    cfg: ExperimentConfig | None = None,
    depths: tuple[int, ...] = (1, 2, 4, 8),
) -> FigureResult:
    """§5 knob: request groups per iteration warp (locality vs parallelism)."""
    cfg = cfg or ExperimentConfig(batch_size=2**13, tree_size=2**14)
    fig = FigureResult(
        figure="Ablation B",
        title="Eirene: rgs_per_iteration_warp sweep",
        columns=["Mreq/s", "traversal_steps"],
    )
    for d in depths:
        run = run_system(
            "eirene", cfg, eirene_config=EireneConfig(rgs_per_iteration_warp=d)
        )
        fig.add_row(
            f"depth={d}", run.outcome.throughput.mops, run.outcome.traversal_steps
        )
    fig.paper_notes = [
        "paper §5: larger iteration depth increases locality but sacrifices "
        "parallelism; RGs are distributed over SMs before grouping, so the "
        "depth only matters once every SM is busy",
    ]
    return fig


def ablate_rf_decision(cfg: ExperimentConfig | None = None) -> FigureResult:
    """§5 knob: RF-guided vertical/horizontal choice vs always-horizontal.

    Run on a *sparse* batch, where blind horizontal walking is the
    pathological case the RF field exists to prevent.
    """
    cfg = cfg or ExperimentConfig(batch_size=2**10, tree_size=2**15)
    fig = FigureResult(
        figure="Ablation C",
        title="Eirene: RF decision on/off (sparse batch: walks are long)",
        columns=["Mreq/s", "traversal_steps"],
    )
    for label, rf in (("RF decision on", True), ("always horizontal", False)):
        run = run_system(
            "eirene", cfg, eirene_config=EireneConfig(enable_rf_decision=rf)
        )
        fig.add_row(label, run.outcome.throughput.mops, run.outcome.traversal_steps)
    fig.paper_notes = [
        "paper §5: the RF field bounds horizontal traversal to walks no "
        "longer than the tree height; without it, sparse batches walk the "
        "leaf chain across RG gaps far wider than the height",
    ]
    return fig


def ablate_kernel_partition(cfg: ExperimentConfig | None = None) -> FigureResult:
    """§4.2 knob: split query/update kernels vs one unified kernel.

    ``enable_kernel_partition=False`` selects the ``unified_kernel`` pass
    (see :func:`repro.core.pipeline.eirene_pass_plan`): queries share the
    launch with writers, so they lose the NTG search and must read their
    leaf under STM protection, exposed to writer aborts. The sweep shows
    why the paper runs queries in their own unsynchronized kernel.
    """
    cfg = cfg or ExperimentConfig()
    fig = FigureResult(
        figure="Ablation E",
        title="Eirene: kernel partition on/off (unified queries pay STM reads)",
        columns=["Mreq/s", "conflicts_per_req", "mem_per_req"],
    )
    for label, name in (
        ("partitioned kernels", "eirene"),
        ("unified kernel", "eirene-no-partition"),
    ):
        run = run_system(name, cfg)
        fig.add_row(
            label,
            run.outcome.throughput.mops,
            run.outcome.conflicts_per_request,
            run.outcome.mem_inst_per_request,
        )
    fig.paper_notes = [
        "paper §4.2: partition exists so the query kernel runs with no "
        "synchronization at all; merging the kernels forces protection "
        "(and reader aborts) back onto the read path",
    ]
    return fig


def ablate_skew(
    cfg: ExperimentConfig | None = None,
    thetas: tuple[float, ...] = (0.0, 0.5, 0.9, 0.99),
) -> FigureResult:
    """Extension: sensitivity to key skew (YCSB zipfian theta).

    Combining's win grows with skew: hot keys collapse into single issued
    requests, while the baselines' same-key conflicts explode.
    """
    cfg = cfg or ExperimentConfig(engine="simt", batch_size=2**11, tree_size=2**13)
    fig = FigureResult(
        figure="Ablation D",
        title="skew sweep: conflicts/request and combined share vs zipfian theta",
        columns=["eirene_conf", "stm_conf", "combined_frac"],
    )
    for theta in thetas:
        eirene = _run_with_theta("eirene", cfg, theta)
        stm = _run_with_theta("stm", cfg, theta)
        combined = eirene.outcome.extras.get("n_combined", 0) / max(
            eirene.outcome.n_requests, 1
        )
        fig.add_row(
            f"theta={theta}",
            eirene.outcome.conflicts_per_request,
            stm.outcome.conflicts_per_request,
            combined,
        )
    fig.paper_notes = [
        "extension experiment (the paper evaluates uniform keys only): "
        "combining eliminates the same-key conflicts that grow with skew",
    ]
    return fig


def _run_with_theta(system: str, cfg: ExperimentConfig, theta: float):
    """run_system with a zipfian theta override."""
    import numpy as np

    from ..config import DeviceConfig, TreeConfig
    from ..factory import make_system
    from ..baselines.base import merge_outcomes
    from ..workloads import YcsbWorkload, build_key_pool
    from .experiment import SYSTEM_LABELS, SystemRun

    rng = np.random.default_rng(cfg.seed)
    keys, values = build_key_pool(cfg.tree_size, rng)
    sys_ = make_system(
        system, keys, values,
        tree_config=TreeConfig(fanout=cfg.fanout),
        device=DeviceConfig(num_sms=cfg.num_sms),
    )
    if theta > 0.0:
        wl = YcsbWorkload(pool=keys, mix=cfg.mix, distribution="zipfian", theta=theta)
    else:
        wl = YcsbWorkload(pool=keys, mix=cfg.mix, distribution="uniform")
    outcomes = []
    avgs = []
    for _ in range(cfg.n_batches):
        batch = wl.generate(cfg.batch_size, rng)
        out = sys_.process_batch(batch, engine=cfg.engine)
        outcomes.append(out)
        avgs.append(out.seconds / batch.n)
    merged = merge_outcomes(outcomes)
    merged.extras = outcomes[-1].extras
    return SystemRun(
        system=system,
        label=SYSTEM_LABELS.get(system, system),
        outcome=merged,
        batch_avg_response_s=avgs,
    )

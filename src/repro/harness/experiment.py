"""Experiment runner: build fresh systems, stream batches, merge outcomes.

Scaling note (see DESIGN.md §1): the paper runs 1M-request batches against
2^23–2^26-key trees on a 108-SM A100. This reproduction scales every axis
together — default 2^13-request batches against 2^13–2^16-key trees on an
8-SM device — preserving the ratios that drive the effects (requests per
leaf, request groups per SM, update fraction). Paper-scale absolute numbers
are therefore not comparable; speedups and shapes are.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from ..baselines.base import BatchOutcome, System, merge_outcomes
from ..config import DeviceConfig, EireneConfig, TreeConfig
from ..factory import EIRENE_VARIANTS, make_system
from ..lincheck import SequentialReference, check_linearizable
from ..workloads import PAPER_DEFAULT, YcsbMix, YcsbWorkload, build_key_pool

#: systems of the paper's evaluation, in figure order
SYSTEMS = ("nocc", "stm", "lock", "eirene")
SYSTEM_LABELS = {
    "nocc": "GB-tree w/o concurrent control",
    "stm": "STM GB-tree",
    "lock": "Lock GB-tree",
    "eirene": "Eirene",
    "eirene+combining": "+ Combining",
    "eirene-no-locality": "Eirene (no locality)",
    "eirene-no-rf": "Eirene (no RF decision)",
    "eirene-no-ntg": "Eirene (no NTG search)",
    "eirene-no-partition": "Eirene (unified kernel)",
}


@dataclass(frozen=True)
class ExperimentConfig:
    """One experiment's knobs (paper §8.1 defaults, scaled)."""

    tree_size: int = 2**14
    batch_size: int = 2**13
    n_batches: int = 3
    fanout: int = 32
    num_sms: int = 8
    mix: YcsbMix = field(default_factory=lambda: PAPER_DEFAULT)
    distribution: str = "uniform"
    engine: str = "vector"
    seed: int = 7
    fill_factor: float = 0.7
    check_linearizability: bool = False

    def with_(self, **kwargs) -> "ExperimentConfig":
        return replace(self, **kwargs)

    @property
    def device(self) -> DeviceConfig:
        return DeviceConfig(num_sms=self.num_sms)

    @property
    def tree_config(self) -> TreeConfig:
        return TreeConfig(fanout=self.fanout)


@dataclass
class SystemRun:
    """Merged measurement of one system over an experiment's batches."""

    system: str
    label: str
    outcome: BatchOutcome
    #: per-batch average response times (across-run QoS variance source)
    batch_avg_response_s: list[float]
    linearizable: bool | None = None

    @property
    def qos_variance(self) -> float:
        """The paper's QoS metric: worst deviation of a run's average
        response time from the mean of all runs."""
        a = np.asarray(self.batch_avg_response_s)
        if a.size == 0 or a.mean() <= 0:
            return 0.0
        m = a.mean()
        return float(max((a.max() - m) / m, (m - a.min()) / m))

    @property
    def per_request_variance(self) -> float:
        return self.outcome.response_stats().variance_fraction


def run_system(
    system: str,
    cfg: ExperimentConfig,
    eirene_config: EireneConfig | None = None,
) -> SystemRun:
    """Build a fresh tree for ``system`` and stream the experiment at it.

    ``system`` may be any Eirene variant name from
    :data:`repro.factory.EIRENE_VARIANTS` — the factory resolves it to the
    pass selection; an explicit ``eirene_config`` overrides the variant's.
    """
    rng = np.random.default_rng(cfg.seed)
    keys, values = build_key_pool(cfg.tree_size, rng)
    kwargs = {}
    name = system
    if system.startswith("eirene"):
        if eirene_config is not None:
            kwargs["config"] = eirene_config
        if name not in EIRENE_VARIANTS:
            name = "eirene"
    sys_ = make_system(
        name, keys, values,
        tree_config=cfg.tree_config,
        device=cfg.device,
        fill_factor=cfg.fill_factor,
        **kwargs,
    )
    wl = YcsbWorkload(pool=keys, mix=cfg.mix, distribution=cfg.distribution)
    ref = SequentialReference(keys, values) if cfg.check_linearizability else None

    outcomes: list[BatchOutcome] = []
    batch_avgs: list[float] = []
    linearizable: bool | None = None
    for _ in range(cfg.n_batches):
        batch = wl.generate(cfg.batch_size, rng)
        expected = ref.execute(batch) if ref is not None else None
        out = sys_.process_batch(batch, engine=cfg.engine)
        outcomes.append(out)
        batch_avgs.append(out.seconds / batch.n)
        if expected is not None:
            rep = check_linearizable(batch, out.results, expected)
            ok = rep.ok
            linearizable = ok if linearizable is None else (linearizable and ok)
    sys_.tree.validate()
    return SystemRun(
        system=system,
        label=SYSTEM_LABELS.get(system, system),
        outcome=merge_outcomes(outcomes),
        batch_avg_response_s=batch_avgs,
        linearizable=linearizable,
    )


def run_all(
    systems: tuple[str, ...],
    cfg: ExperimentConfig,
    eirene_configs: dict[str, EireneConfig] | None = None,
) -> dict[str, SystemRun]:
    """Run several systems on identical workloads (same seed ⇒ same batches)."""
    eirene_configs = eirene_configs or {}
    return {
        s: run_system(s, cfg, eirene_configs.get(s)) for s in systems
    }

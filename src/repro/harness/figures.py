"""One reproduction function per figure of the paper's evaluation (§8).

Each function runs the systems it needs and returns a
:class:`~repro.harness.report.FigureResult` whose rows mirror the bars /
series of the original figure, with the paper's numbers attached as
reference notes. The benchmarks under ``benchmarks/`` call these and assert
the qualitative shape (who wins, roughly by how much, where trends point).
"""

from __future__ import annotations

import numpy as np

from ..factory import EIRENE_VARIANTS
from ..workloads import RANGE_4, RANGE_8
from . import paper
from .experiment import ExperimentConfig, SystemRun, run_all, run_system
from .report import FigureResult

#: locality off, combining on — the "+ Combining" bar of Fig. 11/12.
#: Kept as an alias of the factory's variant table; the figure runners
#: below select the variant *by name*, which picks the pass list via
#: :func:`repro.core.pipeline.eirene_pass_plan`.
COMBINING_ONLY_CFG = EIRENE_VARIANTS["eirene+combining"]


def default_config(**overrides) -> ExperimentConfig:
    return ExperimentConfig().with_(**overrides)


def _profile_config(cfg: ExperimentConfig | None) -> ExperimentConfig:
    """Profiling figures use the SIMT engine at a size it handles well."""
    base = cfg or default_config()
    return base.with_(engine="simt", batch_size=min(base.batch_size, 2**11))


# --------------------------------------------------------------------- #
# Fig. 1 — motivation profiling of the baselines
# --------------------------------------------------------------------- #
def fig01_profiling(cfg: ExperimentConfig | None = None) -> FigureResult:
    cfg = _profile_config(cfg)
    runs = run_all(("nocc", "stm", "lock"), cfg)
    fig = FigureResult(
        figure="Fig. 1",
        title="memory / control-flow instructions per request (baselines)",
        columns=["memory_inst", "control_inst", "mem_ratio", "ctrl_ratio"],
    )
    base = runs["nocc"].outcome
    for name in ("nocc", "stm", "lock"):
        o = runs[name].outcome
        fig.add_row(
            runs[name].label,
            o.mem_inst_per_request,
            o.control_inst_per_request,
            o.mem_inst_per_request / base.mem_inst_per_request,
            o.control_inst_per_request / base.control_inst_per_request,
        )
    fig.paper_notes = [
        f"paper: mem/request noCC={paper.FIG1_MEM_INST['nocc']}, "
        f"STM={paper.FIG1_MEM_INST['stm']} ({paper.FIG1_MEM_RATIO['stm']}x), "
        f"Lock={paper.FIG1_MEM_INST['lock']} ({paper.FIG1_MEM_RATIO['lock']}x)",
        f"paper: control/request ratios STM={paper.FIG1_CONTROL_RATIO['stm']}x, "
        f"Lock={paper.FIG1_CONTROL_RATIO['lock']}x",
    ]
    return fig


# --------------------------------------------------------------------- #
# Fig. 2 — normalized time per request with variance whiskers
# --------------------------------------------------------------------- #
def fig02_normalized_time(cfg: ExperimentConfig | None = None) -> FigureResult:
    cfg = (cfg or default_config()).with_(engine="simt", batch_size=2**11, n_batches=5)
    runs = run_all(("stm", "lock", "eirene"), cfg)
    fig = FigureResult(
        figure="Fig. 2",
        title="normalized time per request (vs STM GB-tree) + QoS variance",
        columns=["norm_avg", "variance_pct"],
    )
    stm_avg = float(np.mean(runs["stm"].batch_avg_response_s))
    for name in ("stm", "lock", "eirene"):
        r = runs[name]
        fig.add_row(
            r.label,
            float(np.mean(r.batch_avg_response_s)) / stm_avg,
            r.qos_variance * 100,
        )
    fig.paper_notes = [
        "paper: variance STM=40%, Lock=36%, Eirene=5%",
        "paper: Eirene avg response is ~7.5% of STM's, ~13% of Lock's",
    ]
    return fig


# --------------------------------------------------------------------- #
# Fig. 7 — overall throughput vs tree size
# --------------------------------------------------------------------- #
def fig07_throughput(
    cfg: ExperimentConfig | None = None,
    tree_sizes_log2: tuple[int, ...] = (13, 14, 15, 16),
) -> FigureResult:
    cfg = cfg or default_config()
    fig = FigureResult(
        figure="Fig. 7",
        title="throughput (Mreq/s) vs tree size, 95%/5% query/update",
        columns=[f"2^{k}" for k in tree_sizes_log2],
    )
    per_system: dict[str, list[float]] = {}
    for name in ("stm", "lock", "eirene"):
        vals = []
        for k in tree_sizes_log2:
            run = run_system(name, cfg.with_(tree_size=2**k))
            vals.append(run.outcome.throughput.mops)
        per_system[name] = vals
        label = run.label
        fig.add_row(label, *vals)
    sp_stm = np.mean(np.array(per_system["eirene"]) / np.array(per_system["stm"]))
    sp_lock = np.mean(np.array(per_system["eirene"]) / np.array(per_system["lock"]))
    fig.notes = [
        f"measured speedup: {sp_stm:.2f}x vs STM, {sp_lock:.2f}x vs Lock",
    ]
    fig.paper_notes = [
        f"paper (2^23..2^26, A100): Eirene 2400 Mreq/s, "
        f"{paper.SPEEDUP_VS_STM}x vs STM, {paper.SPEEDUP_VS_LOCK}x vs Lock; "
        "throughput decreases with tree size",
    ]
    return fig


# --------------------------------------------------------------------- #
# Fig. 8 — time per request (avg / min / max)
# --------------------------------------------------------------------- #
def fig08_response_time(cfg: ExperimentConfig | None = None) -> FigureResult:
    cfg = (cfg or default_config()).with_(engine="simt", batch_size=2**11, n_batches=5)
    runs = run_all(("stm", "lock", "eirene"), cfg)
    fig = FigureResult(
        figure="Fig. 8",
        title="time per request (ns) and QoS variance",
        columns=["avg_ns", "min_ns", "max_ns", "variance_pct"],
    )
    for name in ("stm", "lock", "eirene"):
        r = runs[name]
        a = np.asarray(r.batch_avg_response_s) * 1e9
        fig.add_row(r.label, float(a.mean()), float(a.min()), float(a.max()),
                    r.qos_variance * 100)
    fig.paper_notes = [
        "paper (A100, 1M batches): STM 5.5 ns (40%), Lock 3.1 ns (36%), "
        "Eirene 0.41 ns [0.40, 0.42] (5%)",
        "absolute ns scale with device/batch scaling; ordering + variance are the targets",
    ]
    return fig


# --------------------------------------------------------------------- #
# Fig. 9 — Eirene's instruction profile, normalized to the baselines
# --------------------------------------------------------------------- #
def fig09_instruction_profile(cfg: ExperimentConfig | None = None) -> FigureResult:
    cfg = _profile_config(cfg)
    runs = run_all(("stm", "lock", "eirene"), cfg)
    fig = FigureResult(
        figure="Fig. 9",
        title="normalized instructions per request (1.0 = that baseline)",
        columns=["mem_vs_stm", "ctrl_vs_stm", "mem_vs_lock", "ctrl_vs_lock"],
    )
    e = runs["eirene"].outcome
    s = runs["stm"].outcome
    l = runs["lock"].outcome
    fig.add_row(
        "Eirene",
        e.mem_inst_per_request / s.mem_inst_per_request,
        e.control_inst_per_request / s.control_inst_per_request,
        e.mem_inst_per_request / l.mem_inst_per_request,
        e.control_inst_per_request / l.control_inst_per_request,
    )
    # conflicts/request: measured under key contention (hot keys), where
    # same-key collisions — the conflicts combining eliminates — actually
    # occur; the uniform default at this scale leaves both systems' conflict
    # counts in the statistical noise
    hot = cfg.with_(distribution="zipfian")
    hot_runs = run_all(("stm", "eirene"), hot)
    hs = hot_runs["stm"].outcome.conflicts_per_request
    he = hot_runs["eirene"].outcome.conflicts_per_request
    conflicts_ratio = he / hs if hs else 0.0
    fig.add_row("conflicts vs STM", conflicts_ratio, "", "", "")
    fig.notes.append(
        f"conflict ratio measured under zipfian keys: Eirene {he:.4f} vs "
        f"STM {hs:.4f} per request"
    )
    fig.paper_notes = [
        f"paper: mem {paper.EIRENE_MEM_VS_STM:.3f} of STM / "
        f"{paper.EIRENE_MEM_VS_LOCK:.3f} of Lock; control "
        f"{paper.EIRENE_CONTROL_VS_STM:.3f} of STM / {paper.EIRENE_CONTROL_VS_LOCK:.3f} of Lock",
        f"paper: conflicts per request = {paper.EIRENE_CONFLICTS_VS_STM:.3f} of STM",
    ]
    return fig


# --------------------------------------------------------------------- #
# Fig. 10 — normalized average traversal steps vs tree size
# --------------------------------------------------------------------- #
def fig10_traversal_steps(
    cfg: ExperimentConfig | None = None,
    tree_sizes_log2: tuple[int, ...] = (13, 14, 15, 16),
) -> FigureResult:
    cfg = cfg or default_config()
    fig = FigureResult(
        figure="Fig. 10",
        title="average traversal steps, normalized to STM GB-tree",
        columns=[f"2^{k}" for k in tree_sizes_log2],
    )
    rows: dict[str, list[float]] = {name: [] for name in ("stm", "lock", "eirene")}
    labels = {}
    for k in tree_sizes_log2:
        # keep the batch dense relative to the leaves so locality has the
        # same requests-per-leaf regime as the paper
        c = cfg.with_(tree_size=2**k, batch_size=max(cfg.batch_size, 2 ** (k - 1)))
        for name in rows:
            run = run_system(name, c)
            rows[name].append(run.outcome.traversal_steps)
            labels[name] = run.label
    base = np.array(rows["stm"])
    for name in ("stm", "lock", "eirene"):
        fig.add_row(labels[name], *(np.array(rows[name]) / base))
    fig.paper_notes = [
        "paper: STM and Lock coincide (height-bound); Eirene ~67% fewer "
        "steps at 2^23, gap narrowing as the tree grows "
        "(horizontal steps 1.5 @2^23 -> 3.4 @2^26)",
    ]
    return fig


# --------------------------------------------------------------------- #
# Fig. 11 — design-choice ablation
# --------------------------------------------------------------------- #
def fig11_design_choices(
    cfg: ExperimentConfig | None = None,
    tree_sizes_log2: tuple[int, ...] = (13, 14, 15, 16),
) -> FigureResult:
    cfg = cfg or default_config()
    fig = FigureResult(
        figure="Fig. 11",
        title="throughput (Mreq/s): STM baseline vs +Combining vs Eirene",
        columns=[f"2^{k}" for k in tree_sizes_log2],
    )
    # each series is a system / pass-selection variant name (EIRENE_VARIANTS)
    series = {
        "STM GB-tree": "stm",
        "Lock GB-tree": "lock",
        "+ Combining": "eirene+combining",
        "Eirene": "eirene",
    }
    values: dict[str, list[float]] = {}
    for label, name in series.items():
        vals = []
        for k in tree_sizes_log2:
            run = run_system(name, cfg.with_(tree_size=2**k))
            vals.append(run.outcome.throughput.mops)
        values[label] = vals
        fig.add_row(label, *vals)
    comb = np.mean(np.array(values["+ Combining"]) / np.array(values["STM GB-tree"]))
    full = np.mean(np.array(values["Eirene"]) / np.array(values["STM GB-tree"]))
    fig.notes = [f"measured: +Combining {comb:.2f}x vs STM; Eirene {full:.2f}x vs STM"]
    fig.paper_notes = [
        f"paper: +Combining {paper.COMBINING_SPEEDUP_VS_STM}x, "
        f"Eirene {paper.FULL_EIRENE_SPEEDUP_VS_STM}x over STM GB-tree",
    ]
    return fig


# --------------------------------------------------------------------- #
# Fig. 12 — contribution of each optimization
# --------------------------------------------------------------------- #
def fig12_optimization_contributions(cfg: ExperimentConfig | None = None) -> FigureResult:
    # two measurement regimes, each matching where the paper's numbers come
    # from: instruction contributions under a *dense uniform* batch (≥ half
    # the tree, so the locality optimization operates in the paper's
    # requests-per-leaf regime), conflict contributions under *hot keys*
    # (key conflicts — the population combining eliminates — need
    # duplicates to exist)
    dense = (cfg or default_config()).with_(
        engine="simt", tree_size=2**13, batch_size=2**12, distribution="uniform"
    )
    hot = dense.with_(distribution="zipfian")
    fig = FigureResult(
        figure="Fig. 12",
        title="reduction vs STM GB-tree attributed to each optimization (%)",
        columns=["conflicts", "memory_inst", "control_inst"],
    )

    def reductions(runs, metric: str) -> tuple[float, float]:
        b = getattr(runs["stm"].outcome, metric)
        c = getattr(runs["comb"].outcome, metric)
        e = getattr(runs["full"].outcome, metric)
        if b <= 0:
            return 0.0, 0.0
        return 100.0 * (b - c) / b, 100.0 * max(c - e, 0.0) / b

    dense_runs = {
        "stm": run_system("stm", dense),
        "comb": run_system("eirene+combining", dense),
        "full": run_system("eirene", dense),
    }
    hot_runs = {
        "stm": run_system("stm", hot),
        "comb": run_system("eirene+combining", hot),
        "full": run_system("eirene", hot),
    }
    conf_comb, conf_loc = reductions(hot_runs, "conflicts")
    mem_comb, mem_loc = reductions(dense_runs, "mem_inst")
    ctrl_comb, ctrl_loc = reductions(dense_runs, "control_inst")
    fig.add_row("combining", conf_comb, mem_comb, ctrl_comb)
    fig.add_row("locality", conf_loc, mem_loc, ctrl_loc)
    fig.notes = [
        "conflict columns measured under zipfian keys (key conflicts need "
        "duplicates); instruction columns under a dense uniform batch "
        "(locality's requests-per-leaf regime)",
    ]
    fig.paper_notes = [
        "paper: combining removes ~57% of conflicts, 96.5% of memory "
        "accesses, 98.4% of control instructions; locality removes ~43% of "
        "structure conflicts, 3.5% mem, 1.6% control",
    ]
    return fig


# --------------------------------------------------------------------- #
# Fig. 13 — pure range-query throughput
# --------------------------------------------------------------------- #
def fig13_range_query(
    cfg: ExperimentConfig | None = None,
    tree_sizes_log2: tuple[int, ...] = (13, 14, 15, 16),
) -> FigureResult:
    cfg = cfg or default_config()
    fig = FigureResult(
        figure="Fig. 13",
        title="pure range-query throughput (Mreq/s), lengths 4 and 8",
        columns=[f"len{ln}@2^{k}" for ln in (4, 8) for k in tree_sizes_log2],
    )
    values: dict[str, list[float]] = {}
    labels = {}
    for name in ("stm", "lock", "eirene"):
        vals = []
        for mix in (RANGE_4, RANGE_8):
            for k in tree_sizes_log2:
                run = run_system(
                    name,
                    cfg.with_(tree_size=2**k, mix=mix, batch_size=min(cfg.batch_size, 2**12)),
                )
                vals.append(run.outcome.throughput.mops)
                labels[name] = run.label
        values[name] = vals
        fig.add_row(labels[name], *vals)
    sp = np.mean(np.array(values["eirene"]) / np.array(values["lock"]))
    fig.notes = [f"measured: Eirene {sp:.2f}x vs Lock GB-tree overall"]
    fig.paper_notes = [
        "paper: Eirene 1181 (len4) / 1034 (len8) Mreq/s vs Lock 235 / 175; "
        f"overall {paper.RANGE_SPEEDUP_VS_LOCK}x vs Lock GB-tree",
    ]
    return fig


# --------------------------------------------------------------------- #
# §6 — linearizability demonstration (extension experiment)
# --------------------------------------------------------------------- #
def linearizability_demo(cfg: ExperimentConfig | None = None) -> FigureResult:
    """Run every system under the SIMT engine with the checker on: Eirene
    must match the timestamp-order reference; the baselines are *expected*
    to diverge under same-key races (they don't guarantee linearizability).
    A hot key space amplifies the races."""
    cfg = (cfg or default_config()).with_(
        engine="simt",
        batch_size=2**10,
        n_batches=2,
        tree_size=2**10,
        check_linearizability=True,
    )
    runs = run_all(("nocc", "stm", "lock", "eirene"), cfg)
    fig = FigureResult(
        figure="§6",
        title="linearizability vs the sequential timestamp-order reference",
        columns=["linearizable"],
    )
    for name, r in runs.items():
        fig.add_row(r.label, "yes" if r.linearizable else "NO")
    fig.paper_notes = [
        "paper §6: Eirene is linearizable by construction; neither baseline "
        "guarantees it (they exploit GPU parallelism without timestamp order)",
    ]
    return fig

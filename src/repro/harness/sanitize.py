"""The ``sanitize`` harness target: race-detect every system under YCSB-A.

Runs each system's SIMT engine on a small update-heavy workload with a
:class:`~repro.analysis.Sanitizer` and a
:class:`~repro.analysis.HotspotProfiler` attached, and checks the
expectation that motivates the whole suite: the unsynchronized baseline
(NoCC) **must** race, the synchronized systems (Lock, STM, Eirene) **must
not**. CI runs this as a gate; :func:`sanitize_report` raises
:class:`~repro.errors.SimulationError` on any violated expectation so the
job fails loudly.
"""

from __future__ import annotations

import numpy as np

from ..analysis import attach_hotspots, attach_sanitizer
from ..errors import SimulationError
from ..factory import make_system
from ..workloads import YcsbWorkload, build_key_pool
from ..workloads.ycsb import YCSB_A
from .experiment import SYSTEM_LABELS, SYSTEMS, ExperimentConfig
from .report import FigureResult

#: systems expected to produce at least one RaceReport under YCSB-A
RACY_SYSTEMS = frozenset({"nocc"})


def default_sanitize_config() -> ExperimentConfig:
    """Small update-heavy SIMT config (the detector sees every op; keep
    the instruction stream short)."""
    return ExperimentConfig(
        tree_size=2**10,
        batch_size=2**9,
        n_batches=2,
        fanout=8,
        num_sms=4,
        mix=YCSB_A,
        engine="simt",
    )


def sanitize_systems(
    cfg: ExperimentConfig | None = None,
    systems: tuple[str, ...] = SYSTEMS,
) -> FigureResult:
    """Run every system under the sanitizer; tabulate races and hotspots."""
    cfg = cfg or default_sanitize_config()
    fig = FigureResult(
        figure="sanitize",
        title="data-race detector + hotspot attribution (YCSB-A, SIMT)",
        columns=["races", "W/W", "R/W", "same-slot", "expected", "verdict"],
        paper_notes=[
            "Eirene's claim (PAPER.md §3-4): combining removes the races an",
            "unsynchronized GB-tree exhibits; Lock/STM/Eirene must be clean.",
        ],
    )
    for name in systems:
        rng = np.random.default_rng(cfg.seed)
        keys, values = build_key_pool(cfg.tree_size, rng)
        sys_ = make_system(
            name, keys, values,
            tree_config=cfg.tree_config,
            device=cfg.device,
            fill_factor=cfg.fill_factor,
        )
        san = attach_sanitizer(sys_)
        hot = attach_hotspots(sys_)
        wl = YcsbWorkload(pool=keys, mix=cfg.mix, distribution=cfg.distribution)
        for _ in range(cfg.n_batches):
            batch = wl.generate(cfg.batch_size, rng)
            sys_.process_batch(batch, engine="simt")
        sys_.tree.validate()

        races = san.reports
        ww = sum(1 for r in races if r.kind == "W/W")
        rw = sum(1 for r in races if r.kind == "R/W")
        same = sum(1 for r in races if r.same_slot)
        expect = "racy" if name in RACY_SYSTEMS else "clean"
        ok = bool(races) if name in RACY_SYSTEMS else not races
        fig.add_row(
            SYSTEM_LABELS.get(name, name),
            len(races), ww, rw, same, expect, "ok" if ok else "FAIL",
        )
        if races:
            fig.notes.append(f"{name}: first race: {races[0]}")
        top = hot.report().ranked()
        if top:
            bname, b = top[0]
            fig.notes.append(
                f"{name}: hottest bucket {bname} "
                f"(waste={b.waste}, div={b.divergent_slots}, "
                f"accesses={b.accesses})"
            )
    return fig


def sanitize_report(
    cfg: ExperimentConfig | None = None,
    systems: tuple[str, ...] = SYSTEMS,
) -> FigureResult:
    """:func:`sanitize_systems` + hard gate on the expectations column."""
    fig = sanitize_systems(cfg, systems)
    bad = [row[0] for row in fig.rows if row[6] != "ok"]
    if bad:
        raise SimulationError(
            f"sanitize gate failed for: {', '.join(bad)}\n{fig.render()}"
        )
    return fig

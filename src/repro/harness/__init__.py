"""Experiment harness: per-figure reproduction runners and reports."""

from .ablations import (
    ablate_iteration_depth,
    ablate_kernel_partition,
    ablate_retry_threshold,
    ablate_rf_decision,
    ablate_skew,
)
from .experiment import (
    SYSTEM_LABELS,
    SYSTEMS,
    ExperimentConfig,
    SystemRun,
    run_all,
    run_system,
)
from .figures import (
    COMBINING_ONLY_CFG,
    default_config,
    fig01_profiling,
    fig02_normalized_time,
    fig07_throughput,
    fig08_response_time,
    fig09_instruction_profile,
    fig10_traversal_steps,
    fig11_design_choices,
    fig12_optimization_contributions,
    fig13_range_query,
    linearizability_demo,
)
from .perf import interp_speed
from .report import FigureResult
from .sanitize import sanitize_report, sanitize_systems
from .scaling import shard_scaling

__all__ = [
    "COMBINING_ONLY_CFG",
    "ablate_iteration_depth",
    "ablate_kernel_partition",
    "ablate_retry_threshold",
    "ablate_rf_decision",
    "ablate_skew",
    "ExperimentConfig",
    "FigureResult",
    "SYSTEMS",
    "SYSTEM_LABELS",
    "SystemRun",
    "default_config",
    "fig01_profiling",
    "fig02_normalized_time",
    "fig07_throughput",
    "fig08_response_time",
    "fig09_instruction_profile",
    "fig10_traversal_steps",
    "fig11_design_choices",
    "fig12_optimization_contributions",
    "fig13_range_query",
    "interp_speed",
    "linearizability_demo",
    "run_all",
    "run_system",
    "sanitize_report",
    "sanitize_systems",
    "shard_scaling",
]

"""Interpreter speed benchmark: how fast the simulator *runs*, not what it
computes.

Every mode here produces bit-identical counters, results and modeled times
(that is the :class:`~repro.config.ExecutionConfig` contract); the only
thing measured is host wall-clock. Three modes:

``sequential``
    the reference interpreter (``vectorize_slots=False``) — the seed
    repo's slot loop, kept verbatim as the semantic baseline;
``vectorized``
    the optimized :meth:`~repro.simt.Warp.step` fast path (batched counter
    flushes, parked barrier waits, bulk loads);
``vect+shards``
    the fast path with the batch split across a
    :class:`~repro.sharding.ParallelShardedSystem` fleet (worker
    processes). Note this runs a *sharded* fleet — per-shard trees are
    smaller and counters differ from the unsharded rows by design; its
    wall-time answers "what does the full level-1 + level-2 stack give
    me", not "same system, faster".

The timing protocol is steady-state and deliberately conservative: tree
build and workload generation are excluded (only ``process_batch`` is
timed), every (system, mix, mode) cell rebuilds its system from scratch so
repeats see identical state, and the best of ``repeats`` runs is kept —
single-core noise only ever inflates a run, so min is the honest estimator.
"""

from __future__ import annotations

import time

import numpy as np

from ..config import ExecutionConfig, set_execution_config
from ..factory import make_system
from ..sharding import ParallelShardedSystem
from ..workloads import YCSB_A, YCSB_B, YCSB_C, YcsbWorkload, build_key_pool
from .experiment import SYSTEMS, ExperimentConfig
from .report import FigureResult

MIXES = {"YCSB-A": YCSB_A, "YCSB-B": YCSB_B, "YCSB-C": YCSB_C}

#: the reference interpreter, exactly as the escape hatch selects it
SEQUENTIAL = ExecutionConfig(vectorize_slots=False, park_barrier_waits=False)
#: the optimized fast path (the process default)
VECTORIZED = ExecutionConfig()


def _timed(make_fn, batches, repeats: int) -> float:
    """Best-of-``repeats`` wall seconds over the ``process_batch`` loop."""
    best = float("inf")
    for _ in range(repeats):
        sys_ = make_fn()
        t0 = time.perf_counter()
        for batch in batches:
            sys_.process_batch(batch, engine="simt")
        best = min(best, time.perf_counter() - t0)
        close = getattr(sys_, "close", None)
        if close is not None:
            close()
    return best


def interp_speed(
    cfg: ExperimentConfig | None = None,
    systems: tuple[str, ...] = SYSTEMS,
    mixes: tuple[str, ...] = ("YCSB-A", "YCSB-B", "YCSB-C"),
    repeats: int = 2,
    n_shards: int = 4,
    shard_workers: int = 2,
) -> FigureResult:
    """Wall-time of the SIMT interpreter per system × mix × execution mode."""
    cfg = cfg or ExperimentConfig(
        engine="simt", tree_size=2**12, batch_size=2**10, n_batches=2
    )
    fig = FigureResult(
        figure="BENCH interp",
        title="SIMT interpreter wall-time: sequential vs vectorized vs +shards",
        columns=[
            "sequential s",
            "vectorized s",
            "vect+shards s",
            "ops/s (vect)",
            "speedup",
            "speedup(+shards)",
        ],
    )
    n_ops = cfg.batch_size * cfg.n_batches
    previous = set_execution_config(None)
    try:
        for mix_name in mixes:
            mix = MIXES[mix_name]
            rng = np.random.default_rng(cfg.seed)
            keys, values = build_key_pool(cfg.tree_size, rng)
            wl = YcsbWorkload(pool=keys, mix=mix, distribution=cfg.distribution)
            batches = [wl.generate(cfg.batch_size, rng) for _ in range(cfg.n_batches)]
            make_kwargs = dict(
                tree_config=cfg.tree_config,
                device=cfg.device,
                fill_factor=cfg.fill_factor,
            )

            def make_plain():
                return make_system(system, keys, values, seed=cfg.seed, **make_kwargs)

            def make_fleet():
                return ParallelShardedSystem(
                    system, keys, values, n_shards,
                    n_workers=shard_workers, seed=cfg.seed, **make_kwargs,
                )

            for system in systems:
                set_execution_config(SEQUENTIAL)
                seq_s = _timed(make_plain, batches, repeats)
                set_execution_config(VECTORIZED)
                vec_s = _timed(make_plain, batches, repeats)
                par_s = _timed(make_fleet, batches, repeats)
                fig.add_row(
                    f"{system} {mix_name}",
                    seq_s,
                    vec_s,
                    par_s,
                    n_ops / vec_s if vec_s else float("inf"),
                    seq_s / vec_s if vec_s else float("inf"),
                    seq_s / par_s if par_s else float("inf"),
                )
    finally:
        set_execution_config(previous)
    fig.notes.append(
        f"process_batch wall-time only (build + workload gen excluded); "
        f"best of {repeats}; tree=2^{cfg.tree_size.bit_length() - 1}, "
        f"batch=2^{cfg.batch_size.bit_length() - 1} x{cfg.n_batches}, engine=simt"
    )
    fig.notes.append(
        f"vect+shards = fast path + ParallelShardedSystem({n_shards} shards, "
        f"{shard_workers} workers); counters differ from unsharded rows by "
        "design (smaller per-shard trees) — wall-time column only"
    )
    fig.notes.append(
        "all modes produce bit-identical counters/results per system "
        "(ExecutionConfig contract); REPRO_SLOW_PATH=1 forces the sequential "
        "path process-wide"
    )
    return fig

"""Shard-scaling benchmark: modeled throughput vs shard count.

Runs the YCSB uniform workload (the paper's §8.1 default mix) against a
:class:`~repro.sharding.ShardedSystem` at increasing shard counts and
reports modeled throughput, speedup over the single-shard baseline, and the
per-shard load/QoS breakdown that
:func:`~repro.sharding.merge.merge_shard_outcomes` attaches to every merged
outcome. The merged batch time is the straggler shard's time, so the
speedup column directly measures how evenly the fence-key plan balances the
workload (uniform keys ⇒ near-linear scaling; skew would show up as a
straggler).

Exposed on the CLI as ``python -m repro.harness shards``.
"""

from __future__ import annotations

import numpy as np

from ..baselines.base import merge_outcomes
from ..sharding import ShardedSystem
from ..workloads import YcsbWorkload, build_key_pool
from .experiment import ExperimentConfig
from .figures import default_config
from .report import FigureResult


def shard_scaling(
    cfg: ExperimentConfig | None = None,
    shard_counts: tuple[int, ...] = (1, 2, 4, 8),
    system: str = "eirene",
    executor: str = "serial",
) -> FigureResult:
    """Throughput/speedup table over ``shard_counts``, plus per-shard QoS."""
    cfg = cfg or default_config()
    fig = FigureResult(
        figure="Shard scaling",
        title=(
            f"modeled throughput vs shard count ({system}, YCSB "
            f"{cfg.distribution}, {cfg.n_batches}x2^{int(np.log2(cfg.batch_size))} reqs)"
        ),
        columns=["shards", "Mreq/s", "speedup", "straggler", "worst shard var %"],
    )
    base_tput: float | None = None
    for n_shards in shard_counts:
        rng = np.random.default_rng(cfg.seed)
        keys, values = build_key_pool(cfg.tree_size, rng)
        fleet = ShardedSystem.build(
            system,
            keys,
            values,
            n_shards=n_shards,
            executor=executor,
            tree_config=cfg.tree_config,
            device=cfg.device,
            fill_factor=cfg.fill_factor,
        )
        wl = YcsbWorkload(pool=keys, mix=cfg.mix, distribution=cfg.distribution)
        outcomes = [
            fleet.process_batch(wl.generate(cfg.batch_size, rng), engine=cfg.engine)
            for _ in range(cfg.n_batches)
        ]
        fleet.validate()
        merged = merge_outcomes(outcomes)
        tput = merged.n_requests / merged.seconds if merged.seconds > 0 else 0.0
        if base_tput is None:
            base_tput = tput
        last = outcomes[-1]
        worst_var = max(q.stats.variance_fraction for q in last.extras["shards"])
        fig.add_row(
            f"{n_shards} shard{'s' if n_shards > 1 else ''}",
            n_shards,
            round(tput / 1e6, 3),
            round(tput / base_tput, 3),
            last.extras["straggler_shard"],
            round(worst_var * 100, 2),
        )
        fig.notes.extend(
            f"  [{n_shards}sh] {q.describe()}" for q in last.extras["shards"]
        )
        if last.trace is not None:
            fig.notes.append(
                f"  [{n_shards}sh] merged trace: "
                + ", ".join(
                    f"{r.name}={r.modeled_s:.2e}s" for r in last.trace.records
                )
            )
    fig.paper_notes = [
        "not a paper figure: ROADMAP serving-layer extension — shards model "
        "independent devices, so merged time is the straggler's and uniform "
        "keys should scale near-linearly",
    ]
    return fig

"""Command-line figure runner.

Usage::

    python -m repro.harness list
    python -m repro.harness fig07
    python -m repro.harness fig07 --tree-size 15 --batch-size 13 --sms 8
    python -m repro.harness all            # every figure (slow)
    python -m repro.harness calibrate      # SIMT vs vector cross-check
    python -m repro.harness sanitize       # race-detector gate (small cfg)
    python -m repro.harness perf           # interpreter speedup table
"""

from __future__ import annotations

import argparse
import sys

from ..simt.calibration import calibrate
from . import ablations, figures, perf, scaling
from .experiment import ExperimentConfig
from .sanitize import sanitize_report

RUNNERS = {
    "fig01": figures.fig01_profiling,
    "fig02": figures.fig02_normalized_time,
    "fig07": figures.fig07_throughput,
    "fig08": figures.fig08_response_time,
    "fig09": figures.fig09_instruction_profile,
    "fig10": figures.fig10_traversal_steps,
    "fig11": figures.fig11_design_choices,
    "fig12": figures.fig12_optimization_contributions,
    "fig13": figures.fig13_range_query,
    "linearizability": figures.linearizability_demo,
    "ablation-threshold": lambda cfg: ablations.ablate_retry_threshold(),
    "ablation-depth": lambda cfg: ablations.ablate_iteration_depth(),
    "ablation-rf": lambda cfg: ablations.ablate_rf_decision(),
    "ablation-partition": lambda cfg: ablations.ablate_kernel_partition(),
    "ablation-skew": lambda cfg: ablations.ablate_skew(),
    "shards": scaling.shard_scaling,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness",
        description="Reproduce figures of the Eirene paper (PPoPP'23).",
    )
    parser.add_argument(
        "target", choices=[*RUNNERS, "all", "list", "calibrate", "sanitize", "perf"],
        help="figure id, 'all', 'list', 'calibrate', 'sanitize', or 'perf'",
    )
    parser.add_argument("--tree-size", type=int, default=14, metavar="LOG2")
    parser.add_argument("--batch-size", type=int, default=13, metavar="LOG2")
    parser.add_argument("--batches", type=int, default=2)
    parser.add_argument("--fanout", type=int, default=32)
    parser.add_argument("--sms", type=int, default=8)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--shard-counts", default="1,2,4,8", metavar="N,N,...",
        help="shard counts for the 'shards' target (default: 1,2,4,8)",
    )
    parser.add_argument(
        "--shard-system", default="eirene",
        help="system to shard for the 'shards' target (default: eirene)",
    )
    parser.add_argument(
        "--shard-executor", default="serial", choices=("serial", "thread"),
        help="run shard pipelines serially or on a thread pool",
    )
    parser.add_argument(
        "--perf-repeats", type=int, default=2,
        help="timing repeats per cell for the 'perf' target (best-of)",
    )
    parser.add_argument(
        "--shard-workers", type=int, default=2,
        help="worker processes for the 'perf' target's sharded mode",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.target == "list":
        for name in RUNNERS:
            print(name)
        return 0
    if args.target == "calibrate":
        print(calibrate().render())
        return 0
    if args.target == "perf":
        # interpreter wall-clock speedups (sequential vs vectorized vs
        # vectorized + parallel shards); every mode computes identical
        # counters, so this never touches goldens
        cfg = ExperimentConfig(
            engine="simt",
            tree_size=2**args.tree_size,
            batch_size=2**args.batch_size,
            n_batches=args.batches,
            fanout=args.fanout,
            num_sms=args.sms,
            seed=args.seed,
        )
        fig = perf.interp_speed(
            cfg, repeats=args.perf_repeats, shard_workers=args.shard_workers
        )
        print(fig.render())
        return 0
    if args.target == "sanitize":
        # race-detector gate: uses its own small SIMT config (every op is
        # interpreted *and* observed; the figure-scale flags don't apply);
        # raises and exits non-zero when an expectation fails
        print(sanitize_report().render())
        return 0
    cfg = ExperimentConfig(
        tree_size=2**args.tree_size,
        batch_size=2**args.batch_size,
        n_batches=args.batches,
        fanout=args.fanout,
        num_sms=args.sms,
        seed=args.seed,
    )
    targets = list(RUNNERS) if args.target == "all" else [args.target]
    for name in targets:
        if name == "shards":
            counts = tuple(int(c) for c in args.shard_counts.split(","))
            fig = scaling.shard_scaling(
                cfg, shard_counts=counts,
                system=args.shard_system, executor=args.shard_executor,
            )
        else:
            fig = RUNNERS[name](cfg)
        print(fig.render())
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())

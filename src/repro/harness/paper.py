"""Reference numbers reported in the paper (Zhang et al., PPoPP'23, §2+§8).

Used by the figure harness to print paper-vs-measured comparisons and by
EXPERIMENTS.md. Absolute values are A100-scale; shape/ratio entries are the
reproduction targets.
"""

from __future__ import annotations

# ---- Fig. 1 (motivation): instructions per request -------------------- #
FIG1_MEM_INST = {"nocc": 70.0, "stm": 209.0, "lock": 79.0}
FIG1_CONTROL_INST = {"nocc": 1907.0, "stm": 8562.0, "lock": 5445.0}
FIG1_MEM_RATIO = {"stm": 2.98, "lock": 1.12}  # vs no-CC
FIG1_CONTROL_RATIO = {"stm": 4.49, "lock": 2.85}

# ---- Fig. 2 / Fig. 8 (QoS): response time ------------------------------- #
AVG_RESPONSE_NS = {"stm": 5.5, "lock": 3.1, "eirene": 0.41}
RESPONSE_VARIANCE = {"stm": 0.40, "lock": 0.36, "eirene": 0.05}
EIRENE_MAX_RESPONSE_NS = 0.42
EIRENE_MIN_RESPONSE_NS = 0.40

# ---- Fig. 7 (overall throughput) ---------------------------------------- #
EIRENE_THROUGHPUT_MOPS = 2400.0  # default config, million requests/s
SPEEDUP_VS_STM = 13.68
SPEEDUP_VS_LOCK = 7.43
TREE_SIZES_LOG2 = (23, 24, 25, 26)

# ---- Fig. 9 (Eirene instruction profile, normalized) --------------------- #
EIRENE_MEM_VS_STM = 0.039
EIRENE_CONTROL_VS_STM = 0.020
EIRENE_MEM_VS_LOCK = 0.085
EIRENE_CONTROL_VS_LOCK = 0.018
EIRENE_CONFLICTS_VS_STM = 0.048

# ---- Fig. 10 (traversal steps) -------------------------------------------- #
EIRENE_STEP_REDUCTION_AT_2_23 = 0.67  # 67% fewer steps than the baselines
HORIZONTAL_STEPS = {23: 1.5, 26: 3.4}

# ---- Fig. 11 (design choices) ----------------------------------------------- #
COMBINING_SPEEDUP_VS_STM = 6.26
FULL_EIRENE_SPEEDUP_VS_STM = 13.68

# ---- Fig. 12 (optimization contributions) ------------------------------------ #
COMBINING_CONFLICT_REDUCTION = 0.57
COMBINING_MEM_REDUCTION = 0.965
COMBINING_CONTROL_REDUCTION = 0.984
LOCALITY_CONFLICT_REDUCTION = 0.43
LOCALITY_MEM_REDUCTION = 0.035
LOCALITY_CONTROL_REDUCTION = 0.016

# ---- Fig. 13 (range queries) --------------------------------------------------- #
RANGE_THROUGHPUT_MOPS = {
    ("eirene", 4): 1181.0,
    ("eirene", 8): 1034.0,
    ("lock", 4): 235.0,
    ("lock", 8): 175.0,
}
RANGE_SPEEDUP_VS_LOCK = 5.94

"""Configuration dataclasses for the device model, tree, and Eirene.

Configurations are frozen dataclasses validated at construction; invalid
combinations raise :class:`~repro.errors.ConfigError` eagerly rather than
failing deep inside a kernel.
"""

from __future__ import annotations

import dataclasses
import os
from dataclasses import dataclass

from .errors import ConfigError


@dataclass(frozen=True)
class DeviceConfig:
    """Parameters of the simulated GPU.

    Defaults model an NVIDIA A100 (SXM4 40GB): 108 SMs, 1.41 GHz boost
    clock, warps of 32 threads, 128-byte memory transaction segments.
    The cost weights are the calibrated translation from counted events to
    cycles; they are shared by every system under test (Eirene and both
    baselines), so relative results never depend on per-system constants.
    """

    num_sms: int = 108
    warp_size: int = 32
    clock_ghz: float = 1.41
    segment_bytes: int = 128
    word_bytes: int = 8
    #: cycles to issue one warp instruction (arithmetic / control).
    cycles_per_inst: float = 1.0
    #: amortized cycles per 128B global-memory transaction (latency hiding
    #: by the warp scheduler is folded in; an A100 hides most of the ~400
    #: cycle raw latency at high occupancy).
    cycles_per_mem_transaction: float = 8.0
    #: extra cycles charged per atomic operation that lost its CAS/contended.
    cycles_per_atomic_conflict: float = 32.0
    #: maximum resident warps per SM (occupancy bound for the scheduler).
    max_warps_per_sm: int = 64
    #: global-memory bandwidth (A100 40GB: 1555 GB/s); bounds the vector
    #: engine's memory-side time as transactions / (bandwidth / segment).
    mem_bandwidth_gbps: float = 1555.0

    def __post_init__(self) -> None:
        if self.num_sms <= 0:
            raise ConfigError(f"num_sms must be positive, got {self.num_sms}")
        if self.warp_size <= 0 or self.warp_size & (self.warp_size - 1):
            raise ConfigError(
                f"warp_size must be a positive power of two, got {self.warp_size}"
            )
        if self.clock_ghz <= 0:
            raise ConfigError(f"clock_ghz must be positive, got {self.clock_ghz}")
        if self.segment_bytes % self.word_bytes:
            raise ConfigError("segment_bytes must be a multiple of word_bytes")

    @property
    def words_per_segment(self) -> int:
        return self.segment_bytes // self.word_bytes

    @property
    def clock_hz(self) -> float:
        return self.clock_ghz * 1e9

    def cycles_to_seconds(self, cycles: float) -> float:
        """Convert device cycles (per-SM) to wall-clock seconds."""
        return cycles / self.clock_hz

    @property
    def mem_transactions_per_second(self) -> float:
        """Peak 128-byte transactions the memory system can retire."""
        return self.mem_bandwidth_gbps * 1e9 / self.segment_bytes

    @property
    def thread_slots(self) -> int:
        """Thread-instructions retired per cycle device-wide (one warp
        instruction per SM per cycle × warp width)."""
        return self.num_sms * self.warp_size


@dataclass(frozen=True)
class TreeConfig:
    """Shape of the B+tree.

    ``fanout`` is the maximum number of keys per node (the paper uses a
    "regular B+tree"; GPU B-trees typically pick node sizes that fill one or
    two memory segments — fanout 16 puts a node at 38 words = 304 bytes,
    i.e. ~2.4 segments).
    """

    fanout: int = 16
    #: capacity of the node arena as a multiple of the minimum node count
    #: needed for the initial bulk build (headroom for splits).
    arena_headroom: float = 2.0

    def __post_init__(self) -> None:
        if self.fanout < 4:
            raise ConfigError(f"fanout must be >= 4, got {self.fanout}")
        if self.arena_headroom < 1.0:
            raise ConfigError("arena_headroom must be >= 1.0")

    @property
    def min_keys(self) -> int:
        """Minimum keys per non-root node (standard half-full invariant)."""
        return self.fanout // 2


@dataclass(frozen=True)
class EireneConfig:
    """Feature flags and tunables for Eirene (§4, §5, §7 of the paper)."""

    #: §4.1 combining-based synchronization (sort + combine + RESULT_CAL).
    enable_combining: bool = True
    #: §5 locality-aware warp reorganization (iteration warps + RF field).
    enable_locality: bool = True
    #: §4.2 split query/update requests into separate kernels. When False
    #: the pipeline selects one *unified* kernel pass instead
    #: (:func:`repro.core.pipeline.eirene_pass_plan`): queries share the
    #: launch with writers, lose the NTG search, and must read their leaf
    #: inside an STM leaf-region transaction (ablation of the paper's
    #: query/update kernel split).
    enable_kernel_partition: bool = True
    #: §4.2 retries of unprotected inner traversal before STM protection.
    stm_retry_threshold: int = 3
    #: §5 number of request groups folded into one iteration warp.
    rgs_per_iteration_warp: int = 4
    #: §7 CPU-side buffering threshold (requests per batch) — scaled from
    #: the paper's 1M default; harness configs override per experiment.
    batch_threshold: int = 8192
    #: use the RF field to choose vertical vs horizontal traversal (§5);
    #: when False, iteration warps always traverse horizontally (ablation).
    enable_rf_decision: bool = True
    #: §7: apply Harmonia's narrowed-thread-group search in the query
    #: kernel — warp sub-groups cooperate on one node's key row (one
    #: coalesced row load + a log2(fanout) reduction per visit). Vector
    #: engine only; the SIMT engine keeps per-lane scans.
    enable_narrowed_thread_groups: bool = True

    def __post_init__(self) -> None:
        if self.stm_retry_threshold < 0:
            raise ConfigError("stm_retry_threshold must be >= 0")
        if self.rgs_per_iteration_warp < 1:
            raise ConfigError("rgs_per_iteration_warp must be >= 1")
        if self.batch_threshold < 1:
            raise ConfigError("batch_threshold must be >= 1")
        if self.enable_locality and not self.enable_combining:
            raise ConfigError(
                "locality-aware warp reorganization requires combining: "
                "request groups are formed from the sorted/combined stream"
            )

    def replace(self, **kwargs: object) -> "EireneConfig":
        """Return a copy with the given fields replaced."""
        return dataclasses.replace(self, **kwargs)


@dataclass(frozen=True)
class ExecutionConfig:
    """How the *simulator itself* executes — never what it computes.

    Every flag here is observationally neutral: counters, arena contents,
    lane results and timing-model outputs are bit-for-bit identical on every
    setting. The flags only trade interpreter wall-clock time, so goldens
    and figures can never depend on them.

    ``REPRO_SLOW_PATH=1`` in the environment forces the reference
    interpreter (``vectorize_slots=False``) regardless of programmatic
    settings — the escape hatch for bisecting a suspected fast-path bug.
    """

    #: use the optimized :meth:`~repro.simt.Warp.step` path (batched
    #: counter flushes, barrier-wait lane parking, bulk load execution).
    #: Attaching an analysis probe always falls back to the reference
    #: interpreter regardless of this flag.
    vectorize_slots: bool = True
    #: park lanes blocked on a :class:`~repro.simt.WaitGE` barrier instead
    #: of resuming their generator every slot (fast path only).
    park_barrier_waits: bool = True
    #: minimum pending loads in a slot before the fast path defers them
    #: into one :meth:`~repro.memory.MemoryArena.gather`. Scalar fetches
    #: win below ~48 addresses (numpy fancy-indexing overhead), so the
    #: default disables deferral at the stock warp width of 32; tests set
    #: it to 1 to exercise the bulk path.
    gather_threshold: int = 48
    #: worker processes for :class:`~repro.sharding.ParallelShardedSystem`
    #: when the caller does not specify a count.
    default_shard_workers: int = 2

    def __post_init__(self) -> None:
        if self.gather_threshold < 1:
            raise ConfigError(
                f"gather_threshold must be >= 1, got {self.gather_threshold}"
            )
        if self.default_shard_workers < 1:
            raise ConfigError(
                f"default_shard_workers must be >= 1, got {self.default_shard_workers}"
            )

    def replace(self, **kwargs: object) -> "ExecutionConfig":
        return dataclasses.replace(self, **kwargs)


def _execution_config_from_env() -> ExecutionConfig:
    if os.environ.get("REPRO_SLOW_PATH", "") == "1":
        return ExecutionConfig(vectorize_slots=False, park_barrier_waits=False)
    return ExecutionConfig()


_execution: ExecutionConfig | None = None


def execution_config() -> ExecutionConfig:
    """The process-wide :class:`ExecutionConfig` (lazily env-initialized)."""
    global _execution
    if _execution is None:
        _execution = _execution_config_from_env()
    return _execution


def set_execution_config(cfg: ExecutionConfig | None) -> ExecutionConfig:
    """Install ``cfg`` process-wide; ``None`` re-reads the environment.

    Returns the previous configuration so tests can restore it. The
    ``REPRO_SLOW_PATH=1`` escape hatch wins even over programmatic
    settings — when set, ``vectorize_slots`` is forced off.
    """
    global _execution
    previous = execution_config()
    if cfg is not None and os.environ.get("REPRO_SLOW_PATH", "") == "1":
        cfg = cfg.replace(vectorize_slots=False, park_barrier_waits=False)
    _execution = cfg if cfg is not None else _execution_config_from_env()
    return previous


#: Configuration matching the paper's "+ Combining" ablation bar (Fig. 11):
#: combining-based concurrent control on, locality reorganization off.
COMBINING_ONLY = EireneConfig(enable_locality=False)

#: Full Eirene configuration (all optimizations on).
FULL_EIRENE = EireneConfig()

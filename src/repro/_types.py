"""Shared scalar types, sentinels and enums.

All request batches and tree nodes use 64-bit integer keys and values. A
handful of sentinel values are reserved; workload generators never emit them
as ordinary data.
"""

from __future__ import annotations

import enum

import numpy as np

#: dtype used for keys, values and timestamps throughout the library.
WORD_DTYPE = np.int64

#: Sentinel returned for "no value" (key absent, or deleted). Matches the
#: paper's ``null`` result for a query that follows a delete.
NULL_VALUE: int = -1

#: Sentinel key stored in unused node slots; sorts after every real key.
EMPTY_KEY: int = np.iinfo(np.int64).max

#: Sentinel node id meaning "no node" (e.g. the last leaf's next pointer).
NO_NODE: int = -1

#: Largest key a workload may generate (strictly below EMPTY_KEY).
MAX_KEY: int = EMPTY_KEY - 1


class OpKind(enum.IntEnum):
    """Request types.

    The paper groups ``UPDATE``, ``INSERT`` and ``DELETE`` into the *update
    class* (they modify the tree) and ``QUERY``/``RANGE`` into the *query
    class*.
    """

    QUERY = 0
    UPDATE = 1
    INSERT = 2
    DELETE = 3
    RANGE = 4

    @property
    def is_update_class(self) -> bool:
        return self in (OpKind.UPDATE, OpKind.INSERT, OpKind.DELETE)

    @property
    def is_query_class(self) -> bool:
        return self in (OpKind.QUERY, OpKind.RANGE)


#: numpy dtype used to store OpKind values compactly in request batches.
KIND_DTYPE = np.int8

UPDATE_CLASS_KINDS = (OpKind.UPDATE, OpKind.INSERT, OpKind.DELETE)
QUERY_CLASS_KINDS = (OpKind.QUERY, OpKind.RANGE)


def is_update_kind_array(kinds: np.ndarray) -> np.ndarray:
    """Vectorized ``OpKind.is_update_class`` over an int8 kind array."""
    return (kinds >= OpKind.UPDATE) & (kinds <= OpKind.DELETE)


def is_query_kind_array(kinds: np.ndarray) -> np.ndarray:
    """Vectorized ``OpKind.is_query_class`` over an int8 kind array."""
    return (kinds == OpKind.QUERY) | (kinds == OpKind.RANGE)

"""GPU-style data-parallel primitives (the CUB substitute).

Everything Eirene's host pipeline needs: stable LSD radix sort, Blelloch
scans (plain and segmented), stream compaction and run-length detection.
All primitives execute their real GPU dataflow (per-level / per-pass
vectorized steps) and report work counts for the device cost model.
"""

from .compact import compact_indices, expand_runs, run_heads, run_lengths
from .radix import RadixWork, radix_argsort, radix_sort_pairs, significant_passes
from .scan import (
    ScanWork,
    exclusive_scan,
    inclusive_scan,
    segment_ids,
    segmented_exclusive_scan,
)

__all__ = [
    "RadixWork",
    "ScanWork",
    "compact_indices",
    "exclusive_scan",
    "expand_runs",
    "inclusive_scan",
    "radix_argsort",
    "radix_sort_pairs",
    "run_heads",
    "run_lengths",
    "segment_ids",
    "segmented_exclusive_scan",
    "significant_passes",
]

"""Stream compaction and run detection (CUB ``DeviceSelect`` / ``DeviceRunLengthEncode``).

The combining scan (§4.1.1) needs two primitives beyond sort:

* detect runs of equal keys in the sorted stream (``run_heads`` /
  ``run_lengths``), and
* compact the issued requests into dense kernel inputs
  (``compact_indices``), since only one request per key is launched.
"""

from __future__ import annotations

import numpy as np

from .scan import ScanWork, exclusive_scan, inclusive_scan


def run_heads(sorted_keys: np.ndarray) -> np.ndarray:
    """Boolean mask marking the first element of each equal-key run."""
    keys = np.asarray(sorted_keys)
    heads = np.empty(keys.size, dtype=bool)
    if keys.size == 0:
        return heads
    heads[0] = True
    np.not_equal(keys[1:], keys[:-1], out=heads[1:])
    return heads


def run_lengths(heads: np.ndarray, work: ScanWork | None = None) -> tuple[np.ndarray, np.ndarray]:
    """(start index, length) of each run, from a run-head mask."""
    heads = np.asarray(heads, dtype=bool)
    starts = np.flatnonzero(heads)
    if starts.size == 0:
        return starts, starts.copy()
    ends = np.empty_like(starts)
    ends[:-1] = starts[1:]
    ends[-1] = heads.size
    if work is not None:
        work.merge(ScanWork(n=int(heads.size), levels=1, element_ops=int(heads.size)))
    return starts, ends - starts


def compact_indices(flags: np.ndarray, work: ScanWork | None = None) -> np.ndarray:
    """Indices of the set flags, via scan + scatter (GPU stream compaction)."""
    flags = np.asarray(flags, dtype=bool)
    offsets = exclusive_scan(flags.astype(np.int64), work)
    total = int(offsets[-1] + flags[-1]) if flags.size else 0
    out = np.empty(total, dtype=np.int64)
    idx = np.arange(flags.size, dtype=np.int64)
    out[offsets[flags]] = idx[flags]
    return out


def expand_runs(starts: np.ndarray, lengths: np.ndarray) -> np.ndarray:
    """Map each element position to its run id (inverse of run_lengths).

    Equivalent to ``np.repeat(arange(len(starts)), lengths)``, expressed as
    head-flag construction plus an inclusive scan — the GPU formulation.
    """
    total = int(lengths.sum())
    heads = np.zeros(total, dtype=np.int64)
    if starts.size:
        heads[starts] = 1
    return inclusive_scan(heads) - 1

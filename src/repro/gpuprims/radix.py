"""LSD radix sort over 64-bit keys (the CUB ``DeviceRadixSort`` substitute).

Eirene sorts each request batch by (key, logical timestamp) before the
combining scan (§4.1.1, §7). Because a batch arrives in timestamp order, a
*stable* sort by key alone yields exactly the (key, ts) lexicographic order;
this module therefore implements a stable LSD radix sort and returns the
permutation.

Each digit pass is a genuine counting sort: histogram → exclusive scan →
stable scatter, the same three phases as a GPU onesweep pass, executed as
vectorized numpy steps. :class:`RadixWork` records passes and element moves
for the device cost model.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .scan import ScanWork, exclusive_scan

#: digit width in bits; 8 gives 8 passes over int64 keys, matching CUB's
#: default configuration.
DIGIT_BITS = 8
RADIX = 1 << DIGIT_BITS
DIGIT_MASK = RADIX - 1


@dataclass
class RadixWork:
    """Work accounting for one radix-sort launch."""

    n: int = 0
    passes: int = 0
    element_moves: int = 0
    scan_work: ScanWork | None = None

    def merge(self, other: "RadixWork") -> None:
        self.n += other.n
        self.passes += other.passes
        self.element_moves += other.element_moves


def _stable_rank(digits: np.ndarray, starts: np.ndarray) -> np.ndarray:
    """Stable scatter position for each element of a digit pass.

    position(i) = starts[digit_i] + |{j < i : digit_j == digit_i}|.
    The within-bucket rank is computed via a stable ordering of the digit
    array — the per-warp match/ballot ranking a GPU pass performs, expressed
    as one vectorized step.
    """
    n = digits.size
    order = np.argsort(digits, kind="stable")
    sorted_digits = digits[order]
    run_head = np.empty(n, dtype=bool)
    run_head[0] = True
    np.not_equal(sorted_digits[1:], sorted_digits[:-1], out=run_head[1:])
    head_pos = np.flatnonzero(run_head)
    run_id = np.cumsum(run_head) - 1
    within = np.arange(n) - head_pos[run_id]
    rank = np.empty(n, dtype=np.int64)
    rank[order] = within
    return starts[digits] + rank


def significant_passes(keys: np.ndarray) -> int:
    """Number of digit passes needed to cover the largest key.

    CUB skips passes whose digits are uniformly zero; we do the same so the
    charged cost tracks the key range actually in use.
    """
    if keys.size == 0:
        return 0
    hi = int(keys.max())
    if hi < 0:
        raise ValueError("radix sort requires non-negative keys")
    p = 1
    while hi >> (p * DIGIT_BITS):
        p += 1
    return p


def radix_argsort(keys: np.ndarray, work: RadixWork | None = None) -> np.ndarray:
    """Stable ascending argsort of non-negative int64 ``keys``.

    Returns the permutation such that ``keys[perm]`` is sorted, ties in
    input order (stability).
    """
    keys = np.ascontiguousarray(keys, dtype=np.int64)
    n = int(keys.size)
    if n == 0:
        return np.zeros(0, dtype=np.int64)
    if keys.min() < 0:
        raise ValueError("radix sort requires non-negative keys")
    perm = np.arange(n, dtype=np.int64)
    cur = keys.copy()
    npasses = significant_passes(keys)
    scan_work = ScanWork()
    for p in range(npasses):
        digits = (cur >> (p * DIGIT_BITS)) & DIGIT_MASK
        hist = np.bincount(digits, minlength=RADIX).astype(np.int64)
        starts = exclusive_scan(hist, scan_work)
        pos = _stable_rank(digits, starts)
        out_perm = np.empty_like(perm)
        out_cur = np.empty_like(cur)
        out_perm[pos] = perm
        out_cur[pos] = cur
        perm, cur = out_perm, out_cur
    if work is not None:
        work.merge(RadixWork(n=n, passes=npasses, element_moves=npasses * n))
        work.scan_work = scan_work
    return perm


def radix_sort_pairs(
    keys: np.ndarray, values: np.ndarray, work: RadixWork | None = None
) -> tuple[np.ndarray, np.ndarray]:
    """Sort (key, value) pairs by key, stable. Returns sorted copies."""
    perm = radix_argsort(keys, work)
    return keys[perm], values[perm]

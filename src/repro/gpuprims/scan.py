"""Parallel prefix-scan primitives (Blelloch work-efficient scan).

The scans really execute the up-sweep / down-sweep phases level by level,
with each level a single vectorized step — the same dataflow a GPU scan
kernel has, so the returned :class:`ScanWork` mirrors the work/depth a CUB
scan would incur. The paper's pipeline uses scans inside radix sort, stream
compaction, and the combining scan.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class ScanWork:
    """Work/depth accounting for one scan launch."""

    n: int = 0
    levels: int = 0
    element_ops: int = 0

    def merge(self, other: "ScanWork") -> None:
        self.n += other.n
        self.levels += other.levels
        self.element_ops += other.element_ops


def _ceil_pow2(n: int) -> int:
    p = 1
    while p < n:
        p <<= 1
    return p


def exclusive_scan(
    values: np.ndarray, work: ScanWork | None = None
) -> np.ndarray:
    """Work-efficient exclusive prefix sum (Blelloch 1990).

    Pads to a power of two, runs ``log2`` up-sweep and down-sweep levels,
    each level one strided vector operation.
    """
    values = np.asarray(values)
    n = int(values.size)
    if n == 0:
        return np.zeros(0, dtype=values.dtype if values.dtype.kind in "iu" else np.int64)
    m = _ceil_pow2(n)
    buf = np.zeros(m, dtype=np.int64)
    buf[:n] = values
    levels = 0
    ops = 0
    # up-sweep (reduce)
    stride = 1
    while stride < m:
        idx = np.arange(2 * stride - 1, m, 2 * stride)
        buf[idx] += buf[idx - stride]
        levels += 1
        ops += int(idx.size)
        stride <<= 1
    # down-sweep
    buf[m - 1] = 0
    stride = m >> 1
    while stride >= 1:
        idx = np.arange(2 * stride - 1, m, 2 * stride)
        left = buf[idx - stride].copy()
        buf[idx - stride] = buf[idx]
        buf[idx] += left
        levels += 1
        ops += int(idx.size)
        stride >>= 1
    if work is not None:
        work.merge(ScanWork(n=n, levels=levels, element_ops=ops))
    out = buf[:n]
    if values.dtype.kind in "iu":
        return out.astype(values.dtype)
    return out


def inclusive_scan(values: np.ndarray, work: ScanWork | None = None) -> np.ndarray:
    """Inclusive prefix sum built on the exclusive scan."""
    values = np.asarray(values)
    ex = exclusive_scan(values, work)
    return ex + values


def segmented_exclusive_scan(
    values: np.ndarray, segment_heads: np.ndarray, work: ScanWork | None = None
) -> np.ndarray:
    """Exclusive scan restarting at each ``True`` in ``segment_heads``.

    Used by the combining pass to rank requests within each same-key run.
    Implemented as a global exclusive scan minus the scanned value carried
    into each segment — the standard GPU decomposition (two scans + gather).
    """
    values = np.asarray(values, dtype=np.int64)
    heads = np.asarray(segment_heads, dtype=bool)
    if values.size != heads.size:
        raise ValueError("values and segment_heads must have equal length")
    if values.size == 0:
        return values.copy()
    total = exclusive_scan(values, work)
    # value of the global scan at each segment's head, broadcast to members
    seg_id = inclusive_scan(heads.astype(np.int64), work) - 1
    head_idx = np.flatnonzero(heads)
    if head_idx.size == 0 or head_idx[0] != 0:
        raise ValueError("segment_heads[0] must be True")
    base = total[head_idx]
    return total - base[seg_id]


def segment_ids(segment_heads: np.ndarray, work: ScanWork | None = None) -> np.ndarray:
    """Map each element to the index of its segment (0-based)."""
    heads = np.asarray(segment_heads, dtype=np.int64)
    if heads.size == 0:
        return heads.copy()
    return inclusive_scan(heads, work) - 1

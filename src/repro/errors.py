"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError` so callers
can catch library failures without masking programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ConfigError(ReproError):
    """Raised when a configuration object is invalid or inconsistent."""


class MemoryError_(ReproError):
    """Raised on invalid arena accesses (out-of-bounds, exhausted arena).

    Named with a trailing underscore to avoid shadowing the builtin.
    """


class TreeError(ReproError):
    """Raised on structural B+tree failures (corrupt node, bad build input)."""


class TreeFullError(TreeError):
    """Raised when the node arena cannot allocate another node."""


class TransactionError(ReproError):
    """Raised on STM protocol misuse (e.g. commit without begin)."""


class TransactionAborted(TransactionError):
    """Control-flow signal: the current transaction hit a conflict.

    Thread programs catch this and retry; it is an expected event, not a
    failure, but it derives from :class:`TransactionError` so un-handled
    aborts surface loudly.
    """

    def __init__(self, reason: str = "conflict") -> None:
        super().__init__(reason)
        self.reason = reason


class LockError(ReproError):
    """Raised on latch protocol misuse (double release, foreign release)."""


class SimulationError(ReproError):
    """Raised when a SIMT thread program violates the simulator protocol."""


class WorkloadError(ReproError):
    """Raised for invalid workload specifications."""


class LinearizabilityViolation(ReproError):
    """Raised by the checker when concurrent results diverge from the
    sequential timestamp-order execution."""

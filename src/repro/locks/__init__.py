"""Fine-grained node latches for the Lock GB-tree baseline."""

from .latch import FREE, LatchTable, LockStats

__all__ = ["FREE", "LatchTable", "LockStats"]

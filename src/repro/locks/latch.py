"""Per-node spin latches (the Lock GB-tree concurrency substrate).

Each B+tree node reserves one lock word (``OFF_LOCK``); a latch is acquired
by CAS-ing it from 0 to the owner's id + 1 and released by storing 0. The
device plane spins one CAS per lockstep slot — a thread that loses the CAS
burns a control instruction and an atomic conflict, which is precisely the
contention signature Awad et al.'s design pays under write-heavy load.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import LockError
from ..memory import MemoryArena
from ..simt.instructions import BRANCH, AtomicCAS, Load, Store

FREE = 0


@dataclass
class LockStats:
    acquires: int = 0
    releases: int = 0
    spins: int = 0

    @property
    def contention_rate(self) -> float:
        return self.spins / self.acquires if self.acquires else 0.0

    def reset(self) -> None:
        self.acquires = 0
        self.releases = 0
        self.spins = 0

    def snapshot(self) -> "LockStats":
        return LockStats(self.acquires, self.releases, self.spins)

    def delta_since(self, earlier: "LockStats") -> "LockStats":
        return LockStats(
            self.acquires - earlier.acquires,
            self.releases - earlier.releases,
            self.spins - earlier.spins,
        )


class LatchTable:
    """Shared latch state + counters for one tree's node lock words."""

    def __init__(self, arena: MemoryArena, stats: LockStats | None = None) -> None:
        self.arena = arena
        self.stats = stats if stats is not None else LockStats()

    # ------------------------------------------------------------------ #
    # host plane (vector engine / tests)
    # ------------------------------------------------------------------ #
    def try_acquire(self, lock_addr: int, owner: int) -> bool:
        old = self.arena.atomic_cas(lock_addr, FREE, owner + 1)
        if old == FREE:
            self.stats.acquires += 1
            return True
        self.stats.spins += 1
        return False

    def release(self, lock_addr: int, owner: int) -> None:
        cur = int(self.arena.data[lock_addr])
        if cur != owner + 1:
            raise LockError(f"lock {lock_addr} held by {cur - 1}, not {owner}")
        self.arena.write(lock_addr, FREE, "lock")
        self.stats.releases += 1

    # ------------------------------------------------------------------ #
    # device plane (thread-program generators)
    # ------------------------------------------------------------------ #
    def d_acquire(self, lock_addr: int, owner: int):
        """Spin until the latch is ours; returns the number of failed spins."""
        spins = 0
        while True:
            old = yield AtomicCAS(lock_addr, FREE, owner + 1)
            yield BRANCH
            if old == FREE:
                self.stats.acquires += 1
                return spins
            spins += 1
            self.stats.spins += 1

    def d_release(self, lock_addr: int):
        yield Store(lock_addr, FREE)
        self.stats.releases += 1

    def d_is_locked(self, lock_addr: int):
        """Read the lock word (lock-free readers check this per node)."""
        val = yield Load(lock_addr)
        yield BRANCH
        return val != FREE

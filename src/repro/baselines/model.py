"""Vector-engine event model: tree/synchronization events → instructions,
transactions, conflicts and time.

The vector engine executes every *algorithm* for real (sorting, combining,
traversal, mutation) but does not interleave individual instructions, so
conflicts and per-access instruction counts are derived from counted events
with the expected-value formulas below. Three principles keep it honest:

1. every constant is **shared by all systems** — a system can only win by
   causing fewer events, never by a private fudge factor;
2. per-event instruction costs are *derived from the device programs* in
   :mod:`repro.btree.device_ops` (e.g. an STM read is 3 loads + 1 branch —
   ownership, version, data), so the SIMT engine and the vector engine
   agree structurally;
3. the conflict model uses one temporal-overlap probability ``OVERLAP``:
   two operations on the same leaf within one batch conflict with this
   probability. The SIMT engine measures the real value; EXPERIMENTS.md
   cross-checks them.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import DeviceConfig

#: probability that two same-leaf operations of one batch overlap in time.
OVERLAP = 0.5

#: average fraction of a warp access that becomes a distinct 128B memory
#: transaction (scattered tree walks coalesce poorly; sorted/combined
#: streams coalesce well — Eirene's sorted issue order uses the lower
#: bound, reflected in its measured SIMT transaction rate).
COALESCE_SCATTERED = 0.50
COALESCE_SORTED = 0.25


@dataclass(frozen=True)
class InstCost:
    """Instruction bundle for one event."""

    mem: float = 0.0
    ctrl: float = 0.0
    alu: float = 0.0
    atomic: float = 0.0

    def __mul__(self, k: float) -> "InstCost":
        return InstCost(self.mem * k, self.ctrl * k, self.alu * k, self.atomic * k)

    __rmul__ = __mul__

    def __add__(self, other: "InstCost") -> "InstCost":
        return InstCost(
            self.mem + other.mem,
            self.ctrl + other.ctrl,
            self.alu + other.alu,
            self.atomic + other.atomic,
        )


@dataclass(frozen=True)
class InstModel:
    """Per-event instruction costs for a tree of a given fanout.

    ``scan`` is the expected number of separator/key slots examined by the
    linear node scan in the device programs. Nodes sit at ~70% occupancy and
    the scan exits early at the expected match position, so the average is
    ``0.35 × fanout`` plus the exit probe — the constant is calibrated
    against SIMT measurements (``repro/simt/calibration.py``; see
    EXPERIMENTS.md).
    """

    fanout: int

    @property
    def scan(self) -> float:
        return self.fanout * 0.35 + 1

    # -- node visits ------------------------------------------------------ #
    @property
    def node_visit_plain(self) -> InstCost:
        """Unprotected visit: is_leaf + key scan + child load (d_find_leaf)."""
        return InstCost(mem=self.scan + 2, ctrl=self.scan + 1, alu=self.scan)

    @property
    def node_visit_ntg(self) -> InstCost:
        """Narrowed-thread-group visit (Harmonia, used by Eirene's query
        kernel per §7): a thread sub-group cooperatively loads the node's
        key row as one coalesced vector and reduces the child slot in
        log2(fanout) ballot steps — per request, the amortized cost is the
        row load (perfectly coalesced) plus the reduction."""
        import math

        return InstCost(
            mem=self.fanout / 4 + 1,  # row load amortized over the sub-group
            ctrl=math.log2(self.fanout) + 1,
            alu=math.log2(self.fanout),
        )

    @property
    def node_visit_stm(self) -> InstCost:
        """STM-protected visit: every word read is owner + version + data
        loads plus an ownership branch (DeviceStm.d_read)."""
        words = self.scan + 2
        return InstCost(mem=3 * words, ctrl=2 * words, alu=words)

    @property
    def node_visit_lock_validated(self) -> InstCost:
        """Reader visit in the lock design: latch probe, version before,
        scan, version after, latch after (d_node_scan_validated)."""
        return InstCost(mem=self.scan + 5, ctrl=self.scan + 4, alu=self.scan)

    @property
    def node_visit_coupling(self) -> InstCost:
        """Writer visit with latch crabbing: CAS acquire + release + scan."""
        return InstCost(mem=self.scan + 3, ctrl=self.scan + 3, alu=self.scan, atomic=1)

    # -- leaf operations --------------------------------------------------- #
    @property
    def leaf_lookup_plain(self) -> InstCost:
        return InstCost(mem=self.scan + 1, ctrl=self.scan + 1, alu=self.scan)

    @property
    def leaf_lookup_stm(self) -> InstCost:
        return InstCost(mem=3 * (self.scan + 1), ctrl=2 * (self.scan + 1), alu=self.scan)

    @property
    def leaf_update_stm(self) -> InstCost:
        """Transactional in-place leaf mutation: acquire count word, scan,
        write key+value, commit (validation loads + releases)."""
        words = self.scan + 4
        commit = InstCost(mem=2 * 3.0, ctrl=3.0, atomic=3.0)
        return InstCost(mem=3 * words, ctrl=2 * words, alu=words, atomic=1) + commit

    @property
    def leaf_update_locked(self) -> InstCost:
        return InstCost(mem=self.scan + 4, ctrl=self.scan + 3, alu=self.scan, atomic=1)

    @property
    def leaf_update_plain(self) -> InstCost:
        return InstCost(mem=self.scan + 3, ctrl=self.scan + 2, alu=self.scan)

    # -- synchronization overheads ----------------------------------------- #
    @property
    def tx_begin_commit_query(self) -> InstCost:
        """Commit-time validation for a read-only tx over a traversal."""
        return InstCost(mem=4.0, ctrl=4.0, alu=2.0)

    @property
    def abort_rollback(self) -> InstCost:
        """Undo-log rollback + ownership release on abort."""
        return InstCost(mem=8.0, ctrl=4.0, alu=4.0)

    @property
    def lock_spin(self) -> InstCost:
        """One failed latch CAS + branch."""
        return InstCost(ctrl=1.0, atomic=1.0)

    @property
    def split_smo(self) -> InstCost:
        """Structure-modification path: plan acquire, data movement,
        version invalidation over ~2 nodes (device d_smo_upsert)."""
        words = 2 * (2 * self.fanout + 7)
        return InstCost(mem=words, ctrl=words / 2, alu=words / 2, atomic=words)


@dataclass
class EventTotals:
    """Accumulated instruction/transaction totals for one batch phase."""

    mem: float = 0.0
    ctrl: float = 0.0
    alu: float = 0.0
    atomic: float = 0.0
    transactions: float = 0.0
    conflicts: float = 0.0

    def add(self, cost: InstCost, count: float = 1.0, coalesce: float = COALESCE_SCATTERED):
        self.mem += cost.mem * count
        self.ctrl += cost.ctrl * count
        self.alu += cost.alu * count
        self.atomic += cost.atomic * count
        self.transactions += (cost.mem * coalesce + cost.atomic) * count

    def merge(self, other: "EventTotals") -> None:
        self.mem += other.mem
        self.ctrl += other.ctrl
        self.alu += other.alu
        self.atomic += other.atomic
        self.transactions += other.transactions
        self.conflicts += other.conflicts

    @property
    def thread_inst(self) -> float:
        return self.mem + self.ctrl + self.alu + self.atomic


def phase_seconds(totals: EventTotals, device: DeviceConfig) -> float:
    """Device time for a phase: the slower of compute and memory sides.

    Compute: thread instructions retire ``num_sms × warp_size`` wide.
    Memory: transactions are bounded by device bandwidth.
    """
    t_compute = totals.thread_inst * device.cycles_per_inst / (
        device.thread_slots * device.clock_hz
    )
    t_memory = totals.transactions / device.mem_transactions_per_second
    return max(t_compute, t_memory)


def writer_collision_groups(leaves: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Per element: (group size of its leaf, rank within its leaf group).

    Rank follows array order (= timestamp order), so earlier requests get
    lower retry ranks — the deterministic stand-in for 'who wins the race'.
    """
    if leaves.size == 0:
        return np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64)
    order = np.argsort(leaves, kind="stable")
    sorted_leaves = leaves[order]
    heads = np.empty(leaves.size, dtype=bool)
    heads[0] = True
    np.not_equal(sorted_leaves[1:], sorted_leaves[:-1], out=heads[1:])
    head_pos = np.flatnonzero(heads)
    run_id = np.cumsum(heads) - 1
    lengths = np.diff(np.append(head_pos, leaves.size))
    rank_sorted = np.arange(leaves.size) - head_pos[run_id]
    size = np.empty(leaves.size, dtype=np.int64)
    rank = np.empty(leaves.size, dtype=np.int64)
    size[order] = lengths[run_id]
    rank[order] = rank_sorted
    return size, rank

"""System interface: every tree under test processes batches through this.

A *system* owns a :class:`~repro.btree.BPlusTree` plus its concurrency
machinery and turns request batches into :class:`BatchOutcome`s through one
of two engines:

* ``engine="simt"`` — thread programs on the lockstep simulator; measured
  instructions, real interleaving, real conflicts. Scales to ~10⁴ requests.
* ``engine="vector"`` — numpy batch execution of the same algorithms with
  the expected-value event model of :mod:`repro.baselines.model`. Scales to
  ~10⁶ requests; used for throughput sweeps.

Both engines mutate the same underlying tree, so multi-batch epochs evolve
state identically regardless of engine choice.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

import numpy as np

from ..config import DeviceConfig
from ..device import DeviceContext
from ..errors import ConfigError
from ..lincheck import SequentialReference
from ..metrics import (
    InstructionProfile,
    ResponseTimeStats,
    ThroughputResult,
    response_time_stats,
)
from ..metrics.trace import PipelineTrace, merge_traces
from ..simt import KernelCounters, PhaseTime
from ..btree.tree import BPlusTree
from ..workloads.requests import BatchResults, RequestBatch
from .model import EventTotals, InstModel


@dataclass
class BatchOutcome:
    """Everything measured while processing one batch."""

    system: str
    results: BatchResults
    n_requests: int
    seconds: float
    phase: PhaseTime
    #: per-request response time (seconds); the paper's QoS metric source
    response_time_s: np.ndarray
    mem_inst: float = 0.0
    control_inst: float = 0.0
    alu_inst: float = 0.0
    atomic_inst: float = 0.0
    transactions: float = 0.0
    conflicts: float = 0.0
    #: average tree-traversal steps per issued request (Fig. 10)
    traversal_steps: float = 0.0
    #: raw SIMT counters when engine="simt"
    counters: KernelCounters | None = None
    #: per-pass breakdown of the pipeline run that produced this outcome;
    #: its modeled pass seconds sum to ``seconds``
    trace: PipelineTrace | None = None
    extras: dict = field(default_factory=dict)

    @property
    def throughput(self) -> ThroughputResult:
        return ThroughputResult(requests=self.n_requests, seconds=self.seconds)

    @property
    def mem_inst_per_request(self) -> float:
        return self.mem_inst / self.n_requests if self.n_requests else 0.0

    @property
    def control_inst_per_request(self) -> float:
        return self.control_inst / self.n_requests if self.n_requests else 0.0

    @property
    def conflicts_per_request(self) -> float:
        return self.conflicts / self.n_requests if self.n_requests else 0.0

    def response_stats(self) -> ResponseTimeStats:
        return response_time_stats(self.response_time_s)

    def profile(self) -> InstructionProfile:
        return InstructionProfile(
            system=self.system,
            n_requests=self.n_requests,
            mem_inst=self.mem_inst_per_request,
            control_inst=self.control_inst_per_request,
            alu_inst=self.alu_inst / max(self.n_requests, 1),
            atomic_inst=self.atomic_inst / max(self.n_requests, 1),
            conflicts=self.conflicts_per_request,
            traversal_steps=self.traversal_steps,
        )


def merge_outcomes(outcomes: list[BatchOutcome]) -> BatchOutcome:
    """Aggregate several batches of one system into one outcome.

    Results are dropped (they belong to their batches); metrics accumulate.
    """
    if not outcomes:
        raise ValueError("no outcomes to merge")
    first = outcomes[0]
    total_req = sum(o.n_requests for o in outcomes)
    out = BatchOutcome(
        system=first.system,
        results=BatchResults.empty(0),
        n_requests=total_req,
        seconds=sum(o.seconds for o in outcomes),
        phase=PhaseTime(
            sort=sum(o.phase.sort for o in outcomes),
            combine=sum(o.phase.combine for o in outcomes),
            query_kernel=sum(o.phase.query_kernel for o in outcomes),
            update_kernel=sum(o.phase.update_kernel for o in outcomes),
            result_cal=sum(o.phase.result_cal for o in outcomes),
            other=sum(o.phase.other for o in outcomes),
        ),
        response_time_s=np.concatenate([o.response_time_s for o in outcomes]),
        mem_inst=sum(o.mem_inst for o in outcomes),
        control_inst=sum(o.control_inst for o in outcomes),
        alu_inst=sum(o.alu_inst for o in outcomes),
        atomic_inst=sum(o.atomic_inst for o in outcomes),
        transactions=sum(o.transactions for o in outcomes),
        conflicts=sum(o.conflicts for o in outcomes),
        traversal_steps=float(
            np.average(
                [o.traversal_steps for o in outcomes],
                weights=[o.n_requests for o in outcomes],
            )
        ),
        trace=merge_traces([o.trace for o in outcomes]),
    )
    return out


def simt_response_times(counters: KernelCounters, seconds: float, n: int) -> np.ndarray:
    """Per-request response times from measured service steps.

    The average response time is ``batch time / batch size`` (the paper's
    definition — 0.41 ns at 2.4 G req/s); each request deviates from it in
    proportion to its own measured service time (lockstep slots between its
    lane's Marks), so retry-heavy requests respond late and conflict-free
    batches respond uniformly.
    """
    service = counters.service_steps.astype(np.float64)
    valid = np.isfinite(service)
    mean = float(service[valid].mean()) if valid.any() else 1.0
    ratio = np.where(valid & (mean > 0), service / max(mean, 1e-12), 1.0)
    return (seconds / n) * ratio


class System(abc.ABC):
    """A concurrent GPU B+tree under test.

    Batch processing runs through the pass pipeline
    (:mod:`repro.core.pipeline`): a system is characterized entirely by the
    pass list its :meth:`build_pipeline` assembles per engine.
    """

    name: str = "abstract"

    def __init__(
        self,
        tree: BPlusTree,
        device: DeviceConfig | None = None,
        devctx: DeviceContext | None = None,
    ) -> None:
        if devctx is None:
            # legacy construction path: wrap the tree's arena in a context
            devctx = DeviceContext.adopt(tree.arena, device)
        elif devctx.arena is not tree.arena:
            raise ConfigError("devctx must own the arena the tree lives in")
        elif device is not None and device != devctx.device:
            raise ConfigError("device config disagrees with devctx.device")
        self.devctx = devctx
        self.tree = tree
        self.device = devctx.device
        self.imodel = InstModel(tree.layout.fanout)

    def process_batch(self, batch: RequestBatch, engine: str = "vector") -> BatchOutcome:
        """Process one buffered batch through the pass pipeline; mutates the
        tree. The returned outcome carries a per-pass ``trace``."""
        if engine not in ("vector", "simt"):
            raise ConfigError(f"unknown engine {engine!r}; use 'vector' or 'simt'")
        # local import: core.pipeline is a downstream module (the concrete
        # system passes live next to the systems), imported lazily here to
        # keep base importable on its own
        from ..core.pipeline import run_pipeline

        return run_pipeline(self, batch, engine)

    @abc.abstractmethod
    def build_pipeline(self, engine: str):
        """Assemble this system's pass list for ``engine``.

        Returns a :class:`repro.core.pipeline.PassPipeline`.
        """
        raise NotImplementedError

    # ------------------------------------------------------------------ #
    # shared helpers
    # ------------------------------------------------------------------ #
    def _launch_rng(self, batch: RequestBatch) -> np.random.Generator:
        """Warp-scheduling rng, seeded from the batch contents: runs are
        reproducible, but scheduling varies across batches like a real warp
        scheduler varies across launches."""
        head = batch.keys[: min(batch.n, 32)]
        seed = int(np.bitwise_xor.reduce(head) % (2**63 - 1)) + batch.n
        return np.random.default_rng(seed)

    def _apply_in_timestamp_order(self, batch: RequestBatch) -> BatchResults:
        """Functionally execute the batch against the tree in arrival order.

        This is the vector engine's state-evolution path: mutations land in
        the tree (splits included, so structural statistics stay honest) and
        the returned results follow arrival order. The *scheduling-induced*
        result deviations of the baselines only materialize in the SIMT
        engine, which genuinely interleaves requests.
        """
        from .._types import NULL_VALUE, OpKind

        results = BatchResults.empty(batch.n)
        ranges: dict[int, tuple[np.ndarray, np.ndarray]] = {}
        tree = self.tree
        for i in range(batch.n):
            kind = batch.kinds[i]
            key = int(batch.keys[i])
            if kind == OpKind.QUERY:
                results.values[i] = tree.search(key)
            elif kind in (OpKind.UPDATE, OpKind.INSERT):
                results.values[i] = tree.upsert(key, int(batch.values[i]))
            elif kind == OpKind.DELETE:
                results.values[i] = tree.delete(key)
            elif kind == OpKind.RANGE:
                ranges[i] = tree.range_scan(key, int(batch.range_ends[i]))
            else:  # pragma: no cover
                results.values[i] = NULL_VALUE
        results.set_range_results(ranges)
        return results

    def reference_for_tree(self) -> SequentialReference:
        """Sequential reference seeded with the tree's current contents."""
        keys, values = self.tree.items()
        return SequentialReference(keys, values)

    def _outcome_from_totals(
        self,
        batch: RequestBatch,
        results: BatchResults,
        totals: EventTotals,
        phase: PhaseTime,
        response_time_s: np.ndarray,
        traversal_steps: float,
        extras: dict | None = None,
    ) -> BatchOutcome:
        return BatchOutcome(
            system=self.name,
            results=results,
            n_requests=batch.n,
            seconds=phase.total,
            phase=phase,
            response_time_s=response_time_s,
            mem_inst=totals.mem,
            control_inst=totals.ctrl,
            alu_inst=totals.alu,
            atomic_inst=totals.atomic,
            transactions=totals.transactions,
            conflicts=totals.conflicts,
            traversal_steps=traversal_steps,
            extras=extras or {},
        )

"""Baseline systems: no-CC reference, STM GB-tree, Lock GB-tree."""

from .base import BatchOutcome, System, merge_outcomes
from .lock_gbtree import LockGBTree
from .model import (
    COALESCE_SCATTERED,
    COALESCE_SORTED,
    OVERLAP,
    EventTotals,
    InstCost,
    InstModel,
    phase_seconds,
    writer_collision_groups,
)
from .nocc import NoCCGBTree
from .stm_gbtree import StmGBTree

__all__ = [
    "BatchOutcome",
    "COALESCE_SCATTERED",
    "COALESCE_SORTED",
    "EventTotals",
    "InstCost",
    "InstModel",
    "LockGBTree",
    "NoCCGBTree",
    "OVERLAP",
    "StmGBTree",
    "System",
    "merge_outcomes",
    "phase_seconds",
    "writer_collision_groups",
]

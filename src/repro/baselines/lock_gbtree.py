"""Lock GB-tree baseline (Awad et al., PPoPP'19).

Fine-grained per-node latches: writers descend with latch crabbing (hold
the parent until the child is latched and non-full, so split targets are
always held), readers traverse lock-free but validate each node against its
latch word and version, restarting from the root on interference. Memory
overhead per request is small (one latch word per node visited — the
paper's 1.12×); control overhead is large (spin loops and validation
branches — the paper's 2.85×).

Pipeline: one latched kernel pass plus the shared apply/response/finalize
passes.
"""

from __future__ import annotations

import numpy as np

from .._types import OpKind, is_update_kind_array
from ..btree import batch_find_leaf
from ..btree.device_ops import (
    d_find_leaf_coupling,
    d_find_leaf_locked_query,
    d_leaf_covers,
    d_leaf_delete_device,
    d_leaf_upsert_device,
    d_leaf_upsert_locked,
    d_release_all,
    d_search_leaf,
)
from ..btree.tree import BPlusTree
from ..config import DeviceConfig
from ..core.pipeline import (
    FinalizePass,
    HostApplyPass,
    Pass,
    PassPipeline,
    PipelineContext,
    SimtResponsePass,
    WeightedResponsePass,
)
from ..locks import LatchTable
from ..simt import BRANCH, Load, Mark
from .base import System
from .model import OVERLAP, EventTotals, writer_collision_groups

#: expected latch-hold length in issue slots (drives expected spins in the
#: vector model; the SIMT engine measures the real value).
HOLD_SLOTS = 24.0


class LockChargePass(Pass):
    """Vector engine: latch-spin / reader-restart collision model."""

    name = "kernel"

    def run(self, ctx: PipelineContext) -> None:
        batch = ctx.batch
        im = ctx.imodel
        tree = ctx.tree
        totals = ctx.totals
        height = tree.height
        n = ctx.n

        q_mask = batch.kinds == OpKind.QUERY
        w_mask = is_update_kind_array(batch.kinds)
        point = batch.kinds != OpKind.RANGE
        point_idx = np.flatnonzero(point)
        leaves = np.zeros(n, dtype=np.int64)
        if point_idx.size:
            leaves[point_idx], _ = batch_find_leaf(tree, batch.keys[point_idx])

        w_idx = np.flatnonzero(w_mask)
        _, w_rank = writer_collision_groups(leaves[w_idx])
        writers_on_leaf = (
            np.bincount(leaves[w_idx], minlength=tree.max_nodes)
            if w_idx.size
            else np.zeros(tree.max_nodes, dtype=np.int64)
        )

        # writers spin while earlier same-leaf writers hold the leaf latch
        spins = np.zeros(n, dtype=np.float64)
        spins[w_idx] = OVERLAP * w_rank * HOLD_SLOTS
        # readers re-validate nodes a writer touched (restart from root)
        q_idx = np.flatnonzero(q_mask)
        reader_restarts = OVERLAP * 0.25 * writers_on_leaf[leaves[q_idx]]

        base_q = height * im.node_visit_lock_validated + im.leaf_lookup_plain
        base_w = height * im.node_visit_coupling + im.leaf_update_locked
        nq, nw = int(q_idx.size), int(w_idx.size)
        totals.add(base_q, count=nq)
        totals.add(base_w, count=nw)
        totals.add(im.lock_spin, count=float(spins.sum()))
        totals.add(base_q, count=float(reader_restarts.sum()))

        work = np.zeros(n, dtype=np.float64)
        bq = base_q.mem + base_q.ctrl + base_q.alu
        bw = base_w.mem + base_w.ctrl + base_w.alu
        work[q_idx] = bq * (1 + reader_restarts)
        work[w_idx] = bw + spins[w_idx] * 2

        range_idx = np.flatnonzero(batch.kinds == OpKind.RANGE)
        if range_idx.size:
            spans = _range_spans(tree, batch, range_idx)
            totals.add(height * im.node_visit_lock_validated, count=int(range_idx.size))
            totals.add(im.leaf_lookup_plain + im.lock_spin * 0.5, count=int(spans.sum()))
            work[range_idx] = (
                height * im.node_visit_lock_validated.mem + spans * im.leaf_lookup_plain.mem
            ) * 2

        # a 'conflict' in the lock design is a failed latch CAS or a reader
        # restart — what the paper's conflict counts compare across systems
        totals.conflicts = float(spins.sum() + reader_restarts.sum())
        ctx.art["work"] = work
        ctx.extras["spins"] = spins
        ctx.traversal_steps = float(height)
        ctx.roofline_phase("query_kernel")


class LockSimtKernelPass(Pass):
    """SIMT engine: latched writer / validated reader programs."""

    name = "kernel"

    def run(self, ctx: PipelineContext) -> None:
        system = ctx.system
        batch = ctx.batch
        tree = ctx.tree
        latches = system.latches
        n = ctx.n
        results = ctx.results
        ranges: dict[int, tuple[list[int], list[int]]] = {}
        steps_taken = np.zeros(n, dtype=np.int64)
        lock_before = latches.stats.snapshot()

        def make_program(i: int):
            kind = int(batch.kinds[i])
            key = int(batch.keys[i])
            value = int(batch.values[i])
            hi = int(batch.range_ends[i])

            def program():
                if kind == OpKind.QUERY:
                    leaf, steps = yield from d_find_leaf_locked_query(tree, latches, key)
                    steps_taken[i] = steps
                    val = yield from d_search_leaf(tree, leaf, key)
                    results.values[i] = val
                elif kind in (OpKind.UPDATE, OpKind.INSERT, OpKind.DELETE):
                    old, steps = yield from _d_update_locked(
                        tree, latches, kind, key, value, i
                    )
                    steps_taken[i] = steps
                    results.values[i] = old
                elif kind == OpKind.RANGE:
                    leaf, steps = yield from d_find_leaf_locked_query(tree, latches, key)
                    steps_taken[i] = steps
                    ks, vs = yield from _d_range_scan_locked(tree, latches, leaf, key, hi)
                    ranges[i] = (ks, vs)
                yield Mark(i)

            return program()

        launch = ctx.devctx.launch(n, rng=ctx.launch_rng())
        launch.add_programs([make_program(i) for i in range(n)])
        counters = launch.run()
        results.set_range_results(
            {
                i: (np.array(ks, dtype=np.int64), np.array(vs, dtype=np.int64))
                for i, (ks, vs) in ranges.items()
            }
        )
        lock_delta = latches.stats.delta_since(lock_before)

        ctx.counters = counters
        ctx.totals.merge(
            EventTotals(
                mem=counters.mem_inst,
                ctrl=counters.control_inst,
                alu=counters.alu_inst,
                atomic=counters.atomic_inst,
                transactions=counters.transactions,
                conflicts=float(lock_delta.spins),
            )
        )
        ctx.phase.query_kernel = ctx.device.cycles_to_seconds(counters.cycles)
        ctx.traversal_steps = float(steps_taken.mean()) if n else 0.0
        ctx.extras["locks"] = lock_delta


class LockGBTree(System):
    """Concurrent GPU B+tree with fine-grained node latches."""

    name = "Lock GB-tree"

    def __init__(
        self,
        tree: BPlusTree,
        device: DeviceConfig | None = None,
        devctx=None,
    ) -> None:
        super().__init__(tree, device, devctx)
        self.latches = LatchTable(tree.arena)

    def build_pipeline(self, engine: str) -> PassPipeline:
        if engine == "vector":
            passes = [
                LockChargePass(),
                # no ownership storm, latched split
                HostApplyPass(split_cost_factor=0.6),
                WeightedResponsePass(),
                FinalizePass(),
            ]
        else:
            passes = [LockSimtKernelPass(), SimtResponsePass(), FinalizePass()]
        return PassPipeline(passes, name=f"lock/{engine}")


def _range_spans(tree: BPlusTree, batch, range_idx: np.ndarray) -> np.ndarray:
    lo_leaves, _ = batch_find_leaf(tree, batch.keys[range_idx])
    hi_leaves, _ = batch_find_leaf(tree, batch.range_ends[range_idx])
    index_of = {leaf: i for i, leaf in enumerate(tree.leaf_ids())}
    return np.array(
        [index_of[int(h)] - index_of[int(l)] + 1 for l, h in zip(lo_leaves, hi_leaves)],
        dtype=np.int64,
    )


def _d_update_locked(tree: BPlusTree, latches: LatchTable, kind: int, key: int, value: int, owner: int):
    """Writer path of the lock design: optimistic validated descent, latch
    only the target leaf, mutate in place; fall back to full latch crabbing
    only when a split is needed (the child-safety path splits then).

    Returns (old value, traversal steps of the final successful attempt).
    """
    while True:
        leaf, steps = yield from d_find_leaf_locked_query(tree, latches, key)
        lock = tree.views.addrs(leaf).lock
        yield from latches.d_acquire(lock, owner)
        covers = yield from d_leaf_covers(tree, leaf, key)
        yield BRANCH
        if not covers:
            yield from latches.d_release(lock)
            continue  # a split moved the key range: retry descent
        if kind == OpKind.DELETE:
            old = yield from d_leaf_delete_device(tree, leaf, key)
            yield from latches.d_release(lock)
            return old, steps
        old, needs_split = yield from d_leaf_upsert_device(tree, leaf, key, value)
        yield from latches.d_release(lock)
        yield BRANCH
        if not needs_split:
            return old, steps
        # split path: latch-crabbing descent holds every unsafe ancestor
        leaf2, steps2, held = yield from d_find_leaf_coupling(tree, latches, key, owner)
        old = yield from d_leaf_upsert_locked(tree, latches, held, leaf2, key, value)
        yield from d_release_all(tree, latches, held)
        return old, steps + steps2


def _d_range_scan_locked(tree: BPlusTree, latches: LatchTable, leaf: int, lo: int, hi: int):
    """Leaf-chain scan with per-leaf latch/version validation (retry leaf)."""
    ks: list[int] = []
    vs: list[int] = []
    node = leaf
    while True:
        a = tree.views.addrs(node)
        while True:  # validated read of one leaf
            locked = yield from latches.d_is_locked(a.lock)
            if locked:
                continue
            ver = yield Load(a.version)
            cnt = yield Load(a.count)
            yield BRANCH
            tmp_k: list[int] = []
            tmp_v: list[int] = []
            done = False
            for slot in range(cnt):
                k = yield Load(a.keys[slot])
                yield BRANCH
                if k > hi:
                    done = True
                    break
                if k >= lo:
                    v = yield Load(a.values[slot])
                    tmp_k.append(int(k))
                    tmp_v.append(int(v))
            nxt = yield Load(a.next_leaf)
            ver2 = yield Load(a.version)
            yield BRANCH
            if ver2 == ver:
                ks.extend(tmp_k)
                vs.extend(tmp_v)
                break
        if done or nxt == -1:
            return ks, vs
        node = nxt

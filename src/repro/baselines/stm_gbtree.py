"""STM GB-tree baseline (Holey & Zhai, ICPP'14).

Every request — query, update, range — executes as one eager transaction
covering its whole tree traversal and leaf operation. This is the paper's
high-overhead baseline: each transactional word read costs three loads
(ownership, version, data), commits re-validate the read set, and any
overlap with a writer aborts and restarts the whole request. Splits go
through the structure-modification path of
:func:`repro.btree.device_ops.d_smo_upsert`.

Pipeline: one whole-operation transactional kernel pass plus the shared
apply/response/finalize passes.
"""

from __future__ import annotations

import numpy as np

from .._types import OpKind, is_update_kind_array
from ..btree import batch_find_leaf
from ..btree.device_ops import (
    d_find_leaf_stm,
    d_leaf_delete_stm,
    d_leaf_upsert_stm,
    d_search_leaf_stm,
    d_smo_upsert,
)
from ..btree.tree import BPlusTree
from ..config import DeviceConfig
from ..core.pipeline import (
    FinalizePass,
    HostApplyPass,
    Pass,
    PassPipeline,
    PipelineContext,
    SimtResponsePass,
    WeightedResponsePass,
)
from ..errors import SimulationError, TransactionAborted
from ..simt import BRANCH, Mark
from ..stm import DeviceStm, StmRegion
from .base import System
from .model import OVERLAP, EventTotals, writer_collision_groups

#: fraction of a writer's window a (shorter) read-only tx is exposed to.
READER_EXPOSURE = 0.5

#: give up after this many aborts of one request (livelock guard).
MAX_RETRIES = 10_000


class StmChargePass(Pass):
    """Vector engine: whole-operation STM collision model + work charges."""

    name = "kernel"

    def run(self, ctx: PipelineContext) -> None:
        batch = ctx.batch
        im = ctx.imodel
        tree = ctx.tree
        totals = ctx.totals
        height = tree.height
        n = ctx.n

        point = batch.kinds != OpKind.RANGE
        q_mask = (batch.kinds == OpKind.QUERY)
        w_mask = is_update_kind_array(batch.kinds)
        point_idx = np.flatnonzero(point)
        leaves = np.zeros(n, dtype=np.int64)
        if point_idx.size:
            leaves[point_idx], _ = batch_find_leaf(tree, batch.keys[point_idx])

        # expected aborts: writers serialize per leaf; readers are exposed
        # to every writer of their leaf for a fraction of its window
        w_idx = np.flatnonzero(w_mask)
        _, w_rank = writer_collision_groups(leaves[w_idx])
        writers_on_leaf = np.bincount(
            leaves[w_idx], minlength=tree.max_nodes
        ) if w_idx.size else np.zeros(tree.max_nodes, dtype=np.int64)
        retries = np.zeros(n, dtype=np.float64)
        retries[w_idx] = OVERLAP * w_rank
        q_idx = np.flatnonzero(q_mask)
        retries[q_idx] = OVERLAP * READER_EXPOSURE * writers_on_leaf[leaves[q_idx]]

        base_q = height * im.node_visit_stm + im.leaf_lookup_stm + im.tx_begin_commit_query
        base_w = height * im.node_visit_stm + im.leaf_update_stm
        work = np.zeros(n, dtype=np.float64)  # thread instructions per request

        nq, nw = int(q_idx.size), int(w_idx.size)
        totals.add(base_q, count=nq)
        totals.add(base_w, count=nw)
        # retried work: queries redo ~half a traversal, writers redo the
        # traversal plus rollback
        retry_q = 0.5 * base_q
        retry_w = 0.7 * base_w + im.abort_rollback
        totals.add(retry_q, count=float(retries[q_idx].sum()))
        totals.add(retry_w, count=float(retries[w_idx].sum()))
        work[q_idx] = base_q.mem + base_q.ctrl + base_q.alu + retries[q_idx] * (
            retry_q.mem + retry_q.ctrl + retry_q.alu
        )
        work[w_idx] = base_w.mem + base_w.ctrl + base_w.alu + retries[w_idx] * (
            retry_w.mem + retry_w.ctrl + retry_w.alu
        )

        # ranges: transactional scan over the spanned leaf chain
        range_idx = np.flatnonzero(batch.kinds == OpKind.RANGE)
        if range_idx.size:
            spans = _range_spans(tree, batch, range_idx)
            base_r = height * im.node_visit_stm + im.tx_begin_commit_query
            totals.add(base_r, count=int(range_idx.size))
            totals.add(im.leaf_lookup_stm, count=int(spans.sum()))
            r_retries = OVERLAP * READER_EXPOSURE * writers_on_leaf.mean() * spans
            retries[range_idx] = r_retries
            totals.add(retry_q, count=float(r_retries.sum()))
            work[range_idx] = (
                base_r.mem + base_r.ctrl + spans * im.leaf_lookup_stm.mem
            ) * (1 + r_retries)

        totals.conflicts = float(retries.sum())
        ctx.art["work"] = work
        ctx.extras["retries"] = retries
        ctx.traversal_steps = float(height)
        ctx.roofline_phase("query_kernel")


class StmSimtKernelPass(Pass):
    """SIMT engine: whole-operation eager transactions, abort & restart."""

    name = "kernel"

    def run(self, ctx: PipelineContext) -> None:
        system = ctx.system
        batch = ctx.batch
        tree = ctx.tree
        stm = system.stm
        n = ctx.n
        results = ctx.results
        ranges: dict[int, tuple[list[int], list[int]]] = {}
        steps_taken = np.zeros(n, dtype=np.int64)
        retries = np.zeros(n, dtype=np.int64)
        stm_before = stm.stats.snapshot()

        def make_program(i: int):
            kind = int(batch.kinds[i])
            key = int(batch.keys[i])
            value = int(batch.values[i])
            hi = int(batch.range_ends[i])

            def program():
                while True:
                    if retries[i] > MAX_RETRIES:
                        raise SimulationError(f"request {i} livelocked")
                    tx = stm.begin()
                    try:
                        leaf, steps = yield from d_find_leaf_stm(tree, stm, tx, key)
                        steps_taken[i] = steps
                        if kind == OpKind.QUERY:
                            val = yield from d_search_leaf_stm(tree, stm, tx, leaf, key)
                            yield from stm.d_commit(tx)
                            results.values[i] = val
                        elif kind in (OpKind.UPDATE, OpKind.INSERT):
                            old, needs_split = yield from d_leaf_upsert_stm(
                                tree, stm, tx, leaf, key, value
                            )
                            yield BRANCH
                            if needs_split:
                                yield from stm.d_abort(tx, counted=False)
                                old = yield from d_smo_upsert(
                                    tree, stm, system.smo_lock_addr, i, key, value
                                )
                            else:
                                yield from stm.d_commit(tx)
                            results.values[i] = old
                        elif kind == OpKind.DELETE:
                            old = yield from d_leaf_delete_stm(tree, stm, tx, leaf, key)
                            yield from stm.d_commit(tx)
                            results.values[i] = old
                        elif kind == OpKind.RANGE:
                            ks, vs = yield from _d_range_scan_stm(tree, stm, tx, leaf, key, hi)
                            yield from stm.d_commit(tx)
                            ranges[i] = (ks, vs)
                        yield Mark(i)
                        return
                    except TransactionAborted:
                        retries[i] += 1
                        continue

            return program()

        launch = ctx.devctx.launch(n, rng=ctx.launch_rng())
        launch.add_programs([make_program(i) for i in range(n)])
        counters = launch.run()
        results.set_range_results(
            {
                i: (np.array(ks, dtype=np.int64), np.array(vs, dtype=np.int64))
                for i, (ks, vs) in ranges.items()
            }
        )
        stm_delta = stm.stats.delta_since(stm_before)

        ctx.counters = counters
        ctx.totals.merge(
            EventTotals(
                mem=counters.mem_inst,
                ctrl=counters.control_inst,
                alu=counters.alu_inst,
                atomic=counters.atomic_inst,
                transactions=counters.transactions,
                conflicts=float(stm_delta.conflicts),
            )
        )
        ctx.phase.query_kernel = ctx.device.cycles_to_seconds(counters.cycles)
        ctx.traversal_steps = float(steps_taken.mean()) if n else 0.0
        ctx.extras["retries"] = retries
        ctx.extras["stm"] = stm_delta


class StmGBTree(System):
    """Concurrent GPU B+tree protected by whole-operation eager STM."""

    name = "STM GB-tree"

    def __init__(
        self,
        tree: BPlusTree,
        stm_region: StmRegion,
        smo_lock_addr: int,
        device: DeviceConfig | None = None,
        devctx=None,
    ) -> None:
        super().__init__(tree, device, devctx)
        self.stm = DeviceStm(tree.arena, stm_region)
        self.smo_lock_addr = smo_lock_addr

    def build_pipeline(self, engine: str) -> PassPipeline:
        if engine == "vector":
            passes = [
                StmChargePass(),
                HostApplyPass(split_cost_factor=1.0),
                WeightedResponsePass(),
                FinalizePass(),
            ]
        else:
            passes = [StmSimtKernelPass(), SimtResponsePass(), FinalizePass()]
        return PassPipeline(passes, name=f"stm/{engine}")


def _range_spans(tree: BPlusTree, batch, range_idx: np.ndarray) -> np.ndarray:
    lo_leaves, _ = batch_find_leaf(tree, batch.keys[range_idx])
    hi_leaves, _ = batch_find_leaf(tree, batch.range_ends[range_idx])
    index_of = {leaf: i for i, leaf in enumerate(tree.leaf_ids())}
    return np.array(
        [index_of[int(h)] - index_of[int(l)] + 1 for l, h in zip(lo_leaves, hi_leaves)],
        dtype=np.int64,
    )


def _d_range_scan_stm(tree: BPlusTree, stm: DeviceStm, tx, leaf: int, lo: int, hi: int):
    """Transactional leaf-chain scan collecting pairs in [lo, hi]."""
    ks: list[int] = []
    vs: list[int] = []
    node = leaf
    while True:
        a = tree.views.addrs(node)
        cnt = yield from stm.d_read(tx, a.count)
        yield BRANCH
        done = False
        for slot in range(cnt):
            k = yield from stm.d_read(tx, a.keys[slot])
            yield BRANCH
            if k > hi:
                done = True
                break
            if k >= lo:
                v = yield from stm.d_read(tx, a.values[slot])
                ks.append(int(k))
                vs.append(int(v))
        nxt = yield from stm.d_read(tx, a.next_leaf)
        yield BRANCH
        if done or nxt == -1:
            return ks, vs
        node = nxt

"""GB-tree without concurrency control — the "ideal" profiling reference.

The first bar of the paper's Fig. 1: the same B+tree and kernels with all
conflict detection/resolution removed. It is *not* a correct concurrent
structure (the paper uses it only as the lower bound on per-request work);
in the SIMT engine its mutations execute through the instantaneous host
path, so the tree never corrupts, while the charged instruction stream is
the unsynchronized one.
"""

from __future__ import annotations

import numpy as np

from .._types import OpKind, is_update_kind_array
from ..btree import batch_find_leaf
from ..btree.device_ops import d_find_leaf, d_search_leaf, d_walk_leaves
from ..simt import KernelLaunch, Mark, PhaseTime, Store
from ..workloads.requests import BatchResults, RequestBatch
from .base import BatchOutcome, System, simt_response_times
from .model import EventTotals, phase_seconds


class NoCCGBTree(System):
    """B+tree kernels with no synchronization (profiling reference)."""

    name = "GB-tree w/o concurrent control"

    # ------------------------------------------------------------------ #
    # vector engine
    # ------------------------------------------------------------------ #
    def _process_vector(self, batch: RequestBatch) -> BatchOutcome:
        im = self.imodel
        totals = EventTotals()
        point = batch.kinds != OpKind.RANGE
        q_mask = batch.kinds == OpKind.QUERY
        w_mask = is_update_kind_array(batch.kinds)
        n_point = int(point.sum())
        height = self.tree.height

        # every point request descends root→leaf and touches its leaf
        totals.add(im.node_visit_plain, count=n_point * height)
        totals.add(im.leaf_lookup_plain, count=int(q_mask.sum()))
        totals.add(im.leaf_update_plain, count=int(w_mask.sum()))

        # ranges: descent plus the spanned leaf chain
        range_idx = np.flatnonzero(batch.kinds == OpKind.RANGE)
        span_total = 0
        if range_idx.size:
            lo_leaves, _ = batch_find_leaf(self.tree, batch.keys[range_idx])
            hi_leaves, _ = batch_find_leaf(self.tree, batch.range_ends[range_idx])
            index_of = {leaf: i for i, leaf in enumerate(self.tree.leaf_ids())}
            spans = np.array(
                [index_of[int(h)] - index_of[int(l)] + 1 for l, h in zip(lo_leaves, hi_leaves)]
            )
            span_total = int(spans.sum())
            totals.add(im.node_visit_plain, count=int(range_idx.size) * height)
            totals.add(im.leaf_lookup_plain, count=span_total)

        splits_before = len(self.tree.split_events)
        results = self._apply_in_timestamp_order(batch)
        splits = len(self.tree.split_events) - splits_before
        totals.add(im.split_smo * 0.5, count=splits)  # plain split: no acquire storm

        seconds = phase_seconds(totals, self.device)
        phase = PhaseTime(query_kernel=seconds)
        # no retries: per-request work is uniform, response times flat
        resp = np.full(batch.n, seconds / batch.n)
        steps = float(height)
        return self._outcome_from_totals(batch, results, totals, phase, resp, steps)

    # ------------------------------------------------------------------ #
    # SIMT engine
    # ------------------------------------------------------------------ #
    def _process_simt(self, batch: RequestBatch) -> BatchOutcome:
        tree = self.tree
        n = batch.n
        results = BatchResults.empty(n)
        ranges: dict[int, tuple[np.ndarray, np.ndarray]] = {}
        steps_taken = np.zeros(n, dtype=np.int64)

        def make_program(i: int):
            kind = int(batch.kinds[i])
            key = int(batch.keys[i])

            def program():
                leaf, steps = yield from d_find_leaf(tree, key)
                steps_taken[i] = steps
                if kind == OpKind.QUERY:
                    val = yield from d_search_leaf(tree, leaf, key)
                    results.values[i] = val
                elif kind in (OpKind.UPDATE, OpKind.INSERT):
                    # unsynchronized mutation: host path + charged stores
                    results.values[i] = tree.upsert(key, int(batch.values[i]))
                    yield from _charge_leaf_write(tree, leaf)
                elif kind == OpKind.DELETE:
                    results.values[i] = tree.delete(key)
                    yield from _charge_leaf_write(tree, leaf)
                elif kind == OpKind.RANGE:
                    hi = int(batch.range_ends[i])
                    end_leaf, extra = yield from d_walk_leaves(tree, leaf, hi)
                    steps_taken[i] += extra
                    ranges[i] = tree.range_scan(key, hi)
                yield Mark(i)

            return program()

        launch = KernelLaunch(self.device, tree.arena, n, rng=self._launch_rng(batch))
        launch.add_programs([make_program(i) for i in range(n)])
        counters = launch.run()
        results.set_range_results(ranges)

        seconds = self.device.cycles_to_seconds(counters.cycles)
        resp = simt_response_times(counters, seconds, n)
        totals = EventTotals(
            mem=counters.mem_inst,
            ctrl=counters.control_inst,
            alu=counters.alu_inst,
            atomic=counters.atomic_inst,
            transactions=counters.transactions,
        )
        outcome = self._outcome_from_totals(
            batch,
            results,
            totals,
            PhaseTime(query_kernel=seconds),
            resp,
            float(steps_taken.mean()),
        )
        outcome.counters = counters
        return outcome


def _charge_leaf_write(tree, leaf: int):
    """Charge the stores an in-leaf mutation performs (idempotent rewrites
    of the leaf's current contents — same addresses, same coalescing)."""
    lay = tree.layout
    data = tree.arena.data
    for slot in range(lay.fanout // 2 + 1):
        addr = lay.key_addr(leaf, slot)
        yield Store(addr, int(data[addr]))

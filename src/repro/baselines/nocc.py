"""GB-tree without concurrency control — the "ideal" profiling reference.

The first bar of the paper's Fig. 1: the same B+tree and kernels with all
conflict detection/resolution removed. It is *not* a correct concurrent
structure (the paper uses it only as the lower bound on per-request work);
in the SIMT engine its mutations execute through the instantaneous host
path, so the tree never corrupts, while the charged instruction stream is
the unsynchronized one.

Pipeline: one unsynchronized kernel pass plus the shared apply/response/
finalize passes — the smallest pass list of the four systems.
"""

from __future__ import annotations

import numpy as np

from .._types import OpKind, is_update_kind_array
from ..btree import batch_find_leaf
from ..btree.device_ops import d_find_leaf, d_search_leaf, d_walk_leaves
from ..core.pipeline import (
    FinalizePass,
    HostApplyPass,
    Pass,
    PassPipeline,
    PipelineContext,
    SimtResponsePass,
    WeightedResponsePass,
)
from ..simt import Mark, Store
from .base import System
from .model import EventTotals


class NoCCChargePass(Pass):
    """Vector engine: charge the unsynchronized per-request kernel work."""

    name = "kernel"

    def run(self, ctx: PipelineContext) -> None:
        batch = ctx.batch
        im = ctx.imodel
        tree = ctx.tree
        point = batch.kinds != OpKind.RANGE
        q_mask = batch.kinds == OpKind.QUERY
        w_mask = is_update_kind_array(batch.kinds)
        n_point = int(point.sum())
        height = tree.height

        # every point request descends root→leaf and touches its leaf
        ctx.totals.add(im.node_visit_plain, count=n_point * height)
        ctx.totals.add(im.leaf_lookup_plain, count=int(q_mask.sum()))
        ctx.totals.add(im.leaf_update_plain, count=int(w_mask.sum()))

        # ranges: descent plus the spanned leaf chain
        range_idx = np.flatnonzero(batch.kinds == OpKind.RANGE)
        if range_idx.size:
            lo_leaves, _ = batch_find_leaf(tree, batch.keys[range_idx])
            hi_leaves, _ = batch_find_leaf(tree, batch.range_ends[range_idx])
            index_of = {leaf: i for i, leaf in enumerate(tree.leaf_ids())}
            spans = np.array(
                [index_of[int(h)] - index_of[int(l)] + 1 for l, h in zip(lo_leaves, hi_leaves)]
            )
            ctx.totals.add(im.node_visit_plain, count=int(range_idx.size) * height)
            ctx.totals.add(im.leaf_lookup_plain, count=int(spans.sum()))

        ctx.traversal_steps = float(height)
        ctx.roofline_phase("query_kernel")


class NoCCSimtKernelPass(Pass):
    """SIMT engine: one launch of unsynchronized per-request programs."""

    name = "kernel"

    def run(self, ctx: PipelineContext) -> None:
        batch = ctx.batch
        tree = ctx.tree
        n = ctx.n
        results = ctx.results
        ranges: dict[int, tuple[np.ndarray, np.ndarray]] = {}
        steps_taken = np.zeros(n, dtype=np.int64)

        def make_program(i: int):
            kind = int(batch.kinds[i])
            key = int(batch.keys[i])

            def program():
                leaf, steps = yield from d_find_leaf(tree, key)
                steps_taken[i] = steps
                if kind == OpKind.QUERY:
                    val = yield from d_search_leaf(tree, leaf, key)
                    results.values[i] = val
                elif kind in (OpKind.UPDATE, OpKind.INSERT):
                    # unsynchronized mutation: host path + charged stores
                    results.values[i] = tree.upsert(key, int(batch.values[i]))
                    yield from _charge_leaf_write(tree, leaf)
                elif kind == OpKind.DELETE:
                    results.values[i] = tree.delete(key)
                    yield from _charge_leaf_write(tree, leaf)
                elif kind == OpKind.RANGE:
                    hi = int(batch.range_ends[i])
                    end_leaf, extra = yield from d_walk_leaves(tree, leaf, hi)
                    steps_taken[i] += extra
                    ranges[i] = tree.range_scan(key, hi)
                yield Mark(i)

            return program()

        launch = ctx.devctx.launch(n, rng=ctx.launch_rng())
        launch.add_programs([make_program(i) for i in range(n)])
        counters = launch.run()
        results.set_range_results(ranges)

        ctx.counters = counters
        ctx.totals.merge(
            EventTotals(
                mem=counters.mem_inst,
                ctrl=counters.control_inst,
                alu=counters.alu_inst,
                atomic=counters.atomic_inst,
                transactions=counters.transactions,
            )
        )
        ctx.phase.query_kernel = ctx.device.cycles_to_seconds(counters.cycles)
        ctx.traversal_steps = float(steps_taken.mean()) if n else 0.0


class NoCCGBTree(System):
    """B+tree kernels with no synchronization (profiling reference)."""

    name = "GB-tree w/o concurrent control"

    def build_pipeline(self, engine: str) -> PassPipeline:
        if engine == "vector":
            passes = [
                NoCCChargePass(),
                # plain splits rewrite in place: no acquire storm
                HostApplyPass(split_cost_factor=0.5),
                WeightedResponsePass(),
                FinalizePass(),
            ]
        else:
            passes = [NoCCSimtKernelPass(), SimtResponsePass(), FinalizePass()]
        return PassPipeline(passes, name=f"nocc/{engine}")


def _charge_leaf_write(tree, leaf: int):
    """Charge the stores an in-leaf mutation performs (idempotent rewrites
    of the leaf's current contents — same addresses, same coalescing)."""
    keys = tree.views.addrs(leaf).keys
    data = tree.arena.data
    for slot in range(tree.layout.fanout // 2 + 1):
        addr = keys[slot]
        yield Store(addr, int(data[addr]))

"""Typed node views generated from :class:`~repro.btree.layout.NodeLayout`.

Every node field the layout defines appears once in :data:`FIELDS`; from
that single declarative table three view classes are *generated* — one per
access plane — so call sites write ``node.count``, ``node.keys[slot]`` or
``node.children[i]`` instead of hand-rolled ``lay.addr(node, OFF_*)``
arithmetic:

* :class:`NodeAddrs` — the **address plane**: each field resolves to its
  word address. Device thread programs use this to ``yield Load(a.fence)``;
  the accounting stays wherever the instruction is executed, so swapping
  raw arithmetic for views is invisible to the event counters.
* :class:`NodeView` — the **counted plane**: reading ``v.count`` issues a
  counted arena access with the same label the scalar accessors always
  charged (``node_header``, ``keys``, ``payload``, …); ``v.keys[:]`` is one
  coalesced warp gather.
* :class:`HostNodeView` — the **host plane**: uncounted numpy views for
  bulk build, splits and validation, mirroring the paper's convention that
  CPU-side tree construction is free.

:class:`StructView` binds a layout to an arena and hands out per-node views
plus the vectorized address helpers the batch traversal engine needs
(``field_addrs``, ``key_rows``), so the level-synchronous gathers are also
expressed against field *names* rather than offsets.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..memory import MemoryArena
from .layout import (
    HEADER_WORDS,
    OFF_COUNT,
    OFF_FENCE,
    OFF_KEYS,
    OFF_LEAF,
    OFF_LOCK,
    OFF_NEXT,
    OFF_RF,
    OFF_VERSION,
    NodeLayout,
)


@dataclass(frozen=True)
class FieldSpec:
    """One scalar header field: its offset word and its counted-access label."""

    name: str
    offset: int
    label: str


#: the declarative layout table all view classes are generated from —
#: one row per header word of :mod:`repro.btree.layout`
FIELDS: tuple[FieldSpec, ...] = (
    FieldSpec("count", OFF_COUNT, "node_header"),
    FieldSpec("leaf", OFF_LEAF, "node_header"),
    FieldSpec("version", OFF_VERSION, "version"),
    FieldSpec("rf", OFF_RF, "rf"),
    FieldSpec("next_leaf", OFF_NEXT, "leaf_chain"),
    FieldSpec("lock", OFF_LOCK, "lock"),
    FieldSpec("fence", OFF_FENCE, "fence"),
)

FIELD_BY_NAME: dict[str, FieldSpec] = {f.name: f for f in FIELDS}

if len(FIELDS) != HEADER_WORDS:  # pragma: no cover - layout/table drift guard
    raise AssertionError("FIELDS table out of sync with the node header layout")


# --------------------------------------------------------------------- #
# address plane
# --------------------------------------------------------------------- #
class ArrayAddrs:
    """Addresses of an in-node array (keys or payload)."""

    __slots__ = ("base", "width")

    def __init__(self, base: int, width: int) -> None:
        self.base = base
        self.width = width

    def __getitem__(self, slot):
        try:  # int fast path (hot: one call per separator examined)
            return self.base + slot
        except TypeError:
            return np.arange(self.width, dtype=np.int64)[slot] + self.base

    def __len__(self) -> int:
        return self.width

    def row(self) -> np.ndarray:
        """All slot addresses, in order (one coalesced warp access)."""
        return np.arange(self.base, self.base + self.width, dtype=np.int64)


class NodeAddrs:
    """Address plane: every field of one node resolved to its word address.

    Instances are immutable functions of ``(layout, node)`` and are memoized
    by :meth:`StructView.addrs`, so ``keys``/``payload`` are built eagerly
    once instead of per access.
    """

    __slots__ = ("_base", "_layout", "keys", "payload")

    def __init__(self, layout: NodeLayout, node: int) -> None:
        base = layout.node_base(node)
        self._base = base
        self._layout = layout
        self.keys = ArrayAddrs(base + OFF_KEYS, layout.fanout)
        self.payload = ArrayAddrs(base + layout.payload_off, layout.fanout + 1)

    # aliases matching what the payload means per node kind
    @property
    def children(self) -> ArrayAddrs:
        return self.payload

    values = children

    def words(self) -> range:
        """Every word address of the node (split plans own all of them)."""
        return range(self._base, self._base + self._layout.node_words)


def _addr_property(offset: int):
    def get(self: NodeAddrs) -> int:
        return self._base + offset

    return property(get)


for _f in FIELDS:
    setattr(NodeAddrs, _f.name, _addr_property(_f.offset))


# --------------------------------------------------------------------- #
# counted plane
# --------------------------------------------------------------------- #
class CountedArray:
    """Counted access to an in-node array; ``[:]`` is one warp gather."""

    __slots__ = ("_arena", "base", "width", "label")

    def __init__(self, arena: MemoryArena, base: int, width: int, label: str) -> None:
        self._arena = arena
        self.base = base
        self.width = width
        self.label = label

    def __getitem__(self, slot):
        if isinstance(slot, slice):
            addrs = np.arange(self.width, dtype=np.int64)[slot] + self.base
            return self._arena.read_gather(addrs, self.label)
        return self._arena.read(self.base + slot, self.label)

    def __setitem__(self, slot: int, value: int) -> None:
        self._arena.write(self.base + slot, value, self.label)

    def __len__(self) -> int:
        return self.width


class NodeView:
    """Counted plane: field reads/writes charge the arena like device code."""

    __slots__ = ("_arena", "_base", "_layout")

    def __init__(self, arena: MemoryArena, layout: NodeLayout, node: int) -> None:
        self._arena = arena
        self._base = layout.node_base(node)
        self._layout = layout

    @property
    def keys(self) -> CountedArray:
        return CountedArray(self._arena, self._base + OFF_KEYS, self._layout.fanout, "keys")

    @property
    def payload(self) -> CountedArray:
        return CountedArray(
            self._arena, self._base + self._layout.payload_off,
            self._layout.fanout + 1, "payload",
        )

    children = payload
    values = payload

    def bump_version(self) -> int:
        """Atomically increment the split version; returns the new value."""
        return self._arena.atomic_add(self._base + OFF_VERSION, 1) + 1


def _counted_property(offset: int, label: str):
    def get(self: NodeView) -> int:
        return self._arena.read(self._base + offset, label)

    def set_(self: NodeView, value: int) -> None:
        self._arena.write(self._base + offset, value, label)

    return property(get, set_)


for _f in FIELDS:
    setattr(NodeView, _f.name, _counted_property(_f.offset, _f.label))


# --------------------------------------------------------------------- #
# host plane
# --------------------------------------------------------------------- #
class HostNodeView:
    """Uncounted numpy-backed view (bulk build, splits, validation)."""

    __slots__ = ("_data", "_base", "_layout")

    def __init__(self, data: np.ndarray, layout: NodeLayout, node: int) -> None:
        self._data = data
        self._base = layout.node_base(node)
        self._layout = layout

    @property
    def keys(self) -> np.ndarray:
        base = self._base + OFF_KEYS
        return self._data[base : base + self._layout.fanout]

    @property
    def payload(self) -> np.ndarray:
        base = self._base + self._layout.payload_off
        return self._data[base : base + self._layout.fanout + 1]

    children = payload
    values = payload

    def words(self) -> np.ndarray:
        return self._data[self._base : self._base + self._layout.node_words]


def _host_property(offset: int):
    def get(self: HostNodeView) -> int:
        return int(self._data[self._base + offset])

    def set_(self: HostNodeView, value: int) -> None:
        self._data[self._base + offset] = value

    return property(get, set_)


for _f in FIELDS:
    setattr(HostNodeView, _f.name, _host_property(_f.offset))


# --------------------------------------------------------------------- #
# the bound factory + vectorized plane
# --------------------------------------------------------------------- #
class StructView:
    """Layout-bound view factory over one arena.

    Hands out per-node views on every plane, plus the vectorized address
    helpers the level-synchronous batch traversal uses (whole-batch gathers
    of one field or one key row per node).
    """

    def __init__(self, arena: MemoryArena, layout: NodeLayout) -> None:
        self.arena = arena
        self.layout = layout
        #: node id -> NodeAddrs; addresses are a pure function of
        #: (layout, node), so sharing the objects is observation-free and
        #: saves reconstructing them on every traversal step.
        self._addr_cache: dict[int, NodeAddrs] = {}

    # per-node views ----------------------------------------------------
    def addrs(self, node: int) -> NodeAddrs:
        a = self._addr_cache.get(node)
        if a is None:
            a = self._addr_cache[node] = NodeAddrs(self.layout, node)
        return a

    def node(self, node: int) -> NodeView:
        return NodeView(self.arena, self.layout, node)

    def host(self, node: int) -> HostNodeView:
        return HostNodeView(self.arena.data, self.layout, node)

    # vectorized (host-plane) helpers -----------------------------------
    def node_bases(self, nodes: np.ndarray) -> np.ndarray:
        lay = self.layout
        return lay.base + np.asarray(nodes, dtype=np.int64) * lay.stride

    def field_addrs(self, nodes: np.ndarray, name: str) -> np.ndarray:
        """Address of field ``name`` for every node in ``nodes``."""
        return self.node_bases(nodes) + FIELD_BY_NAME[name].offset

    def host_field(self, nodes: np.ndarray, name: str) -> np.ndarray:
        """Uncounted gather of one header field across ``nodes``."""
        return self.arena.data[self.field_addrs(nodes, name)]

    def key_rows(self, nodes: np.ndarray) -> np.ndarray:
        """Key rows of ``nodes`` (host plane; shape ``len(nodes) x fanout``)."""
        lay = self.layout
        idx = self.node_bases(nodes)[:, None] + OFF_KEYS + np.arange(lay.fanout)
        return self.arena.data[idx]

    def payload_addrs(self, nodes: np.ndarray, slots: np.ndarray) -> np.ndarray:
        """Address of payload slot ``slots[i]`` in node ``nodes[i]``."""
        return self.node_bases(nodes) + self.layout.payload_off + slots

"""B+tree substrate: layout, host operations, vectorized batch traversal."""

from .layout import (
    HEADER_WORDS,
    OFF_COUNT,
    OFF_KEYS,
    OFF_LEAF,
    OFF_LOCK,
    OFF_NEXT,
    OFF_RF,
    OFF_VERSION,
    NodeLayout,
)
from .node import NodeAccessor
from .traversal import (
    TraversalEvents,
    batch_find_leaf,
    batch_horizontal_find_leaf,
    batch_leaf_lookup,
    leaf_max_keys,
    leaf_rf_values,
)
from .tree import BPlusTree, SplitEvent

__all__ = [
    "BPlusTree",
    "HEADER_WORDS",
    "NodeAccessor",
    "NodeLayout",
    "OFF_COUNT",
    "OFF_KEYS",
    "OFF_LEAF",
    "OFF_LOCK",
    "OFF_NEXT",
    "OFF_RF",
    "OFF_VERSION",
    "SplitEvent",
    "TraversalEvents",
    "batch_find_leaf",
    "batch_horizontal_find_leaf",
    "batch_leaf_lookup",
    "leaf_max_keys",
    "leaf_rf_values",
]

"""Vectorized batch traversal over the B+tree.

The vector engine processes whole request batches level-synchronously: all
requests descend one tree level per step as a single gather, mirroring how a
GPU kernel's warps advance through the tree together. Every function returns
both results and a :class:`TraversalEvents` record — the event counts the
device cost model converts to instructions/transactions.

Horizontal (leaf-chain) traversal implements the §5 locality path: starting
from a buffered leaf, walk ``next_leaf`` pointers until the target key is
covered.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .._types import EMPTY_KEY, NO_NODE, NULL_VALUE
from .tree import BPlusTree


@dataclass
class TraversalEvents:
    """Counts of tree-access events for one batch phase."""

    requests: int = 0
    node_visits: int = 0
    key_words_read: int = 0
    vertical_steps: int = 0
    horizontal_steps: int = 0
    leaf_lookups: int = 0
    #: per-request traversal step counts (for Fig. 10)
    steps_per_request: np.ndarray | None = None
    extra: dict[str, int] = field(default_factory=dict)

    def merge(self, other: "TraversalEvents") -> None:
        self.requests += other.requests
        self.node_visits += other.node_visits
        self.key_words_read += other.key_words_read
        self.vertical_steps += other.vertical_steps
        self.horizontal_steps += other.horizontal_steps
        self.leaf_lookups += other.leaf_lookups
        for k, v in other.extra.items():
            self.extra[k] = self.extra.get(k, 0) + v
        if other.steps_per_request is not None:
            if self.steps_per_request is None:
                self.steps_per_request = other.steps_per_request.copy()
            else:
                self.steps_per_request = np.concatenate(
                    [self.steps_per_request, other.steps_per_request]
                )

    @property
    def total_steps(self) -> int:
        return self.vertical_steps + self.horizontal_steps


def _key_rows(tree: BPlusTree, nodes: np.ndarray) -> np.ndarray:
    """Gather the full key row of each node (shape: len(nodes) x fanout)."""
    return tree.views.key_rows(nodes)


def batch_find_leaf(tree: BPlusTree, keys: np.ndarray) -> tuple[np.ndarray, TraversalEvents]:
    """Vertical traversal for every key; returns leaf ids and event counts.

    All leaves sit at depth ``tree.height``, so the descent is a fixed
    number of level-synchronous gathers. Unused key slots hold ``EMPTY_KEY``,
    letting the child-slot computation scan the full row branch-free —
    the same trick the counted device programs use.
    """
    keys = np.asarray(keys, dtype=np.int64)
    n = int(keys.size)
    ev = TraversalEvents(requests=n)
    nodes = np.full(n, tree.root, dtype=np.int64)
    if n == 0:
        ev.steps_per_request = np.zeros(0, dtype=np.int64)
        return nodes, ev
    lay = tree.layout
    views = tree.views
    data = tree.arena.data
    for _ in range(tree.height - 1):
        rows = _key_rows(tree, nodes)
        slots = (rows <= keys[:, None]).sum(axis=1)
        nodes = data[views.payload_addrs(nodes, slots)]
        ev.node_visits += n
        ev.key_words_read += n * lay.fanout
        ev.vertical_steps += n
    # the leaf itself counts as a visited node (paper counts nodes traversed)
    ev.node_visits += n
    ev.vertical_steps += n
    ev.steps_per_request = np.full(n, tree.height, dtype=np.int64)
    return nodes, ev


def batch_leaf_lookup(
    tree: BPlusTree, leaves: np.ndarray, keys: np.ndarray
) -> tuple[np.ndarray, TraversalEvents]:
    """Find each key in its leaf; returns values (NULL_VALUE when absent)."""
    keys = np.asarray(keys, dtype=np.int64)
    leaves = np.asarray(leaves, dtype=np.int64)
    n = int(keys.size)
    ev = TraversalEvents(requests=n, leaf_lookups=n)
    if n == 0:
        return np.zeros(0, dtype=np.int64), ev
    lay = tree.layout
    rows = _key_rows(tree, leaves)
    ev.key_words_read += n * lay.fanout
    pos = (rows < keys[:, None]).sum(axis=1)
    pos_c = np.minimum(pos, lay.fanout - 1)
    hit = rows[np.arange(n), pos_c] == keys
    payload = tree.arena.data[tree.views.payload_addrs(leaves, pos_c)]
    vals = np.where(hit, payload, NULL_VALUE)
    return vals.astype(np.int64), ev


def batch_horizontal_find_leaf(
    tree: BPlusTree, start_leaves: np.ndarray, keys: np.ndarray
) -> tuple[np.ndarray, np.ndarray, TraversalEvents]:
    """Leaf-chain walk from ``start_leaves`` toward each key (§5).

    Returns (leaf ids, per-request steps, events). A request whose key lies
    *before* its start leaf (possible only after concurrent splits) falls
    back to vertical traversal; its steps then count as vertical.
    """
    keys = np.asarray(keys, dtype=np.int64)
    leaves = np.asarray(start_leaves, dtype=np.int64).copy()
    n = int(keys.size)
    ev = TraversalEvents(requests=n)
    steps = np.ones(n, dtype=np.int64)  # reading the buffered leaf is a step
    if n == 0:
        return leaves, steps, ev
    views = tree.views

    # fallback: key precedes the buffered leaf's fence (left of its range)
    fences = views.host_field(leaves, "fence")
    ev.key_words_read += n
    fallback = keys < fences
    if np.any(fallback):
        fb_leaves, fb_ev = batch_find_leaf(tree, keys[fallback])
        leaves[fallback] = fb_leaves
        steps[fallback] = tree.height
        ev.merge(fb_ev)

    active = ~fallback
    while np.any(active):
        idx = np.flatnonzero(active)
        cur = leaves[idx]
        ev.key_words_read += int(idx.size)
        ev.node_visits += int(idx.size)
        nxt = views.host_field(cur, "next_leaf")
        has_next = nxt != NO_NODE
        nxt_fence = np.where(
            has_next, views.host_field(np.maximum(nxt, 0), "fence"), 0
        )
        advance = has_next & (nxt_fence <= keys[idx])
        move = idx[advance]
        leaves[move] = nxt[advance]
        steps[move] += 1
        ev.horizontal_steps += int(move.size)
        active[idx[~advance]] = False
    ev.steps_per_request = steps.copy()
    return leaves, steps, ev


def leaf_max_keys(tree: BPlusTree, leaves: np.ndarray) -> np.ndarray:
    """Largest real key per leaf (-1 for an empty leaf). Host plane."""
    leaves = np.asarray(leaves, dtype=np.int64)
    counts = tree.views.host_field(leaves, "count")
    rows = _key_rows(tree, leaves)
    return np.where(counts > 0, rows[np.arange(len(leaves)), np.maximum(counts - 1, 0)], -1)


def leaf_rf_values(tree: BPlusTree, leaves: np.ndarray) -> np.ndarray:
    """RF field per leaf (host plane)."""
    return tree.views.host_field(np.asarray(leaves, dtype=np.int64), "rf")

"""Scalar node accessors over the arena.

These helpers go through the *counted* arena plane; they are the units the
device-side programs (baselines and Eirene kernels) are built from. Host
code that must not be charged (bulk build, the sequential reference) flips
``arena.counting`` off or uses :class:`~repro.btree.tree.BPlusTree` host
views instead.

Since the typed-view refactor this class is a thin method-style veneer over
:mod:`repro.btree.views` — each accessor delegates to the generated
:class:`~repro.btree.views.NodeView` / :class:`~repro.btree.views.HostNodeView`
planes, so the layout table in :data:`repro.btree.views.FIELDS` stays the
single source of field offsets and counted-access labels.
"""

from __future__ import annotations

import numpy as np

from .._types import EMPTY_KEY
from ..memory import MemoryArena
from .layout import NodeLayout
from .views import StructView


class NodeAccessor:
    """Counted scalar access to one node arena."""

    def __init__(self, arena: MemoryArena, layout: NodeLayout) -> None:
        self.arena = arena
        self.layout = layout

    @property
    def views(self) -> StructView:
        # rebuilt per access so callers that rebind ``self.arena`` (e.g. a
        # test moving a tree into a larger arena) keep a coherent view
        return StructView(self.arena, self.layout)

    # -- header ---------------------------------------------------------
    def count(self, node: int) -> int:
        return self.views.node(node).count

    def set_count(self, node: int, value: int) -> None:
        self.views.node(node).count = value

    def is_leaf(self, node: int) -> bool:
        return bool(self.views.node(node).leaf)

    def version(self, node: int) -> int:
        return self.views.node(node).version

    def bump_version(self, node: int) -> int:
        """Atomically increment the split version; returns the new value."""
        return self.views.node(node).bump_version()

    def rf(self, node: int) -> int:
        return self.views.node(node).rf

    def set_rf(self, node: int, value: int) -> None:
        self.views.node(node).rf = value

    def fence(self, node: int) -> int:
        return self.views.node(node).fence

    def set_fence(self, node: int, value: int) -> None:
        self.views.node(node).fence = value

    def next_leaf(self, node: int) -> int:
        return self.views.node(node).next_leaf

    def set_next_leaf(self, node: int, value: int) -> None:
        self.views.node(node).next_leaf = value

    # -- keys / payload --------------------------------------------------
    def key(self, node: int, slot: int) -> int:
        return self.views.node(node).keys[slot]

    def set_key(self, node: int, slot: int, value: int) -> None:
        self.views.node(node).keys[slot] = value

    def payload(self, node: int, slot: int) -> int:
        return self.views.node(node).payload[slot]

    def set_payload(self, node: int, slot: int, value: int) -> None:
        self.views.node(node).payload[slot] = value

    # -- warp-style vector reads ------------------------------------------
    def keys_row(self, node: int) -> np.ndarray:
        """Read all key slots of a node as one coalesced warp load."""
        return self.views.node(node).keys[:]

    # -- host (uncounted) views -------------------------------------------
    def host_keys(self, node: int) -> np.ndarray:
        return self.views.host(node).keys

    def host_payload(self, node: int) -> np.ndarray:
        return self.views.host(node).payload

    def host_min_key(self, node: int) -> int:
        """Smallest key in the subtree rooted at ``node`` (uncounted)."""
        while not self.views.host(node).leaf:
            node = int(self.views.host(node).children[0])
        return int(self.views.host(node).keys[0])

    def clear_node(self, node: int, leaf: bool) -> None:
        """Host-side initialization of a fresh node (uncounted)."""
        h = self.views.host(node)
        h.words()[:] = 0
        h.leaf = 1 if leaf else 0
        h.rf = EMPTY_KEY
        h.next_leaf = -1
        h.keys[:] = EMPTY_KEY

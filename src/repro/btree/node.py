"""Scalar node accessors over the arena.

These helpers go through the *counted* arena plane; they are the units the
device-side programs (baselines and Eirene kernels) are built from. Host
code that must not be charged (bulk build, the sequential reference) flips
``arena.counting`` off or uses :class:`~repro.btree.tree.BPlusTree` host
views instead.
"""

from __future__ import annotations

import numpy as np

from .._types import EMPTY_KEY
from ..memory import MemoryArena
from .layout import (
    OFF_COUNT,
    OFF_FENCE,
    OFF_LEAF,
    OFF_NEXT,
    OFF_RF,
    OFF_VERSION,
    NodeLayout,
)


class NodeAccessor:
    """Counted scalar access to one node arena."""

    def __init__(self, arena: MemoryArena, layout: NodeLayout) -> None:
        self.arena = arena
        self.layout = layout

    # -- header ---------------------------------------------------------
    def count(self, node: int) -> int:
        return self.arena.read(self.layout.addr(node, OFF_COUNT), "node_header")

    def set_count(self, node: int, value: int) -> None:
        self.arena.write(self.layout.addr(node, OFF_COUNT), value, "node_header")

    def is_leaf(self, node: int) -> bool:
        return bool(self.arena.read(self.layout.addr(node, OFF_LEAF), "node_header"))

    def version(self, node: int) -> int:
        return self.arena.read(self.layout.addr(node, OFF_VERSION), "version")

    def bump_version(self, node: int) -> int:
        """Atomically increment the split version; returns the new value."""
        return self.arena.atomic_add(self.layout.addr(node, OFF_VERSION), 1) + 1

    def rf(self, node: int) -> int:
        return self.arena.read(self.layout.addr(node, OFF_RF), "rf")

    def set_rf(self, node: int, value: int) -> None:
        self.arena.write(self.layout.addr(node, OFF_RF), value, "rf")

    def fence(self, node: int) -> int:
        return self.arena.read(self.layout.addr(node, OFF_FENCE), "fence")

    def set_fence(self, node: int, value: int) -> None:
        self.arena.write(self.layout.addr(node, OFF_FENCE), value, "fence")

    def next_leaf(self, node: int) -> int:
        return self.arena.read(self.layout.addr(node, OFF_NEXT), "leaf_chain")

    def set_next_leaf(self, node: int, value: int) -> None:
        self.arena.write(self.layout.addr(node, OFF_NEXT), value, "leaf_chain")

    # -- keys / payload --------------------------------------------------
    def key(self, node: int, slot: int) -> int:
        return self.arena.read(self.layout.key_addr(node, slot), "keys")

    def set_key(self, node: int, slot: int, value: int) -> None:
        self.arena.write(self.layout.key_addr(node, slot), value, "keys")

    def payload(self, node: int, slot: int) -> int:
        return self.arena.read(self.layout.payload_addr(node, slot), "payload")

    def set_payload(self, node: int, slot: int, value: int) -> None:
        self.arena.write(self.layout.payload_addr(node, slot), value, "payload")

    # -- warp-style vector reads ------------------------------------------
    def keys_row(self, node: int) -> np.ndarray:
        """Read all key slots of a node as one coalesced warp load."""
        base = self.layout.key_addr(node, 0)
        addrs = np.arange(base, base + self.layout.fanout, dtype=np.int64)
        return self.arena.read_gather(addrs, "keys")

    # -- host (uncounted) views -------------------------------------------
    def host_keys(self, node: int) -> np.ndarray:
        base = self.layout.key_addr(node, 0)
        return self.arena.host_view(base, self.layout.fanout)

    def host_payload(self, node: int) -> np.ndarray:
        base = self.layout.payload_addr(node, 0)
        return self.arena.host_view(base, self.layout.fanout + 1)

    def host_min_key(self, node: int) -> int:
        """Smallest key in the subtree rooted at ``node`` (uncounted)."""
        while not self.arena.data[self.layout.addr(node, OFF_LEAF)]:
            node = int(self.arena.data[self.layout.payload_addr(node, 0)])
        return int(self.arena.data[self.layout.key_addr(node, 0)])

    def clear_node(self, node: int, leaf: bool) -> None:
        """Host-side initialization of a fresh node (uncounted)."""
        view = self.arena.host_view(self.layout.node_base(node), self.layout.node_words)
        view[:] = 0
        view[OFF_LEAF] = 1 if leaf else 0
        view[OFF_RF] = EMPTY_KEY
        view[OFF_NEXT] = -1
        kbase = self.layout.key_addr(node, 0) - self.layout.node_base(node)
        view[kbase : kbase + self.layout.fanout] = EMPTY_KEY

"""Device-plane B+tree operations (SIMT thread-program generators).

Building blocks the baselines' and Eirene's kernels compose:

* unprotected vertical traversal and leaf search (Eirene's query kernel,
  the no-concurrency-control reference, optimistic first tries);
* STM-protected traversal / search / leaf mutation (STM GB-tree, Eirene's
  protected fallback and leaf region);
* latch-based traversal with lock coupling (Lock GB-tree);
* horizontal leaf-chain traversal with RF bookkeeping (§5 locality);
* the structure-modification path (leaf split cascade): splits acquire STM
  ownership of every word of every node the split plan touches, execute the
  host split instantaneously, charge the equivalent counted stores, then
  invalidate STM versions so every concurrent transaction that read stale
  words aborts at validation — semantically identical to running the split's
  stores transactionally, without torn intermediate states.

All functions are generators; compose with ``yield from`` and catch
:class:`~repro.errors.TransactionAborted` at retry boundaries. Node fields
are addressed through the typed address plane
(:meth:`~repro.btree.views.StructView.addrs` — ``a.count``, ``a.keys[slot]``)
so the word-offset arithmetic lives only in :mod:`repro.btree.views`.
"""

from __future__ import annotations

from .._types import EMPTY_KEY, NO_NODE, NULL_VALUE
from ..errors import SimulationError, TransactionAborted
from ..locks import LatchTable
from ..simt.instructions import BRANCH, Alu, AtomicCAS, Load, Store
from ..stm import FREE, DeviceStm, Tx
from .tree import BPlusTree

#: safety valve for leaf-chain walks (a correct walk is bounded by the leaf
#: count; hitting this indicates a broken chain, not contention).
MAX_HORIZONTAL_STEPS = 1_000_000


# --------------------------------------------------------------------- #
# unprotected plane
# --------------------------------------------------------------------- #
def d_child_slot(tree: BPlusTree, node: int, key: int):
    """Linear separator scan; returns the child slot to follow.

    Unused key slots hold ``EMPTY_KEY`` (> every real key), so the scan
    never needs the count word — one load + one branch per separator
    examined, with early exit, exactly like the branch-free GPU layout.
    """
    keys = tree.views.addrs(node).keys
    base = keys.base
    n = keys.width
    slot = 0
    while slot < n:
        k = yield Load(base + slot)
        yield BRANCH
        if key < k:
            break
        slot += 1
    return slot


def d_find_leaf(tree: BPlusTree, key: int):
    """Vertical root-to-leaf traversal; returns (leaf id, nodes visited)."""
    node = tree.root
    steps = 1
    while True:
        a = tree.views.addrs(node)
        is_leaf = yield Load(a.leaf)
        yield BRANCH
        if is_leaf:
            return node, steps
        slot = yield from d_child_slot(tree, node, key)
        node = yield Load(a.children[slot])
        steps += 1


def d_search_leaf(tree: BPlusTree, leaf: int, key: int):
    """Scan a leaf for ``key``; returns its value or ``NULL_VALUE``."""
    a = tree.views.addrs(leaf)
    kbase = a.keys.base
    vbase = a.values.base
    for slot in range(tree.layout.fanout):
        k = yield Load(kbase + slot)
        yield BRANCH
        if k == key:
            val = yield Load(vbase + slot)
            return val
        if k > key:
            return NULL_VALUE
    return NULL_VALUE


def d_leaf_covers(tree: BPlusTree, leaf: int, key: int):
    """Does ``leaf`` still cover ``key``? (§4.2 ``key in range(leaf)``).

    True iff the leaf's first key is <= key (or the leaf is leftmost for
    this key) and the right sibling's first key (if any) is > key.
    """
    a = tree.views.addrs(leaf)
    fence = yield Load(a.fence)
    yield BRANCH
    if key < fence:
        return False  # the reference points right of the key's range
    nxt = yield Load(a.next_leaf)
    yield BRANCH
    if nxt != NO_NODE:
        nxt_fence = yield Load(tree.views.addrs(nxt).fence)
        yield BRANCH
        if nxt_fence <= key:
            # a split moved this key's range to the right sibling
            return False
    return True


def d_walk_leaves(tree: BPlusTree, start_leaf: int, key: int):
    """Horizontal traversal (§5): follow the leaf chain from ``start_leaf``
    until reaching the leaf whose fence range covers ``key``.
    Returns (leaf, steps)."""
    node = start_leaf
    steps = 1  # inspecting the buffered leaf counts as a step
    while True:
        if steps > MAX_HORIZONTAL_STEPS:
            raise SimulationError("leaf chain walk did not terminate")
        nxt = yield Load(tree.views.addrs(node).next_leaf)
        yield BRANCH
        if nxt == NO_NODE:
            return node, steps
        nxt_fence = yield Load(tree.views.addrs(nxt).fence)
        yield BRANCH
        if nxt_fence > key:
            return node, steps
        node = nxt
        steps += 1


# --------------------------------------------------------------------- #
# STM-protected plane
# --------------------------------------------------------------------- #
def d_child_slot_stm(tree: BPlusTree, stm: DeviceStm, tx: Tx, node: int, key: int):
    keys = tree.views.addrs(node).keys
    base = keys.base
    n = keys.width
    slot = 0
    while slot < n:
        k = yield from stm.d_read(tx, base + slot)
        yield BRANCH
        if key < k:
            break
        slot += 1
    return slot


def d_find_leaf_stm(tree: BPlusTree, stm: DeviceStm, tx: Tx, key: int):
    """STM-protected vertical traversal (STM GB-tree; Eirene past the retry
    threshold). Every word goes through the transactional read protocol."""
    node = tree.root
    steps = 1
    while True:
        a = tree.views.addrs(node)
        is_leaf = yield from stm.d_read(tx, a.leaf)
        yield BRANCH
        if is_leaf:
            return node, steps
        slot = yield from d_child_slot_stm(tree, stm, tx, node, key)
        node = yield from stm.d_read(tx, a.children[slot])
        steps += 1


def d_search_leaf_stm(tree: BPlusTree, stm: DeviceStm, tx: Tx, leaf: int, key: int):
    a = tree.views.addrs(leaf)
    for slot in range(tree.layout.fanout):
        k = yield from stm.d_read(tx, a.keys[slot])
        yield BRANCH
        if k == key:
            val = yield from stm.d_read(tx, a.values[slot])
            return val
        if k > key:
            return NULL_VALUE
    return NULL_VALUE


def d_leaf_upsert_stm(
    tree: BPlusTree, stm: DeviceStm, tx: Tx, leaf: int, key: int, value: int
):
    """Transactional in-place upsert into a non-full-or-hit leaf.

    Serializes leaf writers by acquiring the leaf's count word first.
    Raises :class:`NeedsSplit` (via return sentinel) when the leaf is full
    and the key absent — the caller must abort and take the SMO path.
    Returns (old value, needs_split flag).
    """
    a = tree.views.addrs(leaf)
    cnt = yield from stm.d_read(tx, a.count)
    # acquire: owning the count word serializes all writers of this leaf
    yield from stm.d_write(tx, a.count, cnt)
    pos = 0
    while pos < cnt:
        k = yield from stm.d_read(tx, a.keys[pos])
        yield BRANCH
        if k == key:
            old = yield from stm.d_read(tx, a.values[pos])
            yield from stm.d_write(tx, a.values[pos], value)
            return old, False
        if k > key:
            break
        pos += 1
    yield BRANCH
    if cnt >= tree.layout.fanout:
        return NULL_VALUE, True  # full leaf, absent key: needs a split
    # shift (cnt - pos) entries right, insert at pos
    for i in range(cnt - 1, pos - 1, -1):
        k = yield from stm.d_read(tx, a.keys[i])
        v = yield from stm.d_read(tx, a.values[i])
        yield from stm.d_write(tx, a.keys[i + 1], k)
        yield from stm.d_write(tx, a.values[i + 1], v)
    yield from stm.d_write(tx, a.keys[pos], key)
    yield from stm.d_write(tx, a.values[pos], value)
    yield from stm.d_write(tx, a.count, cnt + 1)
    return NULL_VALUE, False


def d_leaf_delete_stm(tree: BPlusTree, stm: DeviceStm, tx: Tx, leaf: int, key: int):
    """Transactional merge-free delete; returns the old value or NULL."""
    a = tree.views.addrs(leaf)
    cnt = yield from stm.d_read(tx, a.count)
    yield from stm.d_write(tx, a.count, cnt)
    pos = -1
    old = NULL_VALUE
    for slot in range(cnt):
        k = yield from stm.d_read(tx, a.keys[slot])
        yield BRANCH
        if k == key:
            pos = slot
            old = yield from stm.d_read(tx, a.values[slot])
            break
        if k > key:
            return NULL_VALUE
    yield BRANCH
    if pos < 0:
        return NULL_VALUE
    for i in range(pos, cnt - 1):
        k = yield from stm.d_read(tx, a.keys[i + 1])
        v = yield from stm.d_read(tx, a.values[i + 1])
        yield from stm.d_write(tx, a.keys[i], k)
        yield from stm.d_write(tx, a.values[i], v)
    yield from stm.d_write(tx, a.keys[cnt - 1], EMPTY_KEY)
    yield from stm.d_write(tx, a.values[cnt - 1], 0)
    yield from stm.d_write(tx, a.count, cnt - 1)
    return old


# --------------------------------------------------------------------- #
# structure modification (split cascade)
# --------------------------------------------------------------------- #
def node_word_addrs(tree: BPlusTree, node: int) -> range:
    return tree.views.addrs(node).words()


def plan_upsert_nodes(tree: BPlusTree, key: int) -> list[int]:
    """Host-plane, read-only: nodes the upsert of ``key`` may modify.

    The leaf plus every ancestor that would split in cascade (a full node
    propagates the split upward), plus the root when the cascade reaches it.
    """
    path = tree._descend_path(key)
    nodes = [path[-1][0]]
    views = tree.views
    fanout = tree.layout.fanout
    # leaf splits only if full; ancestors join the plan while full
    if views.host(path[-1][0]).count >= fanout:
        for node, _slot in reversed(path[:-1]):
            nodes.append(node)
            if views.host(node).count < fanout:
                break
    return nodes


def d_smo_upsert(
    tree: BPlusTree,
    stm: DeviceStm,
    smo_lock_addr: int,
    owner: int,
    key: int,
    value: int,
):
    """Upsert requiring a split: the structure-modification path.

    Serializes against other SMOs via a device latch, acquires STM ownership
    of every word of every node in the split plan (so no transaction can
    read or write them mid-split), executes the host split instantaneously,
    charges the equivalent stores, invalidates STM versions, releases.
    Returns the old value (NULL_VALUE for a fresh insert).

    Callers MUST have aborted their own transaction before entering:
    spinning on the SMO latch while holding STM word ownership would
    deadlock against the latch holder's ownership acquisition.
    """
    # acquire the SMO latch (one CAS per slot until ours)
    while True:
        got = yield AtomicCAS(smo_lock_addr, FREE, owner + 1)
        yield BRANCH
        if got == FREE:
            break
    try:
        region = stm.region
        owned: list[int] = []

        def acquire_node(node: int):
            """Own every word of ``node``, spinning per word.

            Holding already-acquired words while waiting is deadlock-free:
            ordinary transactions never wait (they abort on any conflict),
            and rival SMOs are excluded by the latch — so each word's owner
            releases in bounded steps and our per-round CAS eventually wins.
            """
            for addr in node_word_addrs(tree, node):
                while True:
                    got = yield AtomicCAS(region.owner_addr(addr), FREE, -(owner + 2))
                    yield BRANCH
                    if got in (FREE, -(owner + 2)):
                        break
                if addr not in owned_set:
                    owned.append(addr)
                    owned_set.add(addr)

        owned_set: set[int] = set()
        # phase 1: freeze the leaf — once its words are ours, its count can
        # no longer change, so the split plan computed next stays valid
        leaf = tree.find_leaf(key)[0]
        yield from acquire_node(leaf)
        # phase 2: plan the cascade (ancestors only SMOs may touch, and we
        # hold the only SMO latch) and own every planned node
        for node in plan_upsert_nodes(tree, key):
            if node != leaf:
                yield from acquire_node(node)
        # every word of the plan is ours: split + insert happen "now"
        old = tree.upsert(key, value)
        # charge the stores the split actually performed and invalidate;
        # nodes freshly allocated by the split were never visible to any
        # concurrent transaction, so only the planned words matter
        touched = list(owned)
        for addr in touched:
            yield Store(addr, int(tree.arena.data[addr]))
        stm.host_invalidate(touched)
        for addr in touched:
            yield Store(region.owner_addr(addr), FREE)
        return old
    finally:
        yield Store(smo_lock_addr, FREE)


# --------------------------------------------------------------------- #
# raw device-plane leaf mutations (caller must hold the leaf latch)
# --------------------------------------------------------------------- #
def d_leaf_upsert_device(tree: BPlusTree, leaf: int, key: int, value: int):
    """In-place upsert with real loads/stores; bumps the node version so
    validated readers retry. Returns (old value, needs_split). Performs no
    mutation when a split would be needed."""
    a = tree.views.addrs(leaf)
    cnt = yield Load(a.count)
    yield BRANCH
    pos = 0
    while pos < cnt:
        k = yield Load(a.keys[pos])
        yield BRANCH
        if k == key:
            old = yield Load(a.values[pos])
            yield Store(a.values[pos], value)
            yield from _d_bump_version(tree, leaf)
            return old, False
        if k > key:
            break
        pos += 1
    yield BRANCH
    if cnt >= tree.layout.fanout:
        return NULL_VALUE, True
    for i in range(cnt - 1, pos - 1, -1):
        k = yield Load(a.keys[i])
        v = yield Load(a.values[i])
        yield Store(a.keys[i + 1], k)
        yield Store(a.values[i + 1], v)
    yield Store(a.keys[pos], key)
    yield Store(a.values[pos], value)
    yield Store(a.count, cnt + 1)
    yield from _d_bump_version(tree, leaf)
    return NULL_VALUE, False


def d_leaf_delete_device(tree: BPlusTree, leaf: int, key: int):
    """In-place merge-free delete; bumps the node version. Returns the old
    value or NULL_VALUE."""
    a = tree.views.addrs(leaf)
    cnt = yield Load(a.count)
    yield BRANCH
    pos = -1
    old = NULL_VALUE
    for slot in range(cnt):
        k = yield Load(a.keys[slot])
        yield BRANCH
        if k == key:
            pos = slot
            old = yield Load(a.values[slot])
            break
        if k > key:
            return NULL_VALUE
    yield BRANCH
    if pos < 0:
        return NULL_VALUE
    for i in range(pos, cnt - 1):
        k = yield Load(a.keys[i + 1])
        v = yield Load(a.values[i + 1])
        yield Store(a.keys[i], k)
        yield Store(a.values[i], v)
    yield Store(a.keys[cnt - 1], EMPTY_KEY)
    yield Store(a.values[cnt - 1], 0)
    yield Store(a.count, cnt - 1)
    yield from _d_bump_version(tree, leaf)
    return old


def _d_bump_version(tree: BPlusTree, node: int):
    addr = tree.views.addrs(node).version
    cur = yield Load(addr)
    yield Store(addr, cur + 1)


# --------------------------------------------------------------------- #
# latch plane (Lock GB-tree)
# --------------------------------------------------------------------- #
def d_node_scan_validated(tree: BPlusTree, latches: LatchTable, node: int, key: int):
    """Reader-side node visit for the lock design: wait for the latch,
    read the version, scan, re-validate. Returns (child slot or -1-if-
    retry-needed, is_leaf)."""
    a = tree.views.addrs(node)
    while True:
        locked = yield from latches.d_is_locked(a.lock)
        if not locked:
            break
    ver_before = yield Load(a.version)
    is_leaf = yield Load(a.leaf)
    yield BRANCH
    slot = yield from d_child_slot(tree, node, key)
    ver_after = yield Load(a.version)
    locked_after = yield from latches.d_is_locked(a.lock)
    yield BRANCH
    if ver_after != ver_before or locked_after:
        return -1, bool(is_leaf)
    return slot, bool(is_leaf)


def d_find_leaf_locked_query(tree: BPlusTree, latches: LatchTable, key: int):
    """Lock-free reader descent with per-node validation; restarts from the
    root when a node changed underneath it. Returns (leaf, steps)."""
    while True:
        node = tree.root
        steps = 1
        ok = True
        while True:
            slot, is_leaf = yield from d_node_scan_validated(tree, latches, node, key)
            yield BRANCH
            if slot < 0:
                ok = False
                break
            if is_leaf:
                return node, steps
            node = yield Load(tree.views.addrs(node).children[slot])
            steps += 1
        if not ok:
            continue


def d_find_leaf_coupling(tree: BPlusTree, latches: LatchTable, key: int, owner: int):
    """Writer descent with latch crabbing: hold the parent latch until the
    child is latched and known safe (non-full). Returns (leaf, steps,
    held) where ``held`` is the list of latched node ids (leaf last)."""
    views = tree.views
    held: list[int] = []
    node = tree.root
    steps = 0
    while True:
        a = views.addrs(node)
        yield from latches.d_acquire(a.lock, owner)
        held.append(node)
        steps += 1
        cnt = yield Load(a.count)
        yield BRANCH
        if cnt < tree.layout.fanout and len(held) > 1:
            # child is safe: release every ancestor latch
            for anc in held[:-1]:
                yield from latches.d_release(views.addrs(anc).lock)
            held = held[-1:]
        is_leaf = yield Load(a.leaf)
        yield BRANCH
        if is_leaf:
            return node, steps, held
        slot = yield from d_child_slot(tree, node, key)
        node = yield Load(a.children[slot])


def d_release_all(tree: BPlusTree, latches: LatchTable, held: list[int]):
    for node in held:
        yield from latches.d_release(tree.views.addrs(node).lock)


def d_leaf_upsert_locked(
    tree: BPlusTree, latches: LatchTable, held: list[int], leaf: int, key: int, value: int
):
    """Upsert under latches (crabbing guarantees every split target is
    held). Mutation executes host-side instantaneously; the node version
    bump makes concurrent validated readers retry; the counted stores are
    charged here. Returns the old value."""
    views = tree.views
    a = views.addrs(leaf)
    cnt = yield Load(a.count)
    yield BRANCH
    # scan for hit (update-in-place fast path)
    for slot in range(cnt):
        k = yield Load(a.keys[slot])
        yield BRANCH
        if k == key:
            old = yield Load(a.values[slot])
            yield Store(a.values[slot], value)
            return old
        if k > key:
            break
    will_split = cnt >= tree.layout.fanout
    old = tree.upsert(key, value)
    # charge the insert's data movement: shifted entries + the new slot
    data = tree.arena.data
    moved = min(cnt + 1, tree.layout.fanout)
    for i in range(moved):
        yield Store(a.keys[i], int(data[a.keys[i]]))
    if will_split:
        # bump versions so validated readers of every held node retry
        for node in held:
            ver = views.addrs(node).version
            yield Store(ver, int(data[ver]))
    yield Alu()
    return old


def d_leaf_delete_locked(
    tree: BPlusTree, latches: LatchTable, leaf: int, key: int
):
    """Merge-free delete under the leaf latch; returns the old value."""
    a = tree.views.addrs(leaf)
    cnt = yield Load(a.count)
    yield BRANCH
    found = False
    for slot in range(cnt):
        k = yield Load(a.keys[slot])
        yield BRANCH
        if k == key:
            found = True
            break
        if k > key:
            break
    yield BRANCH
    if not found:
        return NULL_VALUE
    old = tree.delete(key)
    data = tree.arena.data
    for i in range(cnt):
        yield Store(a.keys[i], int(data[a.keys[i]]))
    return old

"""Physical layout of B+tree nodes in the simulated global memory.

A node is a fixed-size block of 64-bit words, segment-aligned so coalescing
behaves like the paper's GPU layout:

====  ==============================================================
word  contents
====  ==============================================================
0     ``count`` — number of keys currently stored
1     ``is_leaf`` — 1 for leaves, 0 for inner nodes
2     ``version`` — bumped atomically on every split (leaf validation, §4.2)
3     ``rf`` — range field (§5): min key of the leaf ``height + 1`` hops
      ahead on the leaf chain; ``EMPTY_KEY`` when none
4     ``next_leaf`` — node id of the right sibling leaf (``NO_NODE`` at end)
5     ``lock`` — latch word (0 = free); used by the Lock GB-tree baseline
6     ``fence`` — the leaf's lower fence key: the parent separator that
      routes into this leaf (0 for the leftmost). Horizontal traversal and
      the ``covers`` validation use fences, which stay exact even when
      deletions empty a leaf (its *keys* can no longer witness its range)
7..   ``keys[fanout]`` — unused slots hold ``EMPTY_KEY``
...   payload: inner nodes store ``children[fanout + 1]`` node ids,
      leaves store ``values[fanout]`` (the extra slot is unused)
====  ==============================================================

Inner-node semantics: ``keys[i]`` is the *separator* = smallest key reachable
under ``children[i + 1]``; a lookup follows
``children[searchsorted(keys, key, side="right")]``. Because empty key slots
hold ``EMPTY_KEY`` (which sorts after every real key), a search may scan the
full ``fanout`` width without consulting ``count`` — exactly the branch-free
trick GPU B-trees use.
"""

from __future__ import annotations

from dataclasses import dataclass, field

OFF_COUNT = 0
OFF_LEAF = 1
OFF_VERSION = 2
OFF_RF = 3
OFF_NEXT = 4
OFF_LOCK = 5
OFF_FENCE = 6
OFF_KEYS = 7
HEADER_WORDS = 7


@dataclass(frozen=True)
class NodeLayout:
    """Address arithmetic for a node arena region."""

    fanout: int
    base: int = 0
    words_per_segment: int = 16
    #: derived constants, precomputed once (these sit on every hot address
    #: computation in device code, so they are plain attributes, not
    #: recomputed properties): ``payload_off`` — first payload word;
    #: ``node_words`` — header + keys + children/values (fanout + 1 payload
    #: slots); ``stride`` — node pitch in words, rounded up to a whole
    #: number of segments.
    payload_off: int = field(init=False, repr=False, compare=False)
    node_words: int = field(init=False, repr=False, compare=False)
    stride: int = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        set_ = object.__setattr__  # frozen dataclass
        set_(self, "payload_off", OFF_KEYS + self.fanout)
        set_(self, "node_words", HEADER_WORDS + self.fanout + self.fanout + 1)
        seg = self.words_per_segment
        set_(self, "stride", (self.node_words + seg - 1) // seg * seg)

    def node_base(self, node_id: int) -> int:
        return self.base + node_id * self.stride

    def addr(self, node_id: int, offset: int) -> int:
        return self.base + node_id * self.stride + offset

    def key_addr(self, node_id: int, slot: int) -> int:
        return self.addr(node_id, OFF_KEYS + slot)

    def payload_addr(self, node_id: int, slot: int) -> int:
        return self.addr(node_id, self.payload_off + slot)

    def arena_words(self, max_nodes: int) -> int:
        """Total words needed for ``max_nodes`` nodes."""
        return max_nodes * self.stride

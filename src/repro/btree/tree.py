"""Host-side B+tree over the simulated global memory.

This is the structural substrate every system under test shares: a regular
B+tree (inner nodes hold keys + child ids, leaves hold keys + values, leaves
chained left-to-right), stored in a :class:`~repro.memory.MemoryArena` with
the layout of :mod:`repro.btree.layout`.

The methods here are the *host plane*: bulk build, point/range operations
and structural maintenance used by the vectorized engine, the sequential
reference executor, and — through counted wrappers — the device programs.
They manipulate the arena through uncounted views; device-side counting is
the responsibility of the callers in :mod:`repro.btree.device_ops` and the
kernels.

Deletion is **merge-free** (keys are removed and slots compacted, leaves may
underflow but are never merged), the standard choice in GPU B-trees — the
paper's structure conflicts come from *splits*, which are fully implemented
including root splits.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._types import EMPTY_KEY, MAX_KEY, NO_NODE, NULL_VALUE
from ..config import TreeConfig
from ..errors import TreeError, TreeFullError
from ..memory import MemoryArena
from .layout import NodeLayout
from .node import NodeAccessor
from .views import StructView


@dataclass
class SplitEvent:
    """Record of one structural modification (for conflict accounting)."""

    node: int
    new_node: int
    level: int  # 0 = leaf


class BPlusTree:
    """A B+tree living in simulated GPU global memory."""

    def __init__(
        self,
        arena: MemoryArena,
        layout: NodeLayout,
        config: TreeConfig,
        max_nodes: int,
    ) -> None:
        self.arena = arena
        self.layout = layout
        self.config = config
        self.max_nodes = max_nodes
        self.nodes = NodeAccessor(arena, layout)
        self.root = NO_NODE
        self.height = 0  # number of node levels on a root->leaf path
        self._next_node = 0
        self.split_events: list[SplitEvent] = []
        self._views: StructView | None = None

    @property
    def views(self) -> StructView:
        # cached per arena binding; still tracks ``self.arena`` rebinding
        # (tests transplant trees between arenas). Caching also keeps the
        # StructView's NodeAddrs memo warm across traversal steps.
        v = self._views
        if v is None or v.arena is not self.arena:
            v = self._views = StructView(self.arena, self.layout)
        return v

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    @classmethod
    def build(
        cls,
        keys: np.ndarray,
        values: np.ndarray,
        config: TreeConfig | None = None,
        fill_factor: float = 0.7,
        arena: MemoryArena | None = None,
    ) -> "BPlusTree":
        """Bulk-build a tree from sorted-or-not unique ``keys``/``values``.

        Leaves are packed to ``fill_factor`` of the fanout, mirroring how the
        paper's evaluation pre-builds trees of a given size and then streams
        request batches at them.
        """
        config = config or TreeConfig()
        keys = np.asarray(keys, dtype=np.int64)
        values = np.asarray(values, dtype=np.int64)
        if keys.size != values.size:
            raise TreeError("keys and values must have equal length")
        if keys.size == 0:
            raise TreeError("cannot bulk-build an empty tree")
        if keys.min() < 0 or keys.max() > MAX_KEY:
            raise TreeError(f"keys must lie in [0, {MAX_KEY}]")
        order = np.argsort(keys, kind="stable")
        keys = keys[order]
        values = values[order]
        if np.any(keys[1:] == keys[:-1]):
            raise TreeError("bulk build requires unique keys")
        if not 0.25 <= fill_factor <= 1.0:
            raise TreeError(f"fill_factor must be in [0.25, 1.0], got {fill_factor}")

        fanout = config.fanout
        leaf_fill = max(1, min(fanout, int(round(fanout * fill_factor))))
        inner_fill = max(2, int(round((fanout + 1) * fill_factor)))
        max_nodes = cls.plan_max_nodes(int(keys.size), config, fill_factor)

        layout = NodeLayout(fanout=fanout)
        if arena is None:
            arena = MemoryArena(layout.arena_words(max_nodes))
        else:
            base = arena.alloc(layout.arena_words(max_nodes), align=layout.words_per_segment)
            layout = NodeLayout(fanout=fanout, base=base)

        tree = cls(arena, layout, config, max_nodes)
        tree._bulk_load(keys, values, leaf_fill, inner_fill)
        return tree

    @staticmethod
    def plan_max_nodes(n_keys: int, config: TreeConfig, fill_factor: float = 0.7) -> int:
        """Node-arena capacity for a bulk build of ``n_keys`` keys plus the
        configured headroom for subsequent splits."""
        fanout = config.fanout
        leaf_fill = max(1, min(fanout, int(round(fanout * fill_factor))))
        inner_fill = max(2, int(round((fanout + 1) * fill_factor)))
        n_leaves = (n_keys + leaf_fill - 1) // leaf_fill
        total = n_leaves
        level = n_leaves
        while level > 1:
            level = (level + inner_fill - 1) // inner_fill
            total += level
        return int(total * config.arena_headroom) + 8

    def _alloc_node(self, leaf: bool) -> int:
        if self._next_node >= self.max_nodes:
            raise TreeFullError(
                f"node arena exhausted at {self.max_nodes} nodes; "
                "increase TreeConfig.arena_headroom"
            )
        node = self._next_node
        self._next_node += 1
        self.nodes.clear_node(node, leaf)
        return node

    @property
    def node_count(self) -> int:
        return self._next_node

    def _bulk_load(
        self, keys: np.ndarray, values: np.ndarray, leaf_fill: int, inner_fill: int
    ) -> None:
        views = self.views
        # --- leaves ------------------------------------------------------
        leaf_ids: list[int] = []
        for start in range(0, keys.size, leaf_fill):
            chunk = slice(start, min(start + leaf_fill, keys.size))
            node = self._alloc_node(leaf=True)
            cnt = chunk.stop - chunk.start
            h = views.host(node)
            h.count = cnt
            h.keys[:cnt] = keys[chunk]
            h.values[:cnt] = values[chunk]
            # lower fence = the parent separator routing here (min key at
            # build time); the leftmost leaf is fenced at 0
            h.fence = keys[chunk][0] if leaf_ids else 0
            if leaf_ids:
                views.host(leaf_ids[-1]).next_leaf = node
            leaf_ids.append(node)
        views.host(leaf_ids[-1]).next_leaf = NO_NODE

        # --- inner levels --------------------------------------------------
        self.height = 1
        level_ids = leaf_ids
        level_mins = [int(views.host(n).keys[0]) for n in level_ids]
        while len(level_ids) > 1:
            next_ids: list[int] = []
            next_mins: list[int] = []
            # chunk so no inner node ends up with a single child (it would
            # have zero separators): shrink a chunk by one when exactly one
            # child would remain after it
            starts: list[int] = []
            pos = 0
            while pos < len(level_ids):
                starts.append(pos)
                step = inner_fill
                if len(level_ids) - (pos + step) == 1:
                    # absorb the orphan if capacity allows, else leave two
                    if step + 1 <= self.layout.fanout + 1:
                        step += 1
                    else:
                        step -= 1
                pos += step
            for i, start in enumerate(starts):
                stop = starts[i + 1] if i + 1 < len(starts) else len(level_ids)
                children = level_ids[start:stop]
                mins = level_mins[start:stop]
                node = self._alloc_node(leaf=False)
                h = views.host(node)
                cnt = len(children) - 1
                h.count = cnt
                if cnt:
                    h.keys[:cnt] = mins[1:]
                h.children[: len(children)] = children
                next_ids.append(node)
                next_mins.append(mins[0])
            level_ids, level_mins = next_ids, next_mins
            self.height += 1
        self.root = level_ids[0]
        self.init_rf()

    # ------------------------------------------------------------------ #
    # RF (range field, §5)
    # ------------------------------------------------------------------ #
    def init_rf(self) -> None:
        """Set each leaf's RF to the min key of the leaf ``height + 1`` hops
        ahead on the chain (``EMPTY_KEY`` when the chain ends earlier)."""
        views = self.views
        leaves = self.leaf_ids()
        hop = self.height + 1
        for i, leaf in enumerate(leaves):
            j = i + hop
            rf = EMPTY_KEY
            if j < len(leaves):
                tgt = views.host(leaves[j])
                if tgt.count > 0:
                    rf = int(tgt.keys[0])
            views.host(leaf).rf = rf

    def update_rf(self, start_leaf: int, observed_steps: int) -> None:
        """§5 dynamic RF maintenance: when a horizontal traversal starting at
        ``start_leaf`` took more steps than the tree height, record the min
        key of the leaf ``height + 1`` hops ahead so later iterations choose
        vertical traversal instead."""
        if observed_steps <= self.height:
            return
        self.arena.host_write_sync()
        views = self.views
        node = start_leaf
        for _ in range(self.height + 1):
            nxt = views.host(node).next_leaf
            if nxt == NO_NODE:
                return
            node = nxt
        h = views.host(node)
        if h.count > 0:
            views.host(start_leaf).rf = int(h.keys[0])

    # ------------------------------------------------------------------ #
    # traversal helpers (host plane)
    # ------------------------------------------------------------------ #
    def child_slot(self, node: int, key: int) -> int:
        """Index of the child to follow in an inner node for ``key``."""
        hk = self.nodes.host_keys(node)
        return int(np.searchsorted(hk, key, side="right"))

    def find_leaf(self, key: int) -> tuple[int, int]:
        """Descend from the root; return (leaf id, nodes visited)."""
        node = self.root
        steps = 1
        views = self.views
        while not views.host(node).leaf:
            node = int(views.host(node).children[self.child_slot(node, key)])
            steps += 1
        return node, steps

    def leaf_slot(self, leaf: int, key: int) -> int:
        """Slot of ``key`` in ``leaf``, or -1 when absent."""
        hk = self.nodes.host_keys(leaf)
        pos = int(np.searchsorted(hk, key, side="left"))
        if pos < self.layout.fanout and hk[pos] == key:
            return pos
        return -1

    # ------------------------------------------------------------------ #
    # point operations (host plane)
    # ------------------------------------------------------------------ #
    def search(self, key: int) -> int:
        """Value stored under ``key``, or ``NULL_VALUE``."""
        leaf, _ = self.find_leaf(key)
        slot = self.leaf_slot(leaf, key)
        if slot < 0:
            return NULL_VALUE
        return int(self.nodes.host_payload(leaf)[slot])

    def upsert(self, key: int, value: int) -> int:
        """Insert or overwrite ``key``; returns the old value or NULL_VALUE.

        This is the *update class* semantic the paper uses: ``update`` and
        ``insert`` both resolve to upsert on the leaf (insert of an existing
        key overwrites; update of a missing key inserts).
        """
        if not 0 <= key <= MAX_KEY:
            raise TreeError(f"key {key} out of range")
        self.arena.host_write_sync()
        path = self._descend_path(key)
        leaf = path[-1][0]
        slot = self.leaf_slot(leaf, key)
        if slot >= 0:
            payload = self.nodes.host_payload(leaf)
            old = int(payload[slot])
            payload[slot] = value
            return old
        self._leaf_insert(path, key, value)
        return NULL_VALUE

    def delete(self, key: int) -> int:
        """Remove ``key``; returns the old value or ``NULL_VALUE`` if absent."""
        self.arena.host_write_sync()
        leaf, _ = self.find_leaf(key)
        slot = self.leaf_slot(leaf, key)
        if slot < 0:
            return NULL_VALUE
        h = self.views.host(leaf)
        cnt = h.count
        hk, hp = h.keys, h.values
        old = int(hp[slot])
        hk[slot : cnt - 1] = hk[slot + 1 : cnt]
        hp[slot : cnt - 1] = hp[slot + 1 : cnt]
        hk[cnt - 1] = EMPTY_KEY
        hp[cnt - 1] = 0
        h.count = cnt - 1
        return old

    def range_scan(self, lo: int, hi: int) -> tuple[np.ndarray, np.ndarray]:
        """All (key, value) pairs with ``lo <= key <= hi``, in key order."""
        if hi < lo:
            return np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64)
        leaf, _ = self.find_leaf(lo)
        out_k: list[int] = []
        out_v: list[int] = []
        while leaf != NO_NODE:
            h = self.views.host(leaf)
            cnt = h.count
            hk = h.keys[:cnt]
            hp = h.values[:cnt]
            sel = (hk >= lo) & (hk <= hi)
            out_k.extend(int(k) for k in hk[sel])
            out_v.extend(int(v) for v in hp[sel])
            if cnt and hk[cnt - 1] > hi:
                break
            leaf = h.next_leaf
        return np.asarray(out_k, dtype=np.int64), np.asarray(out_v, dtype=np.int64)

    # ------------------------------------------------------------------ #
    # insertion machinery (splits)
    # ------------------------------------------------------------------ #
    def _descend_path(self, key: int) -> list[tuple[int, int]]:
        """Root-to-leaf path as (node, child slot taken); leaf slot is -1."""
        path: list[tuple[int, int]] = []
        node = self.root
        views = self.views
        while not views.host(node).leaf:
            slot = self.child_slot(node, key)
            path.append((node, slot))
            node = int(views.host(node).children[slot])
        path.append((node, -1))
        return path

    def _leaf_insert(self, path: list[tuple[int, int]], key: int, value: int) -> None:
        leaf = path[-1][0]
        cnt = self.views.host(leaf).count
        if cnt < self.layout.fanout:
            self._insert_into_leaf(leaf, cnt, key, value)
            return
        # split the leaf, then insert into the correct half
        new_leaf = self._split_leaf(leaf)
        sep = int(self.views.host(new_leaf).keys[0])
        target = new_leaf if key >= sep else leaf
        tcnt = self.views.host(target).count
        self._insert_into_leaf(target, tcnt, key, value)
        self._insert_separator(path[:-1], sep, new_leaf)

    def _insert_into_leaf(self, leaf: int, cnt: int, key: int, value: int) -> None:
        h = self.views.host(leaf)
        hk, hp = h.keys, h.values
        pos = int(np.searchsorted(hk[:cnt], key, side="left"))
        hk[pos + 1 : cnt + 1] = hk[pos:cnt]
        hp[pos + 1 : cnt + 1] = hp[pos:cnt]
        hk[pos] = key
        hp[pos] = value
        h.count = cnt + 1

    def _split_leaf(self, leaf: int) -> int:
        """Split a full leaf; returns the new right sibling."""
        new_leaf = self._alloc_node(leaf=True)
        h = self.views.host(leaf)
        n = self.views.host(new_leaf)
        cnt = h.count
        half = cnt // 2
        hk, hp = h.keys, h.values
        nk, np_ = n.keys, n.values
        moved = cnt - half
        nk[:moved] = hk[half:cnt]
        np_[:moved] = hp[half:cnt]
        hk[half:cnt] = EMPTY_KEY
        hp[half:cnt] = 0
        h.count = half
        n.count = moved
        # chain + fence + version + RF propagation (§4.2, §5)
        n.fence = nk[0]
        n.next_leaf = h.next_leaf
        h.next_leaf = new_leaf
        h.version += 1
        n.version = h.version
        n.rf = h.rf
        self.split_events.append(SplitEvent(node=leaf, new_node=new_leaf, level=0))
        return new_leaf

    def _insert_separator(self, inner_path: list[tuple[int, int]], sep: int, child: int) -> None:
        """Insert (sep -> child) into the parent chain, splitting upward."""
        views = self.views
        level = 1
        while inner_path:
            node, _ = inner_path.pop()
            cnt = views.host(node).count
            if cnt < self.layout.fanout:
                self._insert_into_inner(node, cnt, sep, child)
                return
            node_new, promote = self._split_inner(node, level)
            # insert into the proper half after the split
            target = node_new if sep >= promote else node
            self._insert_into_inner(target, views.host(target).count, sep, child)
            sep, child = promote, node_new
            level += 1
        # split reached the root: grow the tree
        new_root = self._alloc_node(leaf=False)
        h = views.host(new_root)
        h.count = 1
        h.keys[0] = sep
        h.children[0] = self.root
        h.children[1] = child
        self.root = new_root
        self.height += 1
        self.init_rf()

    def _insert_into_inner(self, node: int, cnt: int, sep: int, child: int) -> None:
        h = self.views.host(node)
        hk, hp = h.keys, h.children
        pos = int(np.searchsorted(hk[:cnt], sep, side="left"))
        hk[pos + 1 : cnt + 1] = hk[pos:cnt]
        hp[pos + 2 : cnt + 2] = hp[pos + 1 : cnt + 1]
        hk[pos] = sep
        hp[pos + 1] = child
        h.count = cnt + 1

    def _split_inner(self, node: int, level: int) -> tuple[int, int]:
        """Split a full inner node; returns (new right node, promoted key)."""
        new_node = self._alloc_node(leaf=False)
        h = self.views.host(node)
        n = self.views.host(new_node)
        cnt = h.count  # == fanout
        mid = cnt // 2
        hk, hp = h.keys, h.children
        nk, np_ = n.keys, n.children
        promote = int(hk[mid])
        right = cnt - mid - 1
        nk[:right] = hk[mid + 1 : cnt]
        np_[: right + 1] = hp[mid + 1 : cnt + 1]
        hk[mid:cnt] = EMPTY_KEY
        hp[mid + 1 : cnt + 1] = 0
        h.count = mid
        n.count = right
        self.split_events.append(SplitEvent(node=node, new_node=new_node, level=level))
        return new_node, promote

    # ------------------------------------------------------------------ #
    # inspection / validation
    # ------------------------------------------------------------------ #
    def leaf_ids(self) -> list[int]:
        """Leaf node ids in chain order."""
        views = self.views
        node = self.root
        while not views.host(node).leaf:
            node = int(views.host(node).children[0])
        out = []
        while node != NO_NODE:
            out.append(node)
            node = views.host(node).next_leaf
        return out

    def items(self) -> tuple[np.ndarray, np.ndarray]:
        """All (key, value) pairs in key order (host plane)."""
        ks: list[np.ndarray] = []
        vs: list[np.ndarray] = []
        for leaf in self.leaf_ids():
            h = self.views.host(leaf)
            cnt = h.count
            ks.append(h.keys[:cnt].copy())
            vs.append(h.values[:cnt].copy())
        if not ks:
            return np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64)
        return np.concatenate(ks), np.concatenate(vs)

    def __len__(self) -> int:
        return int(sum(self.views.host(leaf).count for leaf in self.leaf_ids()))

    def validate(self) -> None:
        """Check structural invariants; raises :class:`TreeError` on failure.

        Checks: per-node key ordering, separator consistency, uniform leaf
        depth, leaf-chain global ordering, child counts.
        """
        lay = self.layout
        leaf_depths: set[int] = set()

        def rec(node: int, lo: int, hi: int, depth: int) -> None:
            h = self.views.host(node)
            cnt = h.count
            if cnt > lay.fanout or cnt < 0:
                raise TreeError(f"node {node}: bad count {cnt}")
            hk = h.keys[:cnt]
            if np.any(hk[1:] <= hk[:-1]):
                raise TreeError(f"node {node}: keys not strictly increasing")
            if cnt and (hk[0] < lo or hk[-1] >= hi):
                raise TreeError(f"node {node}: keys escape [{lo}, {hi})")
            if h.leaf:
                leaf_depths.add(depth)
                if h.fence != lo:
                    raise TreeError(
                        f"leaf {node}: fence {h.fence} != routed lower bound {lo}"
                    )
                return
            if cnt == 0 and node != self.root:
                raise TreeError(f"inner node {node} has no separator")
            hp = h.children
            bounds = [lo, *[int(k) for k in hk], hi]
            for i in range(cnt + 1):
                rec(int(hp[i]), bounds[i], bounds[i + 1], depth + 1)

        rec(self.root, 0, EMPTY_KEY, 1)
        if len(leaf_depths) != 1:
            raise TreeError(f"leaves at different depths: {sorted(leaf_depths)}")
        if leaf_depths.pop() != self.height:
            raise TreeError("stored height disagrees with actual leaf depth")
        keys, _ = self.items()
        if np.any(keys[1:] <= keys[:-1]):
            raise TreeError("leaf chain is not globally sorted")

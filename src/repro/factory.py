"""Construction helpers: size one arena for tree + synchronization metadata
and build any system over it.

The STM-based systems (STM GB-tree, Eirene) need ownership/version tables
covering the node region (2 extra words per protected word) plus one SMO
latch word; the Lock GB-tree only needs the per-node lock words already in
the node layout. One factory sizes everything up front so callers never
think about arena arithmetic.
"""

from __future__ import annotations

import numpy as np

from .btree.layout import NodeLayout
from .btree.tree import BPlusTree
from .config import COMBINING_ONLY, DeviceConfig, EireneConfig, FULL_EIRENE, TreeConfig
from .device import DeviceContext
from .memory import MemoryArena
from .stm import StmRegion

#: Eirene ablation variants by name. Each maps to an
#: :class:`~repro.config.EireneConfig` whose feature flags select a
#: different pass list (:func:`repro.core.pipeline.eirene_pass_plan`) —
#: the harness builds every Fig. 11/12 bar through these names, never by
#: branching inside system code.
EIRENE_VARIANTS: dict[str, EireneConfig] = {
    "eirene": FULL_EIRENE,
    "eirene+combining": COMBINING_ONLY,  # Fig. 11's "+ Combining" bar
    "eirene-no-locality": COMBINING_ONLY,
    "eirene-no-rf": EireneConfig(enable_rf_decision=False),
    "eirene-no-ntg": EireneConfig(enable_narrowed_thread_groups=False),
    "eirene-no-partition": EireneConfig(enable_kernel_partition=False),
}


def build_device_tree(
    keys: np.ndarray,
    values: np.ndarray,
    config: TreeConfig | None = None,
    fill_factor: float = 0.7,
    with_stm_tables: bool = True,
    device: DeviceConfig | None = None,
    seed: int = 0,
) -> tuple[DeviceContext, BPlusTree, StmRegion | None, int]:
    """Build a tree inside a fresh :class:`~repro.device.DeviceContext`.

    The context's arena is sized for the tree plus its synchronization
    metadata. Returns ``(devctx, tree, stm_region, smo_lock_addr)``;
    ``stm_region`` is None when ``with_stm_tables`` is False.
    """
    config = config or TreeConfig()
    layout = NodeLayout(fanout=config.fanout)
    max_nodes = BPlusTree.plan_max_nodes(len(keys), config, fill_factor)
    node_words = layout.arena_words(max_nodes)
    total = node_words + (2 * node_words if with_stm_tables else 0) + 64
    arena = MemoryArena(total, words_per_segment=layout.words_per_segment)
    devctx = DeviceContext.adopt(arena, device, seed=seed)
    tree = BPlusTree.build(keys, values, config, fill_factor, arena=arena)
    region = None
    if with_stm_tables:
        region = StmRegion(arena, tree.layout.base, node_words)
    smo_lock_addr = arena.alloc(1)
    return devctx, tree, region, smo_lock_addr


def build_tree(
    keys: np.ndarray,
    values: np.ndarray,
    config: TreeConfig | None = None,
    fill_factor: float = 0.7,
    with_stm_tables: bool = True,
) -> tuple[BPlusTree, StmRegion | None, int]:
    """Build a tree in an arena sized for its synchronization metadata.

    Returns ``(tree, stm_region, smo_lock_addr)``; ``stm_region`` is None
    when ``with_stm_tables`` is False. Convenience wrapper over
    :func:`build_device_tree` for callers that don't need the context.
    """
    _, tree, region, smo_lock_addr = build_device_tree(
        keys, values, config, fill_factor, with_stm_tables
    )
    return tree, region, smo_lock_addr


def make_system(
    system: str,
    keys: np.ndarray,
    values: np.ndarray,
    tree_config: TreeConfig | None = None,
    device: DeviceConfig | None = None,
    fill_factor: float = 0.7,
    seed: int = 0,
    **kwargs,
):
    """Build a ready-to-run system by name.

    ``system`` ∈ {"nocc", "stm", "lock", "eirene"} or an Eirene ablation
    variant from :data:`EIRENE_VARIANTS` (e.g. ``"eirene+combining"``,
    ``"eirene-no-partition"``) — variants resolve to an
    :class:`~repro.config.EireneConfig` whose flags select the pass list.
    Extra kwargs go to the system constructor; an explicit ``config=``
    overrides the variant's.
    """
    from .baselines.lock_gbtree import LockGBTree
    from .baselines.nocc import NoCCGBTree
    from .baselines.stm_gbtree import StmGBTree
    from .core.eirene import EireneTree

    name = system.lower()
    if name == "nocc":
        ctx, tree, _, _ = build_device_tree(
            keys, values, tree_config, fill_factor, with_stm_tables=False,
            device=device, seed=seed,
        )
        return NoCCGBTree(tree, devctx=ctx, **kwargs)
    if name == "stm":
        ctx, tree, region, smo = build_device_tree(
            keys, values, tree_config, fill_factor, device=device, seed=seed
        )
        return StmGBTree(tree, region, smo, devctx=ctx, **kwargs)
    if name == "lock":
        ctx, tree, _, _ = build_device_tree(
            keys, values, tree_config, fill_factor, with_stm_tables=False,
            device=device, seed=seed,
        )
        return LockGBTree(tree, devctx=ctx, **kwargs)
    if name in EIRENE_VARIANTS:
        kwargs.setdefault("config", EIRENE_VARIANTS[name])
        ctx, tree, region, smo = build_device_tree(
            keys, values, tree_config, fill_factor, device=device, seed=seed
        )
        return EireneTree(tree, region, smo, devctx=ctx, **kwargs)
    raise ValueError(
        f"unknown system {system!r}; use nocc/stm/lock or one of "
        f"{sorted(EIRENE_VARIANTS)}"
    )

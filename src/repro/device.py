"""Device contexts: one object per simulated GPU.

Historically the reproduction treated "the device" as ambient state — one
:class:`~repro.memory.MemoryArena` created wherever convenient, a
:class:`~repro.config.DeviceConfig` passed alongside, cost models and warp
rngs constructed ad hoc. A :class:`DeviceContext` makes ownership explicit:
it bundles the arena (global memory + access counters), the device
configuration, the calibrated cost model, and the scheduling RNG seed, and
it is the unit the sharding layer replicates — one context per shard, so
"which device owns which memory" is always answerable.

Three lifecycle operations support cheap reuse:

* :meth:`snapshot` / :meth:`restore` — capture and rewind the full device
  memory state (words, bump pointer, statistics) in place, so code holding
  references to the arena (trees, STM regions) stays valid;
* :meth:`fork` — an independent deep copy (new arena, same config), for
  building per-test or per-shard replicas without re-running setup.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .config import DeviceConfig, ExecutionConfig
from .errors import ConfigError
from .memory import MemoryArena
from .memory.stats import MemoryStats

#: default arena capacity (words) when a context is created bare
DEFAULT_CAPACITY_WORDS = 1 << 16


@dataclass
class DeviceSnapshot:
    """Frozen copy of a context's mutable device state."""

    data: np.ndarray
    brk: int
    stats: MemoryStats
    counting: bool


class DeviceContext:
    """One simulated GPU: arena + config + cost model + scheduling seed."""

    def __init__(
        self,
        capacity_words: int | None = None,
        *,
        arena: MemoryArena | None = None,
        device: DeviceConfig | None = None,
        cost: "object | None" = None,
        seed: int = 0,
        execution: "ExecutionConfig | None" = None,
    ) -> None:
        self.device = device or DeviceConfig()
        #: interpreter selection for launches created by this context;
        #: ``None`` defers to the process-wide execution config (which
        #: honours the ``REPRO_SLOW_PATH=1`` escape hatch).
        self.execution = execution
        if arena is not None:
            if capacity_words is not None and arena.capacity != capacity_words:
                raise ValueError(
                    f"capacity_words {capacity_words} disagrees with the "
                    f"adopted arena's capacity {arena.capacity}"
                )
            self.arena = arena
        else:
            self.arena = MemoryArena(
                capacity_words or DEFAULT_CAPACITY_WORDS,
                words_per_segment=self.device.words_per_segment,
            )
        if cost is None:
            from .simt import CostModel

            cost = CostModel(device=self.device)
        self.cost = cost
        self.seed = seed
        #: opt-in analysis probe (e.g. :class:`repro.analysis.Sanitizer`);
        #: every SIMT launch created by this context routes its executed ops
        #: through it. ``None`` (the default) is the zero-overhead path.
        self.sanitizer = None

    # ------------------------------------------------------------------ #
    # ownership views
    # ------------------------------------------------------------------ #
    @property
    def counters(self) -> MemoryStats:
        """The device's global-memory access counters."""
        return self.arena.stats

    def make_rng(self, salt: int = 0) -> np.random.Generator:
        """Deterministic per-purpose rng derived from the context seed."""
        return np.random.default_rng((self.seed, salt))

    def launch(self, n_requests: int, rng: np.random.Generator | None = None):
        """A :class:`~repro.simt.KernelLaunch` grid on this device."""
        from .simt import KernelLaunch

        return KernelLaunch(
            self.device, self.arena, n_requests, rng=rng, probe=self.sanitizer,
            execution=self.execution,
        )

    def attach_probe(self, probe) -> None:
        """Attach an analysis probe; composes with any already attached."""
        if self.sanitizer is None:
            self.sanitizer = probe
        else:
            from .analysis.races import CompositeProbe

            if isinstance(self.sanitizer, CompositeProbe):
                self.sanitizer.probes.append(probe)
            else:
                self.sanitizer = CompositeProbe([self.sanitizer, probe])

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def snapshot(self) -> DeviceSnapshot:
        """Capture arena words, bump pointer and counters.

        Only the device-visible heap is captured — sanitizer shadow words
        (``alloc_system``) are analysis state, not device state.
        """
        return DeviceSnapshot(
            data=self.arena.data[: self.arena.capacity].copy(),
            brk=self.arena.allocated,
            stats=self.arena.stats.snapshot(),
            counting=self.arena.counting,
        )

    def restore(self, snap: DeviceSnapshot) -> None:
        """Rewind to ``snap`` *in place*: objects holding the arena (trees,
        STM regions built before the snapshot) remain valid."""
        if snap.data.size != self.arena.capacity:
            raise ConfigError(
                f"snapshot capacity {snap.data.size} != arena {self.arena.capacity}"
            )
        np.copyto(self.arena.data[: self.arena.capacity], snap.data)
        self.arena._brk = snap.brk
        self.arena.stats = snap.stats.snapshot()
        self.arena.counting = snap.counting

    def fork(self, seed: int | None = None) -> "DeviceContext":
        """Independent copy: new arena with the same words, config shared
        (configs are frozen), fresh counters state copied from this one."""
        twin = DeviceContext(
            arena=MemoryArena(
                self.arena.capacity,
                words_per_segment=self.arena.words_per_segment,
            ),
            device=self.device,
            cost=self.cost,
            seed=self.seed if seed is None else seed,
            execution=self.execution,
        )
        np.copyto(twin.arena.data, self.arena.data[: self.arena.capacity])
        twin.arena._brk = self.arena.allocated
        twin.arena.stats = self.arena.stats.snapshot()
        twin.arena.counting = self.arena.counting
        return twin

    @classmethod
    def adopt(
        cls,
        arena: MemoryArena,
        device: DeviceConfig | None = None,
        seed: int = 0,
    ) -> "DeviceContext":
        """Wrap an existing arena (legacy construction paths)."""
        return cls(arena=arena, device=device, seed=seed)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DeviceContext(capacity={self.arena.capacity}, "
            f"sms={self.device.num_sms}, seed={self.seed})"
        )

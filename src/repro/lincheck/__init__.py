"""Linearizability: sequential reference executor and checker."""

from .checker import CheckReport, check_linearizable, compare_results, compare_state
from .sequential import SequentialReference

__all__ = [
    "CheckReport",
    "SequentialReference",
    "check_linearizable",
    "compare_results",
    "compare_state",
]

"""Sequential reference executor.

Executes a request batch one request at a time in logical-timestamp order
against a plain key→value map. By the paper's §6 definition, a concurrent
execution is linearizable iff its results (and final state) equal this
executor's. Every system under test is checked against it; Eirene must
always match, the baselines are *expected* to diverge under same-key races
(they do not guarantee linearizability).
"""

from __future__ import annotations

import numpy as np

from .._types import NULL_VALUE, OpKind
from ..workloads.requests import BatchResults, RequestBatch


class SequentialReference:
    """Timestamp-order executor over an in-memory map."""

    def __init__(self, keys: np.ndarray, values: np.ndarray) -> None:
        self.map: dict[int, int] = {
            int(k): int(v) for k, v in zip(keys, values, strict=True)
        }
        self._sorted_keys: np.ndarray | None = None

    def _sorted(self) -> np.ndarray:
        if self._sorted_keys is None:
            self._sorted_keys = np.array(sorted(self.map), dtype=np.int64)
        return self._sorted_keys

    def _dirty(self) -> None:
        self._sorted_keys = None

    def execute(self, batch: RequestBatch) -> BatchResults:
        """Run the batch sequentially; returns the reference results."""
        results = BatchResults.empty(batch.n)
        range_results: dict[int, tuple[np.ndarray, np.ndarray]] = {}
        kinds = batch.kinds
        keys = batch.keys
        values = batch.values
        ends = batch.range_ends
        for i in range(batch.n):
            kind = kinds[i]
            key = int(keys[i])
            if kind == OpKind.QUERY:
                results.values[i] = self.map.get(key, NULL_VALUE)
            elif kind in (OpKind.UPDATE, OpKind.INSERT):
                results.values[i] = self.map.get(key, NULL_VALUE)
                if key not in self.map:
                    self._dirty()
                self.map[key] = int(values[i])
            elif kind == OpKind.DELETE:
                if key in self.map:
                    results.values[i] = self.map.pop(key)
                    self._dirty()
                else:
                    results.values[i] = NULL_VALUE
            elif kind == OpKind.RANGE:
                sk = self._sorted()
                lo = int(np.searchsorted(sk, key, side="left"))
                hi = int(np.searchsorted(sk, int(ends[i]), side="right"))
                rk = sk[lo:hi].copy()
                rv = np.array([self.map[int(k)] for k in rk], dtype=np.int64)
                range_results[i] = (rk, rv)
            else:  # pragma: no cover - RequestBatch validates kinds
                raise ValueError(f"unknown kind {kind}")
        results.set_range_results(range_results)
        return results

    def items(self) -> tuple[np.ndarray, np.ndarray]:
        """Final map contents in key order."""
        sk = self._sorted()
        return sk.copy(), np.array([self.map[int(k)] for k in sk], dtype=np.int64)

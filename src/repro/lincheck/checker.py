"""Linearizability checker.

Compares a system's concurrent batch results and final tree state against
the :class:`~repro.lincheck.sequential.SequentialReference`. A mismatch is
reported as a :class:`~repro.errors.LinearizabilityViolation` carrying the
first few offending requests — enough to see *which* same-key race the
system resolved against timestamp order.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .._types import OpKind
from ..errors import LinearizabilityViolation
from ..workloads.requests import BatchResults, RequestBatch


@dataclass
class CheckReport:
    """Outcome of a linearizability check."""

    ok: bool
    n_requests: int
    value_mismatches: list[int] = field(default_factory=list)
    range_mismatches: list[int] = field(default_factory=list)
    state_mismatch: str | None = None

    @property
    def n_mismatches(self) -> int:
        return len(self.value_mismatches) + len(self.range_mismatches) + (
            1 if self.state_mismatch else 0
        )

    def describe(self, batch: RequestBatch | None = None, limit: int = 5) -> str:
        if self.ok:
            return f"linearizable: all {self.n_requests} request results match"
        lines = [f"NOT linearizable: {self.n_mismatches} mismatches"]
        for i in self.value_mismatches[:limit]:
            if batch is not None:
                lines.append(
                    f"  request {i}: {OpKind(batch.kinds[i]).name} key={batch.keys[i]}"
                )
            else:
                lines.append(f"  request {i}: value mismatch")
        for i in self.range_mismatches[:limit]:
            lines.append(f"  request {i}: range result mismatch")
        if self.state_mismatch:
            lines.append(f"  final state: {self.state_mismatch}")
        return "\n".join(lines)


def compare_results(
    batch: RequestBatch, got: BatchResults, expected: BatchResults
) -> CheckReport:
    """Compare per-request results; does not look at final state."""
    report = CheckReport(ok=True, n_requests=batch.n)
    point = batch.kinds != OpKind.RANGE
    mism = np.flatnonzero(point & (got.values != expected.values))
    if mism.size:
        report.ok = False
        report.value_mismatches = [int(i) for i in mism]
    for i in np.flatnonzero(batch.kinds == OpKind.RANGE):
        gk, gv = got.range_result(int(i))
        ek, ev = expected.range_result(int(i))
        if not (np.array_equal(gk, ek) and np.array_equal(gv, ev)):
            report.ok = False
            report.range_mismatches.append(int(i))
    return report


def compare_state(
    got_items: tuple[np.ndarray, np.ndarray],
    expected_items: tuple[np.ndarray, np.ndarray],
) -> str | None:
    """Compare final key/value contents; returns a description or None."""
    gk, gv = got_items
    ek, ev = expected_items
    if gk.size != ek.size:
        return f"size {gk.size} != expected {ek.size}"
    if not np.array_equal(gk, ek):
        first = int(np.flatnonzero(gk != ek)[0])
        return f"key divergence at position {first}: {gk[first]} != {ek[first]}"
    if not np.array_equal(gv, ev):
        first = int(np.flatnonzero(gv != ev)[0])
        return f"value divergence at key {gk[first]}: {gv[first]} != {ev[first]}"
    return None


def check_linearizable(
    batch: RequestBatch,
    got: BatchResults,
    expected: BatchResults,
    got_items: tuple[np.ndarray, np.ndarray] | None = None,
    expected_items: tuple[np.ndarray, np.ndarray] | None = None,
    raise_on_fail: bool = False,
) -> CheckReport:
    """Full check: per-request results plus (optionally) final state."""
    report = compare_results(batch, got, expected)
    if got_items is not None and expected_items is not None:
        report.state_mismatch = compare_state(got_items, expected_items)
        if report.state_mismatch:
            report.ok = False
    if raise_on_fail and not report.ok:
        raise LinearizabilityViolation(report.describe(batch))
    return report

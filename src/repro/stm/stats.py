"""Transaction statistics.

The paper reports conflicts per request (Eirene ≈ 4.8% of STM GB-tree) and
attributes response-time variance to unpredictable retry counts; these
counters are the source for both.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class StmStats:
    begins: int = 0
    commits: int = 0
    aborts: int = 0
    #: conflicts by cause: write-write acquire failure, read of an owned
    #: word, commit-time read validation failure, leaf version mismatch
    conflicts_ww: int = 0
    conflicts_rw: int = 0
    conflicts_validation: int = 0
    conflicts_version: int = 0
    by_label: dict[str, int] = field(default_factory=dict)

    @property
    def conflicts(self) -> int:
        return (
            self.conflicts_ww
            + self.conflicts_rw
            + self.conflicts_validation
            + self.conflicts_version
        )

    @property
    def abort_rate(self) -> float:
        return self.aborts / self.begins if self.begins else 0.0

    def reset(self) -> None:
        self.begins = 0
        self.commits = 0
        self.aborts = 0
        self.conflicts_ww = 0
        self.conflicts_rw = 0
        self.conflicts_validation = 0
        self.conflicts_version = 0
        self.by_label.clear()

    def snapshot(self) -> "StmStats":
        out = StmStats(
            begins=self.begins,
            commits=self.commits,
            aborts=self.aborts,
            conflicts_ww=self.conflicts_ww,
            conflicts_rw=self.conflicts_rw,
            conflicts_validation=self.conflicts_validation,
            conflicts_version=self.conflicts_version,
        )
        out.by_label = dict(self.by_label)
        return out

    def delta_since(self, earlier: "StmStats") -> "StmStats":
        return StmStats(
            begins=self.begins - earlier.begins,
            commits=self.commits - earlier.commits,
            aborts=self.aborts - earlier.aborts,
            conflicts_ww=self.conflicts_ww - earlier.conflicts_ww,
            conflicts_rw=self.conflicts_rw - earlier.conflicts_rw,
            conflicts_validation=self.conflicts_validation - earlier.conflicts_validation,
            conflicts_version=self.conflicts_version - earlier.conflicts_version,
        )

"""Software transactional memory (Holey & Zhai-style eager GPU STM)."""

from .device import DeviceStm
from .stats import StmStats
from .tm import FREE, StmRegion, TransactionManager, Tx

__all__ = ["FREE", "DeviceStm", "StmRegion", "StmStats", "TransactionManager", "Tx"]

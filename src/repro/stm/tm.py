"""Word-granularity eager software transactional memory.

Models the lightweight GPU STM of Holey & Zhai (ICPP'14) that both the STM
GB-tree baseline and Eirene's update kernel build on:

* **eager write acquisition** — a transactional write CAS-acquires the
  word's entry in an *ownership table*; failure to acquire is a write-write
  conflict that aborts the requester immediately (eager conflict detection);
* **in-place update with undo log** — acquired words are written directly;
  an abort rolls the old values back;
* **invisible readers with commit-time validation** — a transactional read
  aborts if the word is owned by another transaction (eager read-write
  detection) and records the word's version; commit re-validates all read
  versions, then bumps versions of written words and releases ownership.

The ownership and version tables live *inside the simulated global memory*
(one word each per protected word), so STM metadata traffic is counted by
the same machinery as data traffic — this is exactly where the paper's
"2.98× memory accesses" for STM GB-tree comes from.

This module is the host/vector plane; :mod:`repro.stm.device` wraps the same
protocol as SIMT thread-program generators.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import TransactionAborted, TransactionError
from ..memory import MemoryArena
from .stats import StmStats

#: ownership-table encoding: 0 = free, otherwise tx id + 1.
FREE = 0


@dataclass
class Tx:
    """Per-transaction bookkeeping (lives in registers/local memory, i.e.
    uncounted; the counted traffic is the table and data accesses)."""

    tid: int
    read_versions: dict[int, int] = field(default_factory=dict)
    undo_log: dict[int, int] = field(default_factory=dict)
    writes: set[int] = field(default_factory=set)
    active: bool = True


class StmRegion:
    """Address arithmetic for the STM metadata tables of a protected range.

    Protects ``[data_base, data_base + nwords)``. ``owner_addr(a)`` and
    ``version_addr(a)`` give the metadata words for data word ``a``.
    """

    def __init__(self, arena: MemoryArena, data_base: int, nwords: int) -> None:
        if nwords <= 0:
            raise TransactionError("STM region must cover at least one word")
        self.data_base = data_base
        self.nwords = nwords
        self.owner_base = arena.alloc(nwords)
        self.version_base = arena.alloc(nwords)

    def _index(self, addr: int) -> int:
        idx = addr - self.data_base
        if idx < 0 or idx >= self.nwords:
            raise TransactionError(
                f"address {addr} outside STM-protected region "
                f"[{self.data_base}, {self.data_base + self.nwords})"
            )
        return idx

    def owner_addr(self, addr: int) -> int:
        return self.owner_base + self._index(addr)

    def version_addr(self, addr: int) -> int:
        return self.version_base + self._index(addr)


class TransactionManager:
    """Host-plane STM over one :class:`StmRegion`."""

    def __init__(self, arena: MemoryArena, region: StmRegion) -> None:
        self.arena = arena
        self.region = region
        self.stats = StmStats()
        self._next_tid = 1

    def begin(self) -> Tx:
        tx = Tx(tid=self._next_tid)
        self._next_tid += 1
        self.stats.begins += 1
        return tx

    # ------------------------------------------------------------------ #
    def read(self, tx: Tx, addr: int) -> int:
        """Transactional load; raises :class:`TransactionAborted` on conflict."""
        self._require_active(tx)
        owner = self.arena.read(self.region.owner_addr(addr), "stm_meta")
        if owner not in (FREE, tx.tid + 1):
            self.stats.conflicts_rw += 1
            self._abort(tx)
            raise TransactionAborted("read of word owned by another tx")
        if addr not in tx.writes and addr not in tx.read_versions:
            tx.read_versions[addr] = self.arena.read(
                self.region.version_addr(addr), "stm_meta"
            )
        return self.arena.read(addr, "stm_data")

    def write(self, tx: Tx, addr: int, value: int) -> None:
        """Transactional store with eager acquire + undo logging."""
        self._require_active(tx)
        if addr not in tx.writes:
            old_owner = self.arena.atomic_cas(
                self.region.owner_addr(addr), FREE, tx.tid + 1
            )
            if old_owner not in (FREE, tx.tid + 1):
                self.stats.conflicts_ww += 1
                self._abort(tx)
                raise TransactionAborted("write-write conflict")
            tx.writes.add(addr)
            tx.undo_log[addr] = self.arena.read(addr, "stm_data")
        self.arena.write(addr, value, "stm_data")

    def commit(self, tx: Tx) -> None:
        """Validate reads, publish versions, release ownership."""
        self._require_active(tx)
        for addr, ver in tx.read_versions.items():
            cur = self.arena.read(self.region.version_addr(addr), "stm_meta")
            if cur != ver:
                self.stats.conflicts_validation += 1
                self._abort(tx)
                raise TransactionAborted("read validation failed")
        for addr in tx.writes:
            self.arena.atomic_add(self.region.version_addr(addr), 1)
            self.arena.write(self.region.owner_addr(addr), FREE, "stm_meta")
        tx.active = False
        self.stats.commits += 1

    def abort(self, tx: Tx) -> None:
        """Explicit user abort (rollback + release)."""
        self._require_active(tx)
        self._abort(tx)

    # ------------------------------------------------------------------ #
    def _abort(self, tx: Tx) -> None:
        for addr, old in tx.undo_log.items():
            self.arena.write(addr, old, "stm_data")
        for addr in tx.writes:
            self.arena.write(self.region.owner_addr(addr), FREE, "stm_meta")
        tx.active = False
        self.stats.aborts += 1

    def _require_active(self, tx: Tx) -> None:
        if not tx.active:
            raise TransactionError(f"tx {tx.tid} is not active")

    # ------------------------------------------------------------------ #
    def run(self, body, max_retries: int = 64):
        """Execute ``body(tx)`` under a transaction, retrying on aborts.

        Returns ``(result, attempts)``. Raises :class:`TransactionError`
        after ``max_retries`` failed attempts (livelock guard).
        """
        for attempt in range(1, max_retries + 1):
            tx = self.begin()
            try:
                result = body(tx)
                self.commit(tx)
                return result, attempt
            except TransactionAborted:
                continue
        raise TransactionError(f"transaction failed after {max_retries} attempts")

"""Device-side STM: the transactional protocol as SIMT thread-program code.

Same protocol as :class:`~repro.stm.tm.TransactionManager` (eager acquire,
undo log, invisible readers with commit-time validation) but every metadata
and data access is a yielded instruction, so ownership checks, version reads
and CAS acquires are *counted* and genuinely interleave with other warps.

Usage inside a thread program::

    tx = stm.begin()
    try:
        val = yield from stm.d_read(tx, addr)
        yield from stm.d_write(tx, addr, val + 1)
        yield from stm.d_commit(tx)
    except TransactionAborted:
        ...retry...
"""

from __future__ import annotations

from ..errors import TransactionAborted
from ..memory import MemoryArena
from ..simt.instructions import BRANCH, AtomicAdd, AtomicCAS, Load, Store
from .stats import StmStats
from .tm import FREE, StmRegion, Tx


class DeviceStm:
    """Shared-state STM instance used by all lanes of a kernel.

    ``region`` and ``stats`` may be shared with a host-plane
    :class:`~repro.stm.tm.TransactionManager` (the vector engine), so both
    engines report into the same counters.
    """

    def __init__(self, arena: MemoryArena, region: StmRegion, stats: StmStats | None = None):
        self.arena = arena
        self.region = region
        self.stats = stats if stats is not None else StmStats()
        self._next_tid = 1
        #: failure-injection hook: a callable evaluated on every
        #: transactional read; returning True forces an abort (tests use
        #: this to exercise retry paths deterministically).
        self.abort_injector = None

    def begin(self) -> Tx:
        tx = Tx(tid=self._next_tid)
        self._next_tid += 1
        self.stats.begins += 1
        return tx

    # ------------------------------------------------------------------ #
    def d_read(self, tx: Tx, addr: int):
        """Transactional load (generator). Aborts on observing ownership."""
        if self.abort_injector is not None and self.abort_injector():
            self.stats.conflicts_rw += 1
            yield from self.d_abort(tx, counted=False)
            raise TransactionAborted("injected failure")
        region = self.region
        idx = region._index(addr)
        owner = yield Load(region.owner_base + idx)
        yield BRANCH
        if owner not in (FREE, tx.tid + 1):
            self.stats.conflicts_rw += 1
            yield from self.d_abort(tx, counted=False)
            raise TransactionAborted("read of word owned by another tx")
        if addr not in tx.writes and addr not in tx.read_versions:
            ver = yield Load(region.version_base + idx)
            tx.read_versions[addr] = ver
        value = yield Load(addr)
        return value

    def d_write(self, tx: Tx, addr: int, value: int):
        """Transactional store (generator): eager CAS acquire + undo log."""
        yield BRANCH
        if addr not in tx.writes:
            old_owner = yield AtomicCAS(self.region.owner_addr(addr), FREE, tx.tid + 1)
            yield BRANCH
            if old_owner not in (FREE, tx.tid + 1):
                self.stats.conflicts_ww += 1
                yield from self.d_abort(tx, counted=False)
                raise TransactionAborted("write-write conflict")
            tx.writes.add(addr)
            old = yield Load(addr)
            tx.undo_log[addr] = old
        yield Store(addr, value)

    def d_commit(self, tx: Tx):
        """Validate read versions, publish, release (generator)."""
        region = self.region
        for addr, ver in tx.read_versions.items():
            cur = yield Load(region.version_addr(addr))
            yield BRANCH
            if cur != ver:
                self.stats.conflicts_validation += 1
                yield from self.d_abort(tx, counted=False)
                raise TransactionAborted("read validation failed")
        for addr in tx.writes:
            idx = region._index(addr)
            yield AtomicAdd(region.version_base + idx, 1)
            yield Store(region.owner_base + idx, FREE)
        tx.active = False
        self.stats.commits += 1

    def d_abort(self, tx: Tx, counted: bool = True):
        """Roll back and release (generator). ``counted`` aborts come from
        the program (e.g. a failed leaf-version validation); internal aborts
        triggered by a detected conflict pass ``counted=False`` because the
        conflict counters were already charged."""
        for addr, old in tx.undo_log.items():
            yield Store(addr, old)
        for addr in tx.writes:
            yield Store(self.region.owner_addr(addr), FREE)
        tx.active = False
        self.stats.aborts += 1
        if counted:
            self.stats.conflicts_version += 1

    # ------------------------------------------------------------------ #
    def host_invalidate(self, addrs) -> None:
        """Bump the STM version of every address in ``addrs`` (host plane).

        Used after an instantaneous host-side structure modification (leaf
        split executed under ownership of the leaf's count word): concurrent
        transactions that read any of the modified words will fail commit
        validation, exactly as if the split's stores had been transactional.
        """
        self.arena.host_write_sync()
        data = self.arena.data
        for addr in addrs:
            data[self.region.version_addr(addr)] += 1

"""Simulated GPU global memory: arena, access stats, coalescing model."""

from .arena import MemoryArena
from .coalescing import coalescing_efficiency, segments_touched, segments_touched_array
from .stats import MemoryStats

__all__ = [
    "MemoryArena",
    "MemoryStats",
    "coalescing_efficiency",
    "segments_touched",
    "segments_touched_array",
]

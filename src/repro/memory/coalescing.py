"""Coalescing model: map a set of per-lane word addresses to 128B segments.

On NVIDIA hardware a warp's global load is serviced as one transaction per
distinct 128-byte segment touched by its active lanes. Awad et al.'s Lock
GB-tree is explicitly engineered around this; our simulator reproduces the
effect so that layouts which scatter lanes across nodes pay proportionally
more traffic than layouts where a warp cooperates on one node.
"""

from __future__ import annotations

from collections.abc import Iterable

import numpy as np


def segments_touched(addresses: Iterable[int], words_per_segment: int) -> int:
    """Number of distinct memory segments covered by word ``addresses``.

    ``addresses`` are word indices into the arena; a segment holds
    ``words_per_segment`` consecutive words (16 for 128B segments of 8-byte
    words).
    """
    addrs = np.asarray(list(addresses) if not isinstance(addresses, np.ndarray) else addresses)
    if addrs.size == 0:
        return 0
    return int(np.unique(addrs // words_per_segment).size)


def segments_touched_array(addresses: np.ndarray, words_per_segment: int) -> int:
    """Vectorized :func:`segments_touched` for a numpy address array."""
    if addresses.size == 0:
        return 0
    return int(np.unique(addresses // words_per_segment).size)


def coalescing_efficiency(addresses: np.ndarray, words_per_segment: int) -> float:
    """Fraction of moved bytes that were requested (1.0 = perfectly coalesced).

    Returns 0.0 for an empty access.
    """
    if addresses.size == 0:
        return 0.0
    segs = segments_touched_array(addresses, words_per_segment)
    requested = np.unique(addresses).size
    return requested / (segs * words_per_segment)

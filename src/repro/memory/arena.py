"""Simulated GPU global memory.

A :class:`MemoryArena` is a flat array of 64-bit words with a bump
allocator. Everything the simulated device can see — B+tree nodes, the STM
ownership table, latch words, request buffers — lives in one arena so that
word addresses are globally meaningful: the STM locks *addresses*, latches
are *words*, and the coalescing model groups *addresses* into segments.

Two access planes exist:

* **counted** accesses (:meth:`read`, :meth:`write`, :meth:`atomic_cas`, …)
  increment :class:`~repro.memory.stats.MemoryStats` and are what kernels
  use. Warp-granularity vector accesses (:meth:`read_gather`) additionally
  feed the coalescing model.
* **host** accesses (:meth:`host_view`, :attr:`data`) are free — they model
  CPU-side setup such as the initial bulk build, exactly as the paper
  excludes tree-construction cost from its measurements.
"""

from __future__ import annotations

import numpy as np

from .._types import WORD_DTYPE
from ..errors import MemoryError_
from .coalescing import segments_touched_array
from .stats import MemoryStats


class MemoryArena:
    """Flat, counted word-addressable memory with a bump allocator."""

    def __init__(self, capacity_words: int, words_per_segment: int = 16) -> None:
        if capacity_words <= 0:
            raise MemoryError_(f"arena capacity must be positive, got {capacity_words}")
        self._data = np.zeros(capacity_words, dtype=WORD_DTYPE)
        self._brk = 0
        #: words visible to device code; system allocations live above this
        self._user_capacity = capacity_words
        self.words_per_segment = words_per_segment
        self._stats = MemoryStats()
        #: per-label access counts accumulated in a plain dict and folded
        #: into ``_stats.by_label`` only when :attr:`stats` is observed —
        #: one dict bump per counted access instead of a MemoryStats method
        #: call (measurable on kernels issuing millions of labelled
        #: accesses; totals are identical at every observation point).
        self._pending_labels: dict = {}
        #: when False, counted accessors skip all accounting (fast path for
        #: functional runs where only results matter).
        self.counting = True
        #: fast-path hook (see Warp._step_fast): while a warp slot has
        #: deferred loads in flight, this holds a callable that flushes
        #: them. Host-plane helpers that mutate device-visible words during
        #: a kernel (tree splits, RF updates, STM invalidation) must call
        #: :meth:`host_write_sync` first so no deferred load can observe
        #: their writes out of program order.
        self._host_barrier = None

    # ------------------------------------------------------------------ #
    # allocation
    # ------------------------------------------------------------------ #
    @property
    def capacity(self) -> int:
        """Device-visible capacity; system (sanitizer) words are excluded."""
        return self._user_capacity

    @property
    def total_words(self) -> int:
        """Backing-array size including system allocations."""
        return int(self._data.size)

    @property
    def system_words(self) -> int:
        """Words reserved by :meth:`alloc_system` (shadow memory etc.)."""
        return int(self._data.size) - self._user_capacity

    @property
    def allocated(self) -> int:
        return self._brk

    def alloc(self, nwords: int, align: int = 1) -> int:
        """Reserve ``nwords`` words; return the base address.

        ``align`` rounds the base up to a multiple (e.g. segment-align node
        blocks so a node never straddles more segments than necessary).
        """
        if nwords < 0:
            raise MemoryError_(f"cannot allocate {nwords} words")
        if align < 1:
            raise MemoryError_(f"alloc align must be >= 1, got {align}")
        base = self._brk
        if align > 1:
            base = (base + align - 1) // align * align
        if base + nwords > self._user_capacity:
            raise MemoryError_(
                f"arena exhausted: need {nwords} words at {base} "
                f"({self.allocated} of {self.capacity} words already allocated)"
            )
        self._brk = base + nwords
        return base

    def alloc_system(self, nwords: int) -> int:
        """Reserve ``nwords`` *system* words above the device heap.

        System allocations (sanitizer shadow memory) grow the backing array
        instead of consuming device capacity, so enabling analysis tooling
        never changes :meth:`alloc` exhaustion behaviour. Accesses to system
        addresses are excluded from the counted statistics — golden figures
        are identical with and without a sanitizer attached.

        Growing reallocates the backing array: long-lived views obtained via
        :meth:`host_view` before the call go stale (``self.data`` stays
        correct — it re-reads the current array). Attach sanitizers right
        after construction, before handing out views.
        """
        if nwords < 0:
            raise MemoryError_(f"cannot allocate {nwords} system words")
        base = int(self._data.size)
        self._data = np.concatenate(
            [self._data, np.zeros(nwords, dtype=WORD_DTYPE)]
        )
        return base

    def reset(self) -> None:
        """Return the arena to its freshly-constructed state.

        Rewinds the bump pointer, zeroes the backing words, drops any system
        (sanitizer) allocations, and clears the access statistics — cheaper
        than reallocating a new arena when a caller (tests, shard re-use)
        wants a pristine device memory of the same capacity.
        """
        if self._data.size != self._user_capacity:
            self._data = np.zeros(self._user_capacity, dtype=WORD_DTYPE)
        else:
            self._data[:] = 0
        self._brk = 0
        self._pending_labels.clear()
        self._stats.reset()
        self.counting = True
        self._host_barrier = None

    # ------------------------------------------------------------------ #
    # statistics (lazy per-label flush)
    # ------------------------------------------------------------------ #
    @property
    def stats(self) -> MemoryStats:
        """Access counters; folds any pending per-label counts in first."""
        pending = self._pending_labels
        if pending:
            add_label = self._stats.add_label
            for label, count in pending.items():
                add_label(label, count)
            pending.clear()
        return self._stats

    @stats.setter
    def stats(self, value: MemoryStats) -> None:
        self._pending_labels.clear()
        self._stats = value

    def host_write_sync(self) -> None:
        """Order a host-plane write after any in-flight deferred loads.

        Host helpers that mutate device-visible words *while a kernel is
        executing* (split application, RF maintenance, STM invalidation)
        call this first; it is a no-op unless the fast warp interpreter has
        loads deferred in the current slot.
        """
        barrier = self._host_barrier
        if barrier is not None:
            barrier()

    # ------------------------------------------------------------------ #
    # counted scalar accesses
    # ------------------------------------------------------------------ #
    def _check(self, addr: int) -> None:
        if addr < 0 or addr >= self._data.size:
            raise MemoryError_(f"address {addr} out of bounds [0, {self._data.size})")

    def read(self, addr: int, label: str | None = None) -> int:
        """Counted scalar load."""
        self._check(addr)
        if self.counting and addr < self._user_capacity:
            stats = self._stats
            stats.reads += 1
            stats.read_words += 1
            stats.transactions += 1
            if label:
                pending = self._pending_labels
                pending[label] = pending.get(label, 0) + 1
        return int(self._data[addr])

    def write(self, addr: int, value: int, label: str | None = None) -> None:
        """Counted scalar store."""
        self._check(addr)
        if self.counting and addr < self._user_capacity:
            stats = self._stats
            stats.writes += 1
            stats.write_words += 1
            stats.transactions += 1
            if label:
                pending = self._pending_labels
                pending[label] = pending.get(label, 0) + 1
        self._data[addr] = value

    # ------------------------------------------------------------------ #
    # counted atomics (sequential simulator => naturally atomic)
    # ------------------------------------------------------------------ #
    def atomic_cas(self, addr: int, expected: int, desired: int) -> int:
        """Compare-and-swap; returns the *old* value (CUDA ``atomicCAS``)."""
        self._check(addr)
        old = int(self._data[addr])
        if self.counting and addr < self._user_capacity:
            stats = self._stats
            stats.atomics += 1
            stats.transactions += 1
            if old != expected:
                stats.atomic_conflicts += 1
        if old == expected:
            self._data[addr] = desired
        return old

    def atomic_add(self, addr: int, delta: int) -> int:
        """Atomic fetch-and-add; returns the old value."""
        self._check(addr)
        old = int(self._data[addr])
        if self.counting and addr < self._user_capacity:
            stats = self._stats
            stats.atomics += 1
            stats.transactions += 1
        self._data[addr] = old + delta
        return old

    def atomic_exch(self, addr: int, value: int) -> int:
        """Atomic exchange; returns the old value."""
        self._check(addr)
        old = int(self._data[addr])
        if self.counting and addr < self._user_capacity:
            stats = self._stats
            stats.atomics += 1
            stats.transactions += 1
        self._data[addr] = value
        return old

    # ------------------------------------------------------------------ #
    # counted warp-granularity (vector) accesses
    # ------------------------------------------------------------------ #
    def read_gather(self, addrs: np.ndarray, label: str | None = None) -> np.ndarray:
        """One warp load: gather ``addrs`` (per active lane) in one instruction.

        Counts one memory instruction, ``len(addrs)`` words, and as many
        transactions as distinct segments touched (the coalescing model).
        """
        addrs = np.asarray(addrs, dtype=np.int64)
        if addrs.size and (addrs.min() < 0 or addrs.max() >= self._data.size):
            raise MemoryError_("gather address out of bounds")
        if self.counting and addrs.size and int(addrs.min()) < self._user_capacity:
            stats = self._stats
            stats.reads += 1
            stats.read_words += int(addrs.size)
            stats.transactions += segments_touched_array(addrs, self.words_per_segment)
            if label:
                pending = self._pending_labels
                pending[label] = pending.get(label, 0) + 1
        return self._data[addrs]

    def write_scatter(
        self, addrs: np.ndarray, values: np.ndarray, label: str | None = None
    ) -> None:
        """One warp store: scatter ``values`` to ``addrs``."""
        addrs = np.asarray(addrs, dtype=np.int64)
        if addrs.size and (addrs.min() < 0 or addrs.max() >= self._data.size):
            raise MemoryError_("scatter address out of bounds")
        if self.counting and addrs.size and int(addrs.min()) < self._user_capacity:
            stats = self._stats
            stats.writes += 1
            stats.write_words += int(addrs.size)
            stats.transactions += segments_touched_array(addrs, self.words_per_segment)
            if label:
                pending = self._pending_labels
                pending[label] = pending.get(label, 0) + 1
        self._data[addrs] = values

    # ------------------------------------------------------------------ #
    # bulk accesses (fast warp interpreter / batched host tooling)
    # ------------------------------------------------------------------ #
    def gather(self, addrs, label: str | None = None, *, counted: bool = False) -> np.ndarray:
        """Bulk load of ``addrs`` (any int sequence) in one numpy gather.

        With ``counted=False`` (default) this is the *device raw plane*
        used by the fast warp interpreter: the SIMT executor charges its
        own :class:`~repro.simt.KernelCounters`, exactly as its scalar
        reference path reads ``self.data`` directly, so nothing is charged
        here. With ``counted=True`` it charges :attr:`stats` identically
        to ``len(addrs)`` scalar :meth:`read` calls (same reads / words /
        transactions / label totals), letting batched host tooling keep
        scalar-equivalent accounting.
        """
        addrs = np.asarray(addrs, dtype=np.intp)
        if addrs.size and (addrs.min() < 0 or addrs.max() >= self._data.size):
            raise MemoryError_("gather address out of bounds")
        if counted and self.counting and addrs.size:
            n = int((addrs < self._user_capacity).sum())
            if n:
                stats = self._stats
                stats.reads += n
                stats.read_words += n
                stats.transactions += n
                if label:
                    pending = self._pending_labels
                    pending[label] = pending.get(label, 0) + n
        return self._data[addrs]

    def scatter(
        self, addrs, values, label: str | None = None, *, counted: bool = False
    ) -> None:
        """Bulk store of ``values`` to ``addrs`` in one numpy scatter.

        Mirror of :meth:`gather`: uncounted by default (device raw plane),
        or charged identically to ``len(addrs)`` scalar :meth:`write`
        calls with ``counted=True``. Duplicate addresses follow numpy
        fancy-assignment semantics (last write wins), matching a
        sequential loop of scalar writes.
        """
        addrs = np.asarray(addrs, dtype=np.intp)
        if addrs.size and (addrs.min() < 0 or addrs.max() >= self._data.size):
            raise MemoryError_("scatter address out of bounds")
        if counted and self.counting and addrs.size:
            n = int((addrs < self._user_capacity).sum())
            if n:
                stats = self._stats
                stats.writes += n
                stats.write_words += n
                stats.transactions += n
                if label:
                    pending = self._pending_labels
                    pending[label] = pending.get(label, 0) + n
        self._data[addrs] = values

    # ------------------------------------------------------------------ #
    # host (uncounted) plane
    # ------------------------------------------------------------------ #
    @property
    def data(self) -> np.ndarray:
        """Raw backing array. Host-side only; accesses are not counted."""
        return self._data

    def host_view(self, base: int, nwords: int) -> np.ndarray:
        """Uncounted mutable view of ``[base, base + nwords)``."""
        if base < 0 or base + nwords > self._data.size:
            raise MemoryError_(f"host view [{base}, {base + nwords}) out of bounds")
        return self._data[base : base + nwords]

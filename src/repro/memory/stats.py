"""Access counters for the simulated global memory.

The paper's motivation section (Fig. 1) and evaluation (Fig. 9, Fig. 12)
report *memory instructions per request*; these counters are the ground
truth those figures are computed from.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class MemoryStats:
    """Mutable counters attached to a :class:`~repro.memory.arena.MemoryArena`.

    ``reads``/``writes`` count *warp-level memory instructions* (one per
    issued load/store, regardless of how many lanes participate when counted
    through the SIMT engine, or one per logical word access when counted
    scalar-side). ``read_words``/``write_words`` count the lanes (words)
    touched. ``transactions`` counts 128-byte segments moved, i.e. the
    coalescing-aware traffic the timing model charges for.
    """

    reads: int = 0
    writes: int = 0
    atomics: int = 0
    read_words: int = 0
    write_words: int = 0
    transactions: int = 0
    atomic_conflicts: int = 0
    #: per-label breakdown (e.g. "traversal", "stm_meta", "lock") for reports
    by_label: dict[str, int] = field(default_factory=dict)

    @property
    def accesses(self) -> int:
        """Total memory instructions (reads + writes + atomics)."""
        return self.reads + self.writes + self.atomics

    def add_label(self, label: str, count: int = 1) -> None:
        self.by_label[label] = self.by_label.get(label, 0) + count

    def reset(self) -> None:
        self.reads = 0
        self.writes = 0
        self.atomics = 0
        self.read_words = 0
        self.write_words = 0
        self.transactions = 0
        self.atomic_conflicts = 0
        self.by_label.clear()

    def snapshot(self) -> "MemoryStats":
        """Return an independent copy of the current counters."""
        copy = MemoryStats(
            reads=self.reads,
            writes=self.writes,
            atomics=self.atomics,
            read_words=self.read_words,
            write_words=self.write_words,
            transactions=self.transactions,
            atomic_conflicts=self.atomic_conflicts,
        )
        copy.by_label = dict(self.by_label)
        return copy

    def delta_since(self, earlier: "MemoryStats") -> "MemoryStats":
        """Counters accumulated since ``earlier`` (a prior snapshot)."""
        out = MemoryStats(
            reads=self.reads - earlier.reads,
            writes=self.writes - earlier.writes,
            atomics=self.atomics - earlier.atomics,
            read_words=self.read_words - earlier.read_words,
            write_words=self.write_words - earlier.write_words,
            transactions=self.transactions - earlier.transactions,
            atomic_conflicts=self.atomic_conflicts - earlier.atomic_conflicts,
        )
        out.by_label = {
            k: self.by_label.get(k, 0) - earlier.by_label.get(k, 0)
            for k in set(self.by_label) | set(earlier.by_label)
        }
        return out

    def merge(self, other: "MemoryStats") -> None:
        """Accumulate ``other`` into this instance (for per-SM reduction)."""
        self.reads += other.reads
        self.writes += other.writes
        self.atomics += other.atomics
        self.read_words += other.read_words
        self.write_words += other.write_words
        self.transactions += other.transactions
        self.atomic_conflicts += other.atomic_conflicts
        for k, v in other.by_label.items():
            self.add_label(k, v)

"""Metrics: throughput, QoS (response-time variance), instruction profiles,
and per-pass pipeline traces."""

from .profile import InstructionProfile, ProfileTable
from .qos import ResponseTimeStats, ShardQoS, response_time_stats
from .throughput import ThroughputResult, combine
from .trace import PassRecord, PipelineTrace, merge_traces

__all__ = [
    "InstructionProfile",
    "PassRecord",
    "PipelineTrace",
    "ProfileTable",
    "ResponseTimeStats",
    "ShardQoS",
    "ThroughputResult",
    "combine",
    "merge_traces",
    "response_time_stats",
]

"""Metrics: throughput, QoS (response-time variance), instruction profiles."""

from .profile import InstructionProfile, ProfileTable
from .qos import ResponseTimeStats, response_time_stats
from .throughput import ThroughputResult, combine

__all__ = [
    "InstructionProfile",
    "ProfileTable",
    "ResponseTimeStats",
    "ThroughputResult",
    "combine",
    "response_time_stats",
]

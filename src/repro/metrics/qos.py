"""QoS metrics: response-time statistics.

The paper's QoS measure (Figs. 2 and 8) is the *variance of response time*,
computed from the maximal/minimal individual response times normalized to
the average: Eirene reaches 5% against 36% (Lock GB-tree) and 40% (STM
GB-tree). We reproduce the same statistic from per-request completion
times.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class ResponseTimeStats:
    """Per-request response-time summary for one (or more) batches."""

    avg_s: float
    min_s: float
    max_s: float
    p50_s: float
    p99_s: float
    n: int

    @property
    def variance_fraction(self) -> float:
        """The paper's QoS metric: max deviation of the extremes from the
        mean, as a fraction of the mean (0.05 == "5% variance")."""
        if self.avg_s <= 0:
            return 0.0
        up = (self.max_s - self.avg_s) / self.avg_s
        down = (self.avg_s - self.min_s) / self.avg_s
        return max(up, down)

    def describe(self, unit: float = 1e-9, unit_name: str = "ns") -> str:
        f = 1.0 / unit
        return (
            f"avg {self.avg_s * f:.3f} {unit_name}, "
            f"min {self.min_s * f:.3f}, max {self.max_s * f:.3f}, "
            f"p99 {self.p99_s * f:.3f}, variance {self.variance_fraction * 100:.1f}%"
        )


@dataclass(frozen=True)
class ShardQoS:
    """One shard's slice of a sharded batch: load, time, QoS band.

    Produced by :func:`repro.sharding.merge.merge_shard_outcomes` (one entry
    per non-empty shard in ``outcome.extras["shards"]``) so the harness can
    report per-shard throughput and response-time variance next to the
    merged batch numbers.
    """

    shard: int
    n_requests: int
    seconds: float
    stats: "ResponseTimeStats"

    @property
    def throughput(self) -> float:
        return self.n_requests / self.seconds if self.seconds > 0 else 0.0

    def describe(self) -> str:
        return (
            f"shard {self.shard}: {self.n_requests} reqs in {self.seconds:.3e} s "
            f"({self.throughput:.3e} req/s), variance "
            f"{self.stats.variance_fraction * 100:.1f}%"
        )


def response_time_stats(per_request_seconds: np.ndarray, trim: float = 0.005) -> ResponseTimeStats:
    """Summarize per-request response times.

    ``trim`` drops the given fraction of extreme samples at each end before
    taking min/max, mirroring the paper's averaging of extremes over many
    runs (a single straggler sample does not define the QoS band).
    """
    t = np.asarray(per_request_seconds, dtype=np.float64)
    t = t[np.isfinite(t)]
    if t.size == 0:
        return ResponseTimeStats(0.0, 0.0, 0.0, 0.0, 0.0, 0)
    if trim > 0 and t.size > 20:
        lo, hi = np.quantile(t, [trim, 1.0 - trim])
        t = np.clip(t, lo, hi)
    return ResponseTimeStats(
        avg_s=float(t.mean()),
        min_s=float(t.min()),
        max_s=float(t.max()),
        p50_s=float(np.quantile(t, 0.5)),
        p99_s=float(np.quantile(t, 0.99)),
        n=int(t.size),
    )

"""Throughput accounting."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ThroughputResult:
    """Requests processed per second for one measured run."""

    requests: int
    seconds: float

    @property
    def per_second(self) -> float:
        return self.requests / self.seconds if self.seconds > 0 else 0.0

    @property
    def mops(self) -> float:
        """Millions of requests per second (the paper's Fig. 7 unit)."""
        return self.per_second / 1e6

    def describe(self) -> str:
        return f"{self.mops:,.1f} Mreq/s ({self.requests} requests in {self.seconds:.3e} s)"


def combine(results: list[ThroughputResult]) -> ThroughputResult:
    """Aggregate several batches into one throughput figure."""
    return ThroughputResult(
        requests=sum(r.requests for r in results),
        seconds=sum(r.seconds for r in results),
    )

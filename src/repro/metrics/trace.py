"""Structured per-pass tracing for the pass pipeline.

Every :class:`~repro.core.pipeline.PassPipeline` run produces a
:class:`PipelineTrace`: one :class:`PassRecord` per executed pass, holding
the pass's host wall-clock cost (what the *simulation* spent) and its
*modeled* contribution — device seconds added to the batch's
:class:`~repro.simt.PhaseTime` plus instruction/transaction/conflict
deltas. By construction the modeled seconds of a trace sum to the batch's
reported ``seconds``, so a trace is a faithful per-phase breakdown of every
:class:`~repro.baselines.base.BatchOutcome`.

The trace is plain data: it renders as a text table (:meth:`PipelineTrace.render`)
and round-trips through JSON (:meth:`PipelineTrace.to_json` /
:meth:`PipelineTrace.from_json`) so harness runs can persist it.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field, fields


@dataclass
class PassRecord:
    """Measured and modeled contribution of one pass in one pipeline run."""

    name: str
    #: host wall-clock seconds the pass took to simulate
    wall_s: float = 0.0
    #: modeled device seconds this pass added to the batch's PhaseTime
    modeled_s: float = 0.0
    mem_inst: float = 0.0
    control_inst: float = 0.0
    alu_inst: float = 0.0
    atomic_inst: float = 0.0
    transactions: float = 0.0
    conflicts: float = 0.0

    _NUMERIC = (
        "wall_s",
        "modeled_s",
        "mem_inst",
        "control_inst",
        "alu_inst",
        "atomic_inst",
        "transactions",
        "conflicts",
    )

    def merged(self, other: "PassRecord") -> "PassRecord":
        """Sum of two records of the same pass (multi-batch aggregation)."""
        if other.name != self.name:
            raise ValueError(f"cannot merge pass {other.name!r} into {self.name!r}")
        kwargs = {f: getattr(self, f) + getattr(other, f) for f in self._NUMERIC}
        return PassRecord(name=self.name, **kwargs)

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, d: dict) -> "PassRecord":
        known = {f.name for f in fields(cls)}
        return cls(**{k: v for k, v in d.items() if k in known})


@dataclass
class PipelineTrace:
    """Per-pass breakdown of one (or several merged) pipeline runs."""

    system: str = ""
    engine: str = ""
    records: list[PassRecord] = field(default_factory=list)

    @property
    def modeled_total_s(self) -> float:
        """Sum of modeled pass seconds — equals the batch's ``seconds``."""
        return sum(r.modeled_s for r in self.records)

    @property
    def wall_total_s(self) -> float:
        return sum(r.wall_s for r in self.records)

    @property
    def pass_names(self) -> tuple[str, ...]:
        return tuple(r.name for r in self.records)

    def record(self, name: str) -> PassRecord:
        for r in self.records:
            if r.name == name:
                return r
        raise KeyError(f"no pass {name!r} in trace ({self.pass_names})")

    def merged(self, other: "PipelineTrace") -> "PipelineTrace":
        """Aggregate another run's trace (pass records summed by name).

        Passes only one side ran (e.g. a variant with an extra pass) are
        kept as-is, in first-seen order.
        """
        out: list[PassRecord] = [
            PassRecord(name=r.name, **{f: getattr(r, f) for f in PassRecord._NUMERIC})
            for r in self.records
        ]
        index = {r.name: i for i, r in enumerate(out)}
        for r in other.records:
            if r.name in index:
                out[index[r.name]] = out[index[r.name]].merged(r)
            else:
                index[r.name] = len(out)
                out.append(PassRecord.from_dict(r.to_dict()))
        return PipelineTrace(system=self.system, engine=self.engine, records=out)

    # ------------------------------------------------------------------ #
    # rendering / serialization
    # ------------------------------------------------------------------ #
    def render(self) -> str:
        """Text table: one row per pass, modeled share, instruction deltas."""
        total = self.modeled_total_s
        head = f"pipeline trace [{self.system} / {self.engine}]"
        lines = [
            head,
            f"{'pass':<16}{'modeled_s':>12}{'share':>8}{'mem':>12}"
            f"{'ctrl':>12}{'conflicts':>11}{'wall_ms':>9}",
        ]
        for r in self.records:
            share = 100.0 * r.modeled_s / total if total > 0 else 0.0
            lines.append(
                f"{r.name:<16}{r.modeled_s:>12.3e}{share:>7.1f}%"
                f"{r.mem_inst:>12.1f}{r.control_inst:>12.1f}"
                f"{r.conflicts:>11.1f}{r.wall_s * 1e3:>9.2f}"
            )
        lines.append(
            f"{'total':<16}{total:>12.3e}{'100.0%' if total > 0 else '  0.0%':>8}"
        )
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "system": self.system,
            "engine": self.engine,
            "records": [r.to_dict() for r in self.records],
        }

    def to_json(self, **kwargs) -> str:
        return json.dumps(self.to_dict(), **kwargs)

    @classmethod
    def from_dict(cls, d: dict) -> "PipelineTrace":
        return cls(
            system=d.get("system", ""),
            engine=d.get("engine", ""),
            records=[PassRecord.from_dict(r) for r in d.get("records", [])],
        )

    @classmethod
    def from_json(cls, s: str) -> "PipelineTrace":
        return cls.from_dict(json.loads(s))


def merge_traces(traces: list["PipelineTrace"]) -> "PipelineTrace | None":
    """Aggregate traces of several batches; None when any batch lacks one."""
    if not traces or any(t is None for t in traces):
        return None
    out = traces[0]
    for t in traces[1:]:
        out = out.merged(t)
    return out

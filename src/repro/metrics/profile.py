"""Instruction-profile reports (the simulator's Nsight Compute stand-in).

Collects per-request memory / control-flow instruction averages and conflict
counts per system, and renders the normalized comparisons of Figs. 1, 9
and 12.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class InstructionProfile:
    """Per-request instruction metrics for one system on one workload."""

    system: str
    n_requests: int
    mem_inst: float
    control_inst: float
    alu_inst: float = 0.0
    atomic_inst: float = 0.0
    conflicts: float = 0.0
    traversal_steps: float = 0.0

    @property
    def total_inst(self) -> float:
        return self.mem_inst + self.control_inst + self.alu_inst + self.atomic_inst

    def normalized_to(self, base: "InstructionProfile") -> dict[str, float]:
        def ratio(a: float, b: float) -> float:
            return a / b if b else 0.0

        return {
            "memory_inst": ratio(self.mem_inst, base.mem_inst),
            "control_inst": ratio(self.control_inst, base.control_inst),
            "conflicts": ratio(self.conflicts, base.conflicts),
            "traversal_steps": ratio(self.traversal_steps, base.traversal_steps),
        }


@dataclass
class ProfileTable:
    """A set of profiles rendered as the paper's bar-chart tables."""

    profiles: list[InstructionProfile] = field(default_factory=list)

    def add(self, profile: InstructionProfile) -> None:
        self.profiles.append(profile)

    def get(self, system: str) -> InstructionProfile:
        for p in self.profiles:
            if p.system == system:
                return p
        raise KeyError(system)

    def render(self, normalize_to: str | None = None) -> str:
        """Plain-text table: one row per system.

        With ``normalize_to``, memory/control columns are ratios to that
        system (Fig. 9's presentation); otherwise absolute per-request
        counts (Fig. 1's presentation).
        """
        lines = []
        if normalize_to is None:
            lines.append(f"{'system':<28}{'memory_inst':>14}{'control_inst':>14}{'conflicts':>12}")
            for p in self.profiles:
                lines.append(
                    f"{p.system:<28}{p.mem_inst:>14.2f}{p.control_inst:>14.2f}{p.conflicts:>12.4f}"
                )
        else:
            base = self.get(normalize_to)
            lines.append(
                f"{'system':<28}{'memory_inst':>14}{'control_inst':>14}"
                f"  (normalized to {normalize_to})"
            )
            for p in self.profiles:
                r = p.normalized_to(base)
                lines.append(
                    f"{p.system:<28}{r['memory_inst']:>14.3f}{r['control_inst']:>14.3f}"
                )
        return "\n".join(lines)

"""Key-range shard routing.

A :class:`ShardPlan` splits the key space into ``n_shards`` contiguous
ranges at *fence keys* (the same notion as a B+tree node's fence: the
smallest key a shard may hold). A :class:`ShardRouter` partitions one
buffered :class:`~repro.workloads.requests.RequestBatch` into per-shard
sub-batches:

* point requests (query/update/insert/delete) go to the one shard whose
  range covers their key — same-key conflicts therefore always land on the
  same shard, so per-shard timestamp order is enough for global
  linearizability;
* a range query spanning several shards is *split at the fences*: each
  overlapped shard receives a clipped ``[lo, hi]`` sub-range, and the
  merger stitches the per-shard pieces back together in shard order (which
  is key order, so the stitched result is sorted exactly like the
  single-tree answer).

Sub-batches preserve the arrival order of the original batch, so each
shard's pipeline sees its requests at the same relative logical timestamps
as the unsharded system would.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._types import OpKind
from ..errors import ConfigError
from ..workloads.requests import RequestBatch

_I64_MIN = np.iinfo(np.int64).min
_I64_MAX = np.iinfo(np.int64).max


@dataclass(frozen=True)
class ShardPlan:
    """``n_shards`` contiguous key ranges delimited by ascending fences.

    Shard ``s`` owns keys in ``[lower(s), upper(s))`` where ``lower(0)`` is
    unbounded below and ``upper(n_shards - 1)`` unbounded above; for the
    interior shards the bounds are ``fences[s - 1]`` and ``fences[s]``.
    """

    fences: np.ndarray  # shape (n_shards - 1,), strictly ascending int64

    def __post_init__(self) -> None:
        fences = np.ascontiguousarray(self.fences, dtype=np.int64)
        if fences.ndim != 1:
            raise ConfigError("fences must be a 1-D array")
        if fences.size and np.any(np.diff(fences) <= 0):
            raise ConfigError(f"fences must be strictly ascending, got {fences}")
        object.__setattr__(self, "fences", fences)

    @property
    def n_shards(self) -> int:
        return int(self.fences.size) + 1

    def shard_of(self, keys: np.ndarray | int) -> np.ndarray | int:
        """Owning shard id for each key (vectorized)."""
        out = np.searchsorted(self.fences, np.asarray(keys, dtype=np.int64), side="right")
        return int(out) if np.isscalar(keys) or np.ndim(keys) == 0 else out

    def bounds(self, shard: int) -> tuple[int, int]:
        """Inclusive ``(lo, hi)`` key bounds of ``shard``."""
        if not 0 <= shard < self.n_shards:
            raise ConfigError(f"shard {shard} out of range [0, {self.n_shards})")
        lo = _I64_MIN if shard == 0 else int(self.fences[shard - 1])
        hi = _I64_MAX if shard == self.n_shards - 1 else int(self.fences[shard]) - 1
        return lo, hi

    @classmethod
    def from_pool(cls, pool: np.ndarray, n_shards: int) -> "ShardPlan":
        """Quantile fences over a key pool: each shard starts with an equal
        slice of the loaded keys, so a uniform workload stays balanced."""
        if n_shards < 1:
            raise ConfigError(f"n_shards must be >= 1, got {n_shards}")
        pool = np.unique(np.asarray(pool, dtype=np.int64))
        if n_shards == 1:
            return cls(fences=np.zeros(0, dtype=np.int64))
        if pool.size < n_shards:
            raise ConfigError(
                f"cannot cut {pool.size} distinct keys into {n_shards} shards"
            )
        cut = (np.arange(1, n_shards) * pool.size) // n_shards
        return cls(fences=pool[cut])

    def partition_pool(
        self, keys: np.ndarray, values: np.ndarray
    ) -> list[tuple[np.ndarray, np.ndarray]]:
        """Split a (keys, values) load set into per-shard load sets."""
        keys = np.asarray(keys, dtype=np.int64)
        values = np.asarray(values, dtype=np.int64)
        owner = self.shard_of(keys)
        return [
            (keys[owner == s], values[owner == s]) for s in range(self.n_shards)
        ]


@dataclass
class RoutedSubBatch:
    """One shard's slice of a batch.

    ``origin[i]`` is the original batch index of sub-request ``i`` —
    arrival order is preserved, so per-shard logical timestamps respect the
    global buffer order. A cross-shard range query contributes one clipped
    entry to every shard it overlaps (same origin on each).
    """

    shard: int
    batch: RequestBatch
    origin: np.ndarray  # int64 original indices, ascending

    @property
    def n(self) -> int:
        return self.batch.n


class ShardRouter:
    """Partitions request batches across the shards of a :class:`ShardPlan`."""

    def __init__(self, plan: ShardPlan) -> None:
        self.plan = plan

    @property
    def n_shards(self) -> int:
        return self.plan.n_shards

    def route(self, batch: RequestBatch) -> list[RoutedSubBatch]:
        """One sub-batch per shard (possibly empty), arrival order kept."""
        plan = self.plan
        n_shards = plan.n_shards
        if n_shards == 1:
            return [
                RoutedSubBatch(
                    shard=0, batch=batch, origin=np.arange(batch.n, dtype=np.int64)
                )
            ]
        kinds = batch.kinds
        is_range = kinds == OpKind.RANGE
        lo_shard = plan.shard_of(batch.keys)
        # per-request owning shard span: points own exactly [s, s],
        # ranges own [shard_of(lo), shard_of(hi)]
        hi_shard = np.where(is_range, plan.shard_of(batch.range_ends), lo_shard)

        out: list[RoutedSubBatch] = []
        for s in range(n_shards):
            sel = (lo_shard <= s) & (s <= hi_shard)
            idx = np.flatnonzero(sel).astype(np.int64)
            sub = batch.subset(idx)
            # clip cross-shard ranges at this shard's fences
            shard_lo, shard_hi = plan.bounds(s)
            rmask = sub.kinds == OpKind.RANGE
            if np.any(rmask):
                sub = RequestBatch(
                    kinds=sub.kinds,
                    keys=np.where(rmask, np.maximum(sub.keys, shard_lo), sub.keys),
                    values=sub.values,
                    range_ends=np.where(
                        rmask, np.minimum(sub.range_ends, shard_hi), sub.range_ends
                    ),
                )
            out.append(RoutedSubBatch(shard=s, batch=sub, origin=idx))
        return out

"""Parallel shard execution on worker processes.

:class:`ParallelShardedSystem` is the process-parallel sibling of
:class:`~repro.sharding.system.ShardedSystem`: the same
:class:`~repro.sharding.router.ShardPlan` / router / merge machinery, but
each shard's system lives inside a persistent *worker process* instead of
the caller's process. Worker ``w`` owns shards ``s`` with
``s % n_workers == w`` and builds them locally (own
:class:`~repro.device.DeviceContext`, arena and tree), so shard state never
crosses a process boundary — only routed sub-batches go down the pipe and
:class:`~repro.baselines.base.BatchOutcome` objects come back.

Determinism is by construction, not by luck:

* a shard's system evolves only through its own sub-batch sequence, which
  is independent of how shards are packed onto workers — so every counter,
  tree word and QoS sample per shard is identical for 1, 2 or 4 workers;
* the parent always reassembles outcomes **in shard order** before calling
  :func:`~repro.sharding.merge.merge_shard_outcomes`, so the merged outcome
  never depends on which worker answered first (the parent does not even
  select on readiness — it drains pipes in worker order after broadcasting
  all jobs).

Workers install the parent's :class:`~repro.config.ExecutionConfig` at
startup, so ``REPRO_SLOW_PATH=1`` and programmatic engine selection apply
fleet-wide. ``n_workers=0`` (or a failed process start) degrades to an
in-process :class:`ShardedSystem` with identical output — the serial
fallback for environments where ``fork`` is unavailable.
"""

from __future__ import annotations

import multiprocessing as mp
import traceback

import numpy as np

from ..config import ExecutionConfig, execution_config, set_execution_config
from ..errors import ConfigError, SimulationError
from ..lincheck import SequentialReference
from ..workloads.requests import RequestBatch
from .merge import merge_shard_outcomes
from .router import ShardPlan, ShardRouter
from .system import ShardedSystem


def _worker_main(conn, spec: dict) -> None:
    """Worker loop: build the owned shard systems, then serve requests.

    Every reply is ``("ok", payload)`` or ``("error", traceback_text)`` —
    exceptions never kill the worker silently; the parent re-raises them.
    """
    try:
        set_execution_config(spec["execution"])
        from ..factory import make_system

        shards = {
            s: make_system(
                spec["system"], ks, vs, seed=spec["seed"] + s, **spec["make_kwargs"]
            )
            for s, ks, vs in spec["loads"]
        }
        conn.send(("ok", shards[min(shards)].name if shards else None))
    except BaseException:
        conn.send(("error", traceback.format_exc()))
        return
    while True:
        try:
            msg = conn.recv()
        except EOFError:
            return
        try:
            kind = msg[0]
            if kind == "batch":
                _, jobs, engine = msg
                out = [(s, shards[s].process_batch(b, engine=engine)) for s, b in jobs]
                conn.send(("ok", out))
            elif kind == "items":
                out = [(s, *shards[s].tree.items()) for s in sorted(shards)]
                conn.send(("ok", out))
            elif kind == "validate":
                for s in sorted(shards):
                    shards[s].tree.validate()
                conn.send(("ok", None))
            elif kind == "close":
                conn.send(("ok", None))
                return
            else:
                conn.send(("error", f"unknown worker message {kind!r}"))
        except BaseException:
            conn.send(("error", traceback.format_exc()))


class ParallelShardedSystem:
    """N key-range shards of one system kind, one worker process per slice.

    Mirrors the :class:`~repro.sharding.system.ShardedSystem` surface
    (``process_batch`` / ``items`` / ``validate`` / ``reference``) so the
    harness and benchmarks can swap one for the other. Use as a context
    manager, or call :meth:`close` when done, to reap the workers.
    """

    def __init__(
        self,
        system: str,
        keys: np.ndarray,
        values: np.ndarray,
        n_shards: int,
        n_workers: int | None = None,
        seed: int = 0,
        execution: ExecutionConfig | None = None,
        **make_kwargs,
    ) -> None:
        if n_workers is None:
            n_workers = execution_config().default_shard_workers
        if n_workers < 0:
            raise ConfigError(f"n_workers must be >= 0, got {n_workers}")
        self.plan = ShardPlan.from_pool(keys, n_shards)
        self.router = ShardRouter(self.plan)
        self.name = f"{system}x{n_shards}"
        self.n_workers = min(n_workers, n_shards)
        self._local: ShardedSystem | None = None
        self._workers: list[tuple[object, object]] = []  # (Process, Connection)
        self._owned: list[list[int]] = []
        execution = execution if execution is not None else execution_config()

        if self.n_workers == 0:
            self._build_local(system, keys, values, n_shards, seed, make_kwargs)
            return
        loads = list(self.plan.partition_pool(keys, values))
        try:
            ctx = mp.get_context("fork")
        except ValueError:  # pragma: no cover - non-posix platform
            ctx = mp.get_context()
        try:
            for w in range(self.n_workers):
                owned = list(range(w, n_shards, self.n_workers))
                spec = {
                    "system": system,
                    "seed": seed,
                    "execution": execution,
                    "make_kwargs": make_kwargs,
                    "loads": [(s, *loads[s]) for s in owned],
                }
                parent_conn, child_conn = ctx.Pipe()
                proc = ctx.Process(
                    target=_worker_main, args=(child_conn, spec), daemon=True
                )
                proc.start()
                child_conn.close()
                self._workers.append((proc, parent_conn))
                self._owned.append(owned)
            acks = [self._recv(conn) for _, conn in self._workers]
            if acks and acks[0]:  # worker 0 owns shard 0: its display name
                self.name = f"{acks[0]}x{n_shards}"
        except OSError:  # pragma: no cover - fork refused (sandbox/rlimit)
            self._reap()
            self.n_workers = 0
            self._build_local(system, keys, values, n_shards, seed, make_kwargs)

    def _build_local(self, system, keys, values, n_shards, seed, make_kwargs) -> None:
        """Serial fallback: same shards, caller's process, same output."""
        self._local = ShardedSystem.build(
            system, keys, values, n_shards, seed=seed, **make_kwargs
        )
        self.name = self._local.name

    # ------------------------------------------------------------------ #
    @property
    def n_shards(self) -> int:
        return self.plan.n_shards

    @staticmethod
    def _recv(conn):
        status, payload = conn.recv()
        if status != "ok":
            raise SimulationError(f"shard worker failed:\n{payload}")
        return payload

    # ------------------------------------------------------------------ #
    def process_batch(self, batch: RequestBatch, engine: str = "vector"):
        """Route, broadcast per-worker job lists, merge in shard order."""
        if self._local is not None:
            return self._local.process_batch(batch, engine=engine)
        routed = self.router.route(batch)
        pending = []
        for (_, conn), owned in zip(self._workers, self._owned):
            jobs = [(s, routed[s].batch) for s in owned if routed[s].n]
            if jobs:
                conn.send(("batch", jobs, engine))
                pending.append(conn)
        outcomes: list = [None] * self.n_shards
        for conn in pending:  # drain in worker order: no readiness races
            for s, outcome in self._recv(conn):
                outcomes[s] = outcome
        return merge_shard_outcomes(batch, routed, outcomes, self.name)

    # ------------------------------------------------------------------ #
    def items(self) -> tuple[np.ndarray, np.ndarray]:
        """All (key, value) pairs across shards, in global key order."""
        if self._local is not None:
            return self._local.items()
        per_shard: list = [None] * self.n_shards
        for _, conn in self._workers:
            conn.send(("items",))
        for _, conn in self._workers:
            for s, ks, vs in self._recv(conn):
                per_shard[s] = (ks, vs)
        return (
            np.concatenate([ks for ks, _ in per_shard]),
            np.concatenate([vs for _, vs in per_shard]),
        )

    def validate(self) -> None:
        """Every shard tree is valid and respects its fence bounds."""
        if self._local is not None:
            self._local.validate()
            return
        for _, conn in self._workers:
            conn.send(("validate",))
        for _, conn in self._workers:
            self._recv(conn)
        keys, _ = self.items()
        if keys.size and np.any(np.diff(keys) < 0):
            raise ConfigError("shard key ranges overlap across workers")

    def reference(self) -> SequentialReference:
        """Sequential reference seeded with the fleet's current contents."""
        keys, values = self.items()
        return SequentialReference(keys, values)

    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Shut the workers down; safe to call more than once."""
        if not self._workers:
            return
        for _, conn in self._workers:
            try:
                conn.send(("close",))
            except (BrokenPipeError, OSError):
                pass
        for proc, conn in self._workers:
            try:
                conn.recv()
            except (EOFError, OSError):
                pass
            conn.close()
            proc.join(timeout=5)
            if proc.is_alive():  # pragma: no cover - wedged worker
                proc.terminate()
        self._workers = []

    def _reap(self) -> None:
        for proc, conn in self._workers:
            conn.close()
            if proc.is_alive():
                proc.terminate()
            proc.join(timeout=5)
        self._workers = []

    def __enter__(self) -> "ParallelShardedSystem":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - interpreter teardown
        try:
            self.close()
        except Exception:
            pass

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        mode = "serial-fallback" if self._local is not None else f"{self.n_workers}w"
        return f"ParallelShardedSystem({self.name}, shards={self.n_shards}, {mode})"

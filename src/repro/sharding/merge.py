"""Stitch per-shard batch outcomes back into one :class:`BatchOutcome`.

Shards are modeled as *separate devices running concurrently*, so the
merged batch time is the straggler's time (``max`` over shard seconds) and
the merged phase breakdown is the straggler's phase breakdown — whereas
device *work* (instructions, transactions, conflicts) sums across shards,
exactly like multi-GPU accounting. Per-shard :class:`PipelineTrace`s are
both merged into one trace (pass records summed by name) and kept
individually in ``outcome.extras["shards"]`` next to each shard's QoS
summary, so the harness can show where the straggler spent its time.

Result stitching:

* a point request appears on exactly one shard — its value and response
  time scatter straight back to its original batch index;
* a split range query appears on every shard it overlaps — the per-shard
  pieces concatenate in shard order (ascending key order, since shards are
  contiguous key ranges), and its response time is the worst piece's (the
  request is only answered when its last shard finishes).
"""

from __future__ import annotations

import numpy as np

from ..baselines.base import BatchOutcome
from ..errors import SimulationError
from ..metrics.qos import ShardQoS, response_time_stats
from ..metrics.trace import merge_traces
from ..workloads.requests import BatchResults, RequestBatch
from .router import RoutedSubBatch


def merge_shard_outcomes(
    batch: RequestBatch,
    routed: list[RoutedSubBatch],
    outcomes: list[BatchOutcome | None],
    system: str,
) -> BatchOutcome:
    """Combine per-shard outcomes of one routed batch (None = empty shard)."""
    live = [(r, o) for r, o in zip(routed, outcomes) if o is not None]
    if not live:
        raise SimulationError("no shard produced an outcome (empty batch?)")
    if any(r.n != o.n_requests for r, o in live):
        raise SimulationError("shard outcome size disagrees with its sub-batch")

    results = BatchResults.empty(batch.n)
    response = np.zeros(batch.n, dtype=np.float64)
    ranges: dict[int, tuple[list[np.ndarray], list[np.ndarray]]] = {}
    for r, o in live:
        # point results scatter 1:1; a split range visits several shards, so
        # response time keeps the worst piece and pieces accumulate below
        results.values[r.origin] = o.results.values
        np.maximum.at(response, r.origin, o.response_time_s)
        for j, i in enumerate(r.origin):
            lo, hi = int(o.results.range_offsets[j]), int(o.results.range_offsets[j + 1])
            if hi > lo or _is_range(batch, int(i)):
                ks, vs = ranges.setdefault(int(i), ([], []))
                ks.append(o.results.range_keys[lo:hi])
                vs.append(o.results.range_values[lo:hi])
    results.set_range_results(
        {
            i: (np.concatenate(ks), np.concatenate(vs))
            for i, (ks, vs) in ranges.items()
        }
    )

    straggler = max((o for _, o in live), key=lambda o: o.seconds)
    merged_trace = merge_traces([o.trace for _, o in live])
    shard_qos = [
        ShardQoS(
            shard=r.shard,
            n_requests=o.n_requests,
            seconds=o.seconds,
            stats=response_time_stats(o.response_time_s),
        )
        for r, o in live
    ]
    out = BatchOutcome(
        system=system,
        results=results,
        n_requests=batch.n,
        seconds=straggler.seconds,
        phase=straggler.phase,
        response_time_s=response,
        mem_inst=sum(o.mem_inst for _, o in live),
        control_inst=sum(o.control_inst for _, o in live),
        alu_inst=sum(o.alu_inst for _, o in live),
        atomic_inst=sum(o.atomic_inst for _, o in live),
        transactions=sum(o.transactions for _, o in live),
        conflicts=sum(o.conflicts for _, o in live),
        traversal_steps=float(
            np.average(
                [o.traversal_steps for _, o in live],
                weights=[max(o.n_requests, 1) for _, o in live],
            )
        ),
        trace=merged_trace,
        extras={
            "shards": shard_qos,
            "shard_traces": {r.shard: o.trace for r, o in live if o.trace is not None},
            "straggler_shard": max(live, key=lambda ro: ro[1].seconds)[0].shard,
        },
    )
    return out


def _is_range(batch: RequestBatch, i: int) -> bool:
    from .._types import OpKind

    return batch.kinds[i] == OpKind.RANGE

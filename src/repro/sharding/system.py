"""A sharded serving layer over N single-device systems.

:class:`ShardedSystem` owns one fully independent system per shard — each
with its own :class:`~repro.device.DeviceContext` (arena, cost model, RNG
seed), tree, and synchronization machinery — plus the
:class:`~repro.sharding.router.ShardRouter` that splits every incoming
batch at the plan's fence keys. Processing a batch routes it, pushes each
non-empty sub-batch through that shard's ordinary pass pipeline (serially
or on a thread pool — shards share no mutable state, so threads are safe),
and merges the per-shard outcomes with
:func:`~repro.sharding.merge.merge_shard_outcomes`.

The merged ``seconds`` is the straggler shard's time: shards model
*separate GPUs running concurrently*, which is what the scaling benchmark
measures (modeled throughput vs shard count).
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor

import numpy as np

from ..baselines.base import BatchOutcome, System
from ..errors import ConfigError
from ..lincheck import SequentialReference
from ..workloads.requests import RequestBatch
from .merge import merge_shard_outcomes
from .router import RoutedSubBatch, ShardPlan, ShardRouter

EXECUTORS = ("serial", "thread")


class ShardedSystem:
    """N key-range shards of one system kind, batched behind one router."""

    def __init__(
        self,
        shards: list[System],
        plan: ShardPlan,
        executor: str = "serial",
    ) -> None:
        if len(shards) != plan.n_shards:
            raise ConfigError(
                f"{len(shards)} shard systems for a {plan.n_shards}-shard plan"
            )
        if executor not in EXECUTORS:
            raise ConfigError(f"unknown executor {executor!r}; use one of {EXECUTORS}")
        self.shards = list(shards)
        self.plan = plan
        self.router = ShardRouter(plan)
        self.executor = executor
        self.name = f"{shards[0].name}x{plan.n_shards}"

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    @classmethod
    def build(
        cls,
        system: str,
        keys: np.ndarray,
        values: np.ndarray,
        n_shards: int,
        executor: str = "serial",
        seed: int = 0,
        **make_kwargs,
    ) -> "ShardedSystem":
        """Partition a load set at quantile fences and build one system per
        shard (``make_kwargs`` go to :func:`repro.factory.make_system`;
        shard ``s`` gets device seed ``seed + s``)."""
        from ..factory import make_system

        plan = ShardPlan.from_pool(keys, n_shards)
        shards = [
            make_system(system, ks, vs, seed=seed + s, **make_kwargs)
            for s, (ks, vs) in enumerate(plan.partition_pool(keys, values))
        ]
        return cls(shards, plan, executor=executor)

    @property
    def n_shards(self) -> int:
        return self.plan.n_shards

    # ------------------------------------------------------------------ #
    # batch processing
    # ------------------------------------------------------------------ #
    def process_batch(self, batch: RequestBatch, engine: str = "vector") -> BatchOutcome:
        """Route, run every non-empty shard's pipeline, merge."""
        routed = self.router.route(batch)
        if self.executor == "thread" and self.n_shards > 1:
            with ThreadPoolExecutor(max_workers=self.n_shards) as pool:
                futures = [
                    pool.submit(self._run_shard, r, engine) if r.n else None
                    for r in routed
                ]
                outcomes = [f.result() if f is not None else None for f in futures]
        else:
            outcomes = [self._run_shard(r, engine) if r.n else None for r in routed]
        return merge_shard_outcomes(batch, routed, outcomes, self.name)

    def _run_shard(self, routed: RoutedSubBatch, engine: str) -> BatchOutcome:
        return self.shards[routed.shard].process_batch(routed.batch, engine=engine)

    # ------------------------------------------------------------------ #
    # whole-fleet inspection (tests / lincheck)
    # ------------------------------------------------------------------ #
    def items(self) -> tuple[np.ndarray, np.ndarray]:
        """All (key, value) pairs across shards, in global key order."""
        ks, vs = zip(*(s.tree.items() for s in self.shards))
        return np.concatenate(ks), np.concatenate(vs)

    def validate(self) -> None:
        """Every shard tree is valid and respects its fence bounds."""
        for s, sys_ in enumerate(self.shards):
            sys_.tree.validate()
            keys, _ = sys_.tree.items()
            if keys.size == 0:
                continue
            lo, hi = self.plan.bounds(s)
            if int(keys[0]) < lo or int(keys[-1]) > hi:
                raise ConfigError(
                    f"shard {s} holds keys outside its range "
                    f"[{lo}, {hi}]: [{keys[0]}, {keys[-1]}]"
                )

    def reference(self) -> SequentialReference:
        """Sequential reference seeded with the fleet's current contents."""
        keys, values = self.items()
        return SequentialReference(keys, values)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ShardedSystem({self.name}, shards={self.n_shards}, "
            f"executor={self.executor!r})"
        )

"""Key-range sharding: route one request batch across N device contexts.

The serving-layer extension of the single-GPU reproduction (ROADMAP
north-star): a :class:`ShardPlan` cuts the key space at fence keys, a
:class:`ShardRouter` splits each buffered batch (clipping cross-shard range
queries at the fences), and a :class:`ShardedSystem` runs every shard's
ordinary pass pipeline on its own :class:`~repro.device.DeviceContext`
before :func:`merge_shard_outcomes` stitches results, response times, and
per-shard traces back into one :class:`~repro.baselines.base.BatchOutcome`.
"""

from .merge import merge_shard_outcomes
from .parallel import ParallelShardedSystem
from .router import RoutedSubBatch, ShardPlan, ShardRouter
from .system import ShardedSystem

__all__ = [
    "ParallelShardedSystem",
    "RoutedSubBatch",
    "ShardPlan",
    "ShardRouter",
    "ShardedSystem",
    "merge_shard_outcomes",
]

"""§6 extension experiment — linearizability under real interleaving.

The paper proves Eirene linearizable and notes neither baseline guarantees
it. This bench runs all four systems on the SIMT engine with the
sequential-reference checker attached: Eirene must pass; at this contention
level the unsynchronized baselines resolve same-key races against
timestamp order (reported, not asserted per-system — whether a specific
baseline trips depends on scheduling).
"""

from conftest import emit

from repro.harness import linearizability_demo


def test_linearizability_demo(benchmark, base_config, results_dir):
    fig = benchmark.pedantic(
        lambda: linearizability_demo(base_config), rounds=1, iterations=1
    )
    emit(fig, results_dir)

    assert fig.value.__self__ is fig  # sanity: FigureResult API intact
    rows = {row[0]: row[1] for row in fig.rows}
    assert rows["Eirene"] == "yes"
    # at least one baseline demonstrably violates timestamp order
    assert any(v == "NO" for label, v in rows.items() if label != "Eirene")

"""Shard scaling — modeled throughput vs shard count (serving-layer extension).

Not a paper figure: the ROADMAP's sharding direction measured with the same
harness. Shards model independent devices behind a key-range router, so the
merged batch time is the straggler shard's and the uniform YCSB default mix
should scale near-linearly. Assertions: monotone speedup, and the
acceptance floor of >= 1.5x modeled throughput at 4 shards vs 1.
"""

from conftest import emit

from repro.harness import shard_scaling

COUNTS = (1, 2, 4, 8)


def test_shard_scaling(benchmark, base_config, results_dir):
    cfg = base_config.with_(n_batches=2)
    fig = benchmark.pedantic(
        lambda: shard_scaling(cfg, COUNTS), rounds=1, iterations=1
    )
    emit(fig, results_dir)

    speedups = [fig.value(f"{n} shard{'s' if n > 1 else ''}", "speedup") for n in COUNTS]
    assert speedups[0] == 1.0
    assert all(b > a for a, b in zip(speedups, speedups[1:]))
    at4 = speedups[COUNTS.index(4)]
    assert at4 >= 1.5, f"4-shard speedup {at4:.2f}x below the 1.5x floor"
    # per-shard trace output accompanies every row
    assert any("merged trace" in note for note in fig.notes)
    assert any("shard 0:" in note for note in fig.notes)

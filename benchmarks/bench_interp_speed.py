"""Interpreter speed — host wall-time of the SIMT slot loop, not a figure.

Times ``process_batch`` for YCSB-A/B/C across all four systems under three
execution modes (reference sequential interpreter, vectorized fast path,
fast path + :class:`~repro.sharding.ParallelShardedSystem` workers) and
writes ``benchmarks/results/BENCH_interp.json``. Every mode computes
bit-identical counters — this file measures only how fast the simulator
itself runs, so its numbers are machine-dependent and the golden-drift
gate never looks at them.

Assertions are the CI ``perf-smoke`` floor: the vectorized path must not be
slower than the sequential one by more than noise (>= 1.5x on the headline
Eirene YCSB-A row, >= 1.0x everywhere else).
"""

from repro.harness import ExperimentConfig, interp_speed

SYSTEM_ROWS = ("nocc", "stm", "lock", "eirene")


def test_interp_speed(benchmark, results_dir):
    cfg = ExperimentConfig(
        engine="simt", tree_size=2**12, batch_size=2**10, n_batches=2
    )
    fig = benchmark.pedantic(
        lambda: interp_speed(cfg, repeats=3), rounds=1, iterations=1
    )
    fig.figure = "BENCH_interp"
    text = fig.render()
    print("\n" + text)
    # written under the documented name (emit() would lowercase it)
    (results_dir / "BENCH_interp.txt").write_text(text + "\n")
    (results_dir / "BENCH_interp.json").write_text(fig.to_json(indent=2) + "\n")

    for system in SYSTEM_ROWS:
        for mix in ("YCSB-A", "YCSB-B", "YCSB-C"):
            speedup = fig.value(f"{system} {mix}", "speedup")
            # fast rows at this scale finish in ~0.1 s; allow scheduler noise
            # but never a real regression
            assert speedup >= 0.8, (
                f"{system} {mix}: vectorized path slower than sequential "
                f"({speedup:.2f}x)"
            )
    headline = fig.value("eirene YCSB-A", "speedup")
    assert headline >= 1.5, (
        f"eirene YCSB-A vectorized speedup {headline:.2f}x below the 1.5x floor"
    )

"""Ablation benches for the design knobs DESIGN.md §6 calls out.

Extension experiments beyond the paper's Fig. 11/12: retry threshold,
iteration-warp depth, the RF vertical/horizontal decision, the
query/update kernel partition, and key-skew sensitivity.
"""

from conftest import emit

from repro.harness.ablations import (
    ablate_iteration_depth,
    ablate_kernel_partition,
    ablate_retry_threshold,
    ablate_rf_decision,
    ablate_skew,
)


def test_ablation_retry_threshold(benchmark, results_dir):
    fig = benchmark.pedantic(ablate_retry_threshold, rounds=1, iterations=1)
    emit(fig, results_dir)
    # threshold 0 (always-protected traversal) must cost the most memory
    assert fig.value("threshold=0", "mem_per_req") >= fig.value(
        "threshold=3", "mem_per_req"
    )


def test_ablation_iteration_depth(benchmark, results_dir):
    fig = benchmark.pedantic(ablate_iteration_depth, rounds=1, iterations=1)
    emit(fig, results_dir)
    # deeper iteration warps never increase traversal steps (more reuse)
    assert fig.value("depth=8", "traversal_steps") <= fig.value(
        "depth=1", "traversal_steps"
    ) + 1e-9


def test_ablation_rf_decision(benchmark, results_dir):
    fig = benchmark.pedantic(ablate_rf_decision, rounds=1, iterations=1)
    emit(fig, results_dir)
    # on a sparse batch, blind horizontal walking traverses far more nodes
    assert fig.value("always horizontal", "traversal_steps") > fig.value(
        "RF decision on", "traversal_steps"
    )
    assert fig.value("RF decision on", "Mreq/s") >= fig.value(
        "always horizontal", "Mreq/s"
    )


def test_ablation_kernel_partition(benchmark, results_dir):
    fig = benchmark.pedantic(ablate_kernel_partition, rounds=1, iterations=1)
    emit(fig, results_dir)
    # merging the kernels puts STM reads (and reader aborts) on the query path
    assert fig.value("partitioned kernels", "Mreq/s") > fig.value(
        "unified kernel", "Mreq/s"
    )
    assert fig.value("unified kernel", "mem_per_req") > fig.value(
        "partitioned kernels", "mem_per_req"
    )


def test_ablation_skew(benchmark, results_dir):
    fig = benchmark.pedantic(ablate_skew, rounds=1, iterations=1)
    emit(fig, results_dir)
    # skew amplifies the baselines' conflicts; combining absorbs the hot keys
    assert fig.value("theta=0.99", "stm_conf") > fig.value("theta=0.0", "stm_conf")
    assert fig.value("theta=0.99", "combined_frac") > fig.value(
        "theta=0.0", "combined_frac"
    )
    assert fig.value("theta=0.99", "eirene_conf") < fig.value("theta=0.99", "stm_conf")

"""Fig. 2 — normalized time per request (motivation) + QoS variance.

Paper: Eirene's average response is a small fraction of both baselines'
(normalized bars), with response-time variance 5% against STM's 40% and
Lock's 36%. The simulator reproduces the response-time ordering strongly;
the across-run variance magnitude under-reproduces for the baselines (a
deterministic simulator lacks the hardware noise their conflicts amplify) —
see EXPERIMENTS.md.
"""

from conftest import emit

from repro.harness import fig02_normalized_time


def test_fig02_normalized_time(benchmark, base_config, results_dir):
    fig = benchmark.pedantic(
        lambda: fig02_normalized_time(base_config), rounds=1, iterations=1
    )
    emit(fig, results_dir)

    # Eirene responds fastest; both baselines are slower than Eirene
    assert fig.value("Eirene", "norm_avg") < fig.value("Lock GB-tree", "norm_avg")
    assert fig.value("Eirene", "norm_avg") < fig.value("STM GB-tree", "norm_avg")
    # Eirene's QoS variance stays in the paper's band (~5%)
    assert fig.value("Eirene", "variance_pct") < 15.0

"""Micro-benchmarks: one vector-engine batch through each system.

Times the reproduction's own wall-clock per batch (not the simulated device
time) — useful for sizing larger sweeps.
"""

import numpy as np
import pytest

from repro import DeviceConfig, TreeConfig, YcsbWorkload, build_key_pool, make_system

SYSTEMS = ["nocc", "stm", "lock", "eirene"]


@pytest.fixture(params=SYSTEMS)
def system_and_batches(request):
    rng = np.random.default_rng(3)
    keys, values = build_key_pool(2**13, rng)
    sys_ = make_system(
        request.param, keys, values,
        tree_config=TreeConfig(fanout=32, arena_headroom=4.0),
        device=DeviceConfig(num_sms=8),
    )
    wl = YcsbWorkload(pool=keys)
    batches = [wl.generate(2**12, rng) for _ in range(64)]
    return sys_, iter(batches)


def test_process_batch_vector(benchmark, system_and_batches):
    sys_, batches = system_and_batches

    def run():
        return sys_.process_batch(next(batches), engine="vector")

    out = benchmark.pedantic(run, rounds=8, iterations=1)
    assert out.n_requests == 2**12

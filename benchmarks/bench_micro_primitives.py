"""Micro-benchmarks of the substrate primitives (wall-clock, pytest-benchmark).

These time the *simulator's own* hot paths — radix sort, scans, the
combining pass, batch traversal — so regressions in the reproduction
infrastructure are visible independently of the simulated device model.
"""

import numpy as np
import pytest

from repro.core.combining import combine_point_requests
from repro.gpuprims import exclusive_scan, radix_argsort
from repro.btree import BPlusTree, batch_find_leaf
from repro.config import TreeConfig
from repro.workloads import YcsbWorkload, build_key_pool

N = 2**14


@pytest.fixture(scope="module")
def keys():
    rng = np.random.default_rng(0)
    return rng.integers(0, 2**31, size=N)


@pytest.fixture(scope="module")
def tree_and_batch():
    rng = np.random.default_rng(1)
    pool, values = build_key_pool(2**14, rng)
    tree = BPlusTree.build(pool, values, TreeConfig(fanout=32))
    batch = YcsbWorkload(pool=pool).generate(2**13, rng)
    return tree, batch


def test_radix_argsort(benchmark, keys):
    perm = benchmark(radix_argsort, keys)
    assert np.all(np.diff(keys[perm]) >= 0)


def test_exclusive_scan(benchmark, keys):
    out = benchmark(exclusive_scan, keys)
    assert out[0] == 0


def test_combining_pass(benchmark, tree_and_batch):
    _, batch = tree_and_batch
    plan = benchmark(combine_point_requests, batch)
    assert plan.n_runs >= 1


def test_batch_find_leaf(benchmark, tree_and_batch):
    tree, batch = tree_and_batch
    leaves, _ = benchmark(batch_find_leaf, tree, batch.keys)
    assert leaves.size == batch.n

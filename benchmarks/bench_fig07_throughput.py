"""Fig. 7 — overall throughput vs tree size (the headline result).

Paper (A100, 1M-request batches, trees 2^23..2^26): Eirene averages
2.4 Greq/s — 13.68× over STM GB-tree and 7.43× over Lock GB-tree — and
throughput decreases as the tree grows. The reproduction sweeps scaled
tree sizes (2^13..2^16) on the vector engine and asserts: Eirene wins by a
large factor over STM, beats Lock, and every system slows with tree size.
"""

import numpy as np
from conftest import emit

from repro.harness import fig07_throughput

SIZES = (13, 14, 15, 16)


def test_fig07_throughput(benchmark, base_config, results_dir):
    cfg = base_config.with_(n_batches=2)
    fig = benchmark.pedantic(
        lambda: fig07_throughput(cfg, SIZES), rounds=1, iterations=1
    )
    emit(fig, results_dir)

    cols = [f"2^{k}" for k in SIZES]
    eirene = np.array([fig.value("Eirene", c) for c in cols])
    stm = np.array([fig.value("STM GB-tree", c) for c in cols])
    lock = np.array([fig.value("Lock GB-tree", c) for c in cols])

    # who wins, by roughly what factor
    assert np.all(eirene > lock)
    assert np.all(eirene > stm)
    assert (eirene / stm).mean() > 3.0  # paper: 13.68x at full scale
    assert (eirene / lock).mean() > 1.5  # paper: 7.43x at full scale
    # throughput decreases with tree size (taller trees, more steps)
    assert eirene[-1] < eirene[0]
    assert stm[-1] < stm[0]

"""Fig. 8 — time per request: avg / min / max and QoS variance.

Paper: STM 5.5 ns, Lock 3.1 ns, Eirene 0.41 ns with [0.40, 0.42] whiskers
(5% variance). Absolute ns scale with the device/batch scaling; the
reproduction asserts the ordering and that Eirene's whiskers stay tight.
"""

from conftest import emit

from repro.harness import fig08_response_time


def test_fig08_response_time(benchmark, base_config, results_dir):
    fig = benchmark.pedantic(
        lambda: fig08_response_time(base_config), rounds=1, iterations=1
    )
    emit(fig, results_dir)

    assert (
        fig.value("Eirene", "avg_ns")
        < fig.value("Lock GB-tree", "avg_ns")
        < fig.value("STM GB-tree", "avg_ns")
    )
    # Eirene's min/max whiskers hug its average (paper: 0.40..0.42 vs 0.41)
    spread = fig.value("Eirene", "max_ns") - fig.value("Eirene", "min_ns")
    assert spread <= 0.35 * fig.value("Eirene", "avg_ns")

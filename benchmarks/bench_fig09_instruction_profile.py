"""Fig. 9 — Eirene's instruction profile normalized to the baselines.

Paper: Eirene's memory accesses are 3.9% of STM GB-tree's / 8.5% of Lock
GB-tree's; control instructions 2.0% / 1.8%; conflicts per request 4.8% of
STM GB-tree's. A pure-Python lockstep interpreter compresses the extremes
(it does not model predication blow-up), so the assertion band is wider:
Eirene must sit well below half of either baseline on both axes.
"""

from conftest import emit

from repro.harness import fig09_instruction_profile


def test_fig09_instruction_profile(benchmark, base_config, results_dir):
    fig = benchmark.pedantic(
        lambda: fig09_instruction_profile(base_config), rounds=1, iterations=1
    )
    emit(fig, results_dir)

    assert fig.value("Eirene", "mem_vs_stm") < 0.5
    assert fig.value("Eirene", "ctrl_vs_stm") < 0.5
    assert fig.value("Eirene", "mem_vs_lock") < 0.8
    assert fig.value("Eirene", "ctrl_vs_lock") < 0.8
    # conflicts: Eirene a small fraction of STM GB-tree (paper 4.8%)
    assert fig.value("conflicts vs STM", "mem_vs_stm") < 0.6

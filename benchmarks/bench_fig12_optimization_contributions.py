"""Fig. 12 — contribution of combining vs locality to the reductions.

Paper: combining eliminates ~57% of conflicts (all key conflicts) and the
overwhelming share of the instruction reduction (96.5% of memory accesses,
98.4% of control instructions); locality removes ~43% of the remaining
structure conflicts and a few percent more instructions. Assertions:
combining dominates the instruction reductions; locality's incremental
share is small but non-negative; together they remove most of the STM
baseline's work.
"""

from conftest import emit

from repro.harness import fig12_optimization_contributions


def test_fig12_optimization_contributions(benchmark, base_config, results_dir):
    fig = benchmark.pedantic(
        lambda: fig12_optimization_contributions(base_config), rounds=1, iterations=1
    )
    emit(fig, results_dir)

    comb_mem = fig.value("combining", "memory_inst")
    comb_ctrl = fig.value("combining", "control_inst")
    loc_mem = fig.value("locality", "memory_inst")
    loc_ctrl = fig.value("locality", "control_inst")

    # combining supplies the bulk of the instruction reduction
    assert comb_mem > 50.0
    assert comb_ctrl > 50.0
    assert comb_mem > loc_mem
    assert comb_ctrl > loc_ctrl
    # locality contributes a small additional share (paper: 3.5% / 1.6%)
    assert 0.0 <= loc_mem < 25.0
    assert 0.0 <= loc_ctrl < 25.0
    # combining removes a substantial share of conflicts (paper: ~57%)
    assert fig.value("combining", "conflicts") > 20.0

"""Fig. 1 — motivation: memory / control-flow instructions per request.

Paper: STM GB-tree pays 2.98× memory and 4.49× control instructions over
the unsynchronized GB-tree; Lock GB-tree pays 1.12× and 2.85×. The
reproduction measures the same counters on the SIMT engine and asserts the
ordering: STM ≫ Lock > no-CC on both axes.
"""

from conftest import emit

from repro.harness import fig01_profiling


def test_fig01_profiling(benchmark, base_config, results_dir):
    fig = benchmark.pedantic(
        lambda: fig01_profiling(base_config), rounds=1, iterations=1
    )
    emit(fig, results_dir)

    stm_mem = fig.value("STM GB-tree", "mem_ratio")
    lock_mem = fig.value("Lock GB-tree", "mem_ratio")
    stm_ctrl = fig.value("STM GB-tree", "ctrl_ratio")
    lock_ctrl = fig.value("Lock GB-tree", "ctrl_ratio")

    # shape: STM pays the most on both axes; everything exceeds the no-CC bar
    assert stm_mem > lock_mem > 1.0
    assert stm_ctrl > lock_ctrl > 1.0
    # magnitude band: STM memory overhead in the paper is ~3x
    assert 2.0 < stm_mem < 6.0

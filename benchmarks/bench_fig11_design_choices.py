"""Fig. 11 — design-choice ablation: STM baseline vs +Combining vs Eirene.

Paper: combining-based concurrent control alone gives 6.26× over STM
GB-tree; enabling locality-aware warp reorganization on top reaches 13.68×.
The assertions check the staircase: STM < +Combining < Eirene at every
tree size, with combining contributing the bulk of the win.
"""

import numpy as np
from conftest import emit

from repro.harness import fig11_design_choices

SIZES = (13, 14, 15, 16)


def test_fig11_design_choices(benchmark, base_config, results_dir):
    cfg = base_config.with_(n_batches=2)
    fig = benchmark.pedantic(
        lambda: fig11_design_choices(cfg, SIZES), rounds=1, iterations=1
    )
    emit(fig, results_dir)

    cols = [f"2^{k}" for k in SIZES]
    stm = np.array([fig.value("STM GB-tree", c) for c in cols])
    comb = np.array([fig.value("+ Combining", c) for c in cols])
    full = np.array([fig.value("Eirene", c) for c in cols])

    assert np.all(comb > stm)
    assert np.all(full >= comb * 0.98)  # locality never hurts materially
    assert (comb / stm).mean() > 2.5  # paper: 6.26x
    assert (full / stm).mean() >= (comb / stm).mean()

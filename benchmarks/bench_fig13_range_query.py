"""Fig. 13 — pure range-query throughput, lengths 4 and 8.

Paper: Eirene reaches 1181 Mreq/s (length 4) and 1034 Mreq/s (length 8)
against Lock GB-tree's 235 / 175 — a 5.94× overall speedup — and longer
ranges are slower for every system. Assertions: Eirene wins at both
lengths and every size; length 8 ≤ length 4 per system.
"""

import numpy as np
from conftest import emit

from repro.harness import fig13_range_query

SIZES = (13, 14, 15, 16)


def test_fig13_range_query(benchmark, base_config, results_dir):
    cfg = base_config.with_(n_batches=2)
    fig = benchmark.pedantic(
        lambda: fig13_range_query(cfg, SIZES), rounds=1, iterations=1
    )
    emit(fig, results_dir)

    cols4 = [f"len4@2^{k}" for k in SIZES]
    cols8 = [f"len8@2^{k}" for k in SIZES]
    for cols in (cols4, cols8):
        eirene = np.array([fig.value("Eirene", c) for c in cols])
        lock = np.array([fig.value("Lock GB-tree", c) for c in cols])
        stm = np.array([fig.value("STM GB-tree", c) for c in cols])
        assert np.all(eirene > lock)
        assert np.all(eirene > stm)
    # longer ranges cost more
    e4 = np.array([fig.value("Eirene", c) for c in cols4])
    e8 = np.array([fig.value("Eirene", c) for c in cols8])
    assert e8.mean() <= e4.mean() * 1.05
    # overall factor vs Lock (paper: 5.94x at A100 scale)
    lock4 = np.array([fig.value("Lock GB-tree", c) for c in cols4])
    assert (e4 / lock4).mean() > 1.5

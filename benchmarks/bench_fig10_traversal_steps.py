"""Fig. 10 — average traversal steps, normalized to STM GB-tree.

Paper: STM and Lock coincide at the tree height; Eirene traverses ~67%
fewer nodes at 2^23 thanks to horizontal traversal, with the gap narrowing
as the tree grows (horizontal steps 1.5 @2^23 → 3.4 @2^26). The scaled
trees here are shallower, so the absolute reduction is smaller; the
assertions target the shape: baselines at 1.0, Eirene below, trend
non-decreasing with tree size.
"""

import numpy as np
from conftest import emit

from repro.harness import fig10_traversal_steps

SIZES = (13, 14, 15, 16)


def test_fig10_traversal_steps(benchmark, base_config, results_dir):
    fig = benchmark.pedantic(
        lambda: fig10_traversal_steps(base_config, SIZES), rounds=1, iterations=1
    )
    emit(fig, results_dir)

    cols = [f"2^{k}" for k in SIZES]
    stm = np.array([fig.value("STM GB-tree", c) for c in cols])
    lock = np.array([fig.value("Lock GB-tree", c) for c in cols])
    eirene = np.array([fig.value("Eirene", c) for c in cols])

    # baselines coincide (height-bound), Eirene strictly below
    assert np.allclose(stm, 1.0)
    assert np.allclose(lock, 1.0, atol=0.05)
    assert np.all(eirene < 1.0)
    # Eirene's relative steps grow (locality pays less on larger trees)
    assert eirene[-1] >= eirene[0] - 0.05

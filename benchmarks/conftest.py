"""Shared benchmark infrastructure.

Every ``bench_figXX`` module reproduces one figure of the paper's §8: it
runs the corresponding harness function once under ``benchmark.pedantic``
(so ``pytest benchmarks/ --benchmark-only`` collects it), prints the
paper-vs-measured table, saves it under ``benchmarks/results/`` (both the
rendered ``.txt`` table and a machine-readable ``.json`` twin), and
asserts the figure's qualitative shape.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.harness import ExperimentConfig, FigureResult

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def base_config() -> ExperimentConfig:
    """Scaled default experiment (see DESIGN.md scaling table)."""
    return ExperimentConfig(
        tree_size=2**14,
        batch_size=2**13,
        n_batches=2,
        fanout=32,
        num_sms=8,
    )


def emit(fig: FigureResult, results_dir: pathlib.Path) -> None:
    text = fig.render()
    print("\n" + text)
    name = fig.figure.lower().replace(".", "").replace(" ", "").replace("§", "sec")
    (results_dir / f"{name}.txt").write_text(text + "\n")
    (results_dir / f"{name}.json").write_text(fig.to_json(indent=2) + "\n")

#!/usr/bin/env python
"""Key-value store scenario: compare all four systems on YCSB mixes.

The paper's motivating workload (§1) is a GPU-accelerated key-value store
absorbing bursts of concurrent requests. This example streams several YCSB
core workloads (A: update-heavy, B: read-mostly, C: read-only, plus the
paper's default) through Eirene and the baselines and prints a comparison
table per mix.

Run:  python examples/kvstore_comparison.py
"""

import numpy as np

from repro import (
    DeviceConfig,
    TreeConfig,
    YcsbWorkload,
    build_key_pool,
    make_system,
    merge_outcomes,
)
from repro.workloads import PAPER_DEFAULT, YCSB_A, YCSB_B, YCSB_C

SYSTEMS = ("nocc", "stm", "lock", "eirene")
MIXES = {
    "paper default (95/5)": PAPER_DEFAULT,
    "YCSB-A (50/50)": YCSB_A,
    "YCSB-B (95/5)": YCSB_B,
    "YCSB-C (read-only)": YCSB_C,
}
TREE_SIZE = 2**14
BATCH = 2**13
N_BATCHES = 3


def run_mix(mix, label: str) -> None:
    print(f"\n=== {label} ===")
    print(f"{'system':<32}{'Mreq/s':>10}{'mem/req':>10}{'ctrl/req':>10}{'conf/req':>10}")
    for name in SYSTEMS:
        rng = np.random.default_rng(99)  # same workload for every system
        keys, values = build_key_pool(TREE_SIZE, rng)
        sys_ = make_system(
            name, keys, values,
            tree_config=TreeConfig(fanout=32),
            device=DeviceConfig(num_sms=8),
        )
        wl = YcsbWorkload(pool=keys, mix=mix)
        outcomes = [
            sys_.process_batch(wl.generate(BATCH, rng)) for _ in range(N_BATCHES)
        ]
        merged = merge_outcomes(outcomes)
        print(
            f"{sys_.name:<32}"
            f"{merged.throughput.mops:>10.1f}"
            f"{merged.mem_inst_per_request:>10.1f}"
            f"{merged.control_inst_per_request:>10.1f}"
            f"{merged.conflicts_per_request:>10.4f}"
        )


def main() -> None:
    for label, mix in MIXES.items():
        run_mix(mix, label)
    print(
        "\nExpected shape (paper §8.2): Eirene leads every mix; STM GB-tree "
        "pays the most instructions; gaps widen as the update share grows."
    )


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Quickstart: build an Eirene tree, process one YCSB batch, read metrics.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    DeviceConfig,
    TreeConfig,
    YcsbWorkload,
    build_key_pool,
    check_linearizable,
    make_system,
)
from repro.lincheck import SequentialReference


def main() -> None:
    rng = np.random.default_rng(2023)

    # 1. load a key-value tree (the paper pre-builds trees of 2^23..2^26
    #    records; we scale to 2^14 — see DESIGN.md for the scaling rules)
    keys, values = build_key_pool(tree_size=2**14, rng=rng)
    eirene = make_system(
        "eirene", keys, values,
        tree_config=TreeConfig(fanout=32),
        device=DeviceConfig(num_sms=8),
    )
    print(f"tree: {len(eirene.tree)} records, height {eirene.tree.height}, "
          f"{eirene.tree.node_count} nodes")

    # 2. buffer a batch of concurrent requests (95% query / 5% update —
    #    the paper's default mix) and process it
    workload = YcsbWorkload(pool=keys)
    reference = SequentialReference(keys, values)
    batch = workload.generate(batch_size=2**13, rng=rng)
    outcome = eirene.process_batch(batch)  # vector engine by default

    # 3. inspect what the paper's evaluation reports
    print(f"throughput:        {outcome.throughput.describe()}")
    print(f"response time:     {outcome.response_stats().describe()}")
    print(f"memory inst/req:   {outcome.mem_inst_per_request:.1f}")
    print(f"control inst/req:  {outcome.control_inst_per_request:.1f}")
    print(f"conflicts/req:     {outcome.conflicts_per_request:.4f}")
    print(f"traversal steps:   {outcome.traversal_steps:.2f} "
          f"(tree height {eirene.tree.height})")
    print(f"combined requests: {outcome.extras['n_combined']} "
          f"of {batch.n} (key conflicts eliminated)")

    # 4. linearizability: results must equal sequential timestamp-order
    #    execution — Eirene guarantees this (§6 of the paper)
    expected = reference.execute(batch)
    report = check_linearizable(batch, outcome.results, expected)
    print(f"linearizable:      {report.ok}")

    # 5. phase breakdown of the combining pipeline (Algorithm 1)
    p = outcome.phase
    for name in ("sort", "combine", "query_kernel", "update_kernel", "result_cal"):
        t = getattr(p, name)
        print(f"  {name:<14} {t * 1e6:8.2f} us  ({100 * t / p.total:5.1f}%)")


if __name__ == "__main__":
    main()

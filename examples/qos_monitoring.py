#!/usr/bin/env python
"""QoS scenario: response-time stability under a skew shift.

A latency-sensitive service cares about the *variance* of response time,
not just the mean (§8.2). This example drives Eirene and the baselines on
the SIMT engine (measured per-request service), first with uniform keys,
then with a hot-key (zipfian) phase — the regime where same-key conflicts
explode for the baselines while combining simply merges the hot keys away.

Run:  python examples/qos_monitoring.py
"""

import numpy as np

from repro import (
    DeviceConfig,
    TreeConfig,
    YcsbWorkload,
    build_key_pool,
    make_system,
)
from repro.workloads import YcsbMix

TREE_SIZE = 2**12
BATCH = 2**11
N_BATCHES = 4
MIX = YcsbMix(query=0.8, update=0.2)  # heavier updates stress conflicts


def run_phase(distribution: str) -> None:
    print(f"\n=== {distribution} keys, 80/20 query/update, SIMT engine ===")
    print(f"{'system':<32}{'avg ns':>10}{'QoS var %':>11}{'conf/req':>10}")
    for name in ("stm", "lock", "eirene"):
        rng = np.random.default_rng(17)
        keys, values = build_key_pool(TREE_SIZE, rng)
        sys_ = make_system(
            name, keys, values,
            tree_config=TreeConfig(fanout=32, arena_headroom=4.0),
            device=DeviceConfig(num_sms=8),
        )
        wl = YcsbWorkload(pool=keys, mix=MIX, distribution=distribution)
        batch_avgs = []
        conflicts = 0.0
        requests = 0
        for _ in range(N_BATCHES):
            batch = wl.generate(BATCH, rng)
            out = sys_.process_batch(batch, engine="simt")
            batch_avgs.append(out.seconds / batch.n)
            conflicts += out.conflicts
            requests += batch.n
        a = np.asarray(batch_avgs)
        var = max((a.max() - a.mean()) / a.mean(), (a.mean() - a.min()) / a.mean())
        print(
            f"{sys_.name:<32}"
            f"{a.mean() * 1e9:>10.2f}"
            f"{var * 100:>11.2f}"
            f"{conflicts / requests:>10.4f}"
        )


def main() -> None:
    run_phase("uniform")
    run_phase("zipfian")
    print(
        "\nExpected shape: under skew the baselines' conflicts/request jump "
        "by an order of magnitude while Eirene's stay near zero — combining "
        "eliminated the same-key collisions that cause retry-driven latency "
        "jitter (paper §4.1, §8.2)."
    )


if __name__ == "__main__":
    main()

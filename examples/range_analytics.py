#!/usr/bin/env python
"""Range-query analytics scenario (§4.1.2, Fig. 13).

An analytics layer issues range scans concurrently with point updates.
Naively combining point requests would hand ranges stale values (Fig. 4);
Eirene's artificial-query mechanism patches each range with the state at
its own timestamp. This example demonstrates the mechanism explicitly and
then measures pure range-scan throughput at lengths 4 and 8.

Run:  python examples/range_analytics.py
"""

import numpy as np

from repro import (
    DeviceConfig,
    OpKind,
    TreeConfig,
    YcsbWorkload,
    build_key_pool,
    check_linearizable,
    make_system,
)
from repro.lincheck import SequentialReference
from repro.workloads import RANGE_4, RANGE_8, RequestBatch


def demonstrate_artificial_queries() -> None:
    """The paper's Fig. 5 scenario on a real tree."""
    print("=== artificial queries keep ranges linearizable (Fig. 4/5) ===")
    keys = np.arange(1, 10, dtype=np.int64)
    values = keys * 10
    eirene = make_system("eirene", keys, values, tree_config=TreeConfig(fanout=4))
    ref = SequentialReference(keys, values)

    batch = RequestBatch.from_ops(
        [
            (OpKind.UPDATE, 4, 401),  # T0: U(4,b)
            (OpKind.RANGE, 3, 6),     # T1: R(3,6) — must see 401, not 402
            (OpKind.QUERY, 3),        # T2
            (OpKind.UPDATE, 4, 402),  # T3: U(4,e) — combined over T0
            (OpKind.DELETE, 5),       # T4 — after the range: must NOT affect it
            (OpKind.UPDATE, 6, 601),  # T5
        ]
    )
    out = eirene.process_batch(batch)
    rk, rv = out.results.range_result(1)
    print(f"range(3,6) at T1 sees: {dict(zip(rk.tolist(), rv.tolist()))}")
    assert dict(zip(rk.tolist(), rv.tolist())) == {3: 30, 4: 401, 5: 50, 6: 60}
    report = check_linearizable(batch, out.results, ref.execute(batch))
    print(f"linearizable: {report.ok}\n")


def range_throughput() -> None:
    print("=== pure range-query throughput (Fig. 13 shape) ===")
    print(f"{'system':<32}{'len4 Mreq/s':>13}{'len8 Mreq/s':>13}")
    for name in ("stm", "lock", "eirene"):
        row = [name]
        mops = []
        for mix in (RANGE_4, RANGE_8):
            rng = np.random.default_rng(5)
            keys, values = build_key_pool(2**14, rng)
            sys_ = make_system(
                name, keys, values,
                tree_config=TreeConfig(fanout=32),
                device=DeviceConfig(num_sms=8),
            )
            wl = YcsbWorkload(pool=keys, mix=mix)
            out = sys_.process_batch(wl.generate(2**12, rng))
            mops.append(out.throughput.mops)
            row = sys_.name
        print(f"{row:<32}{mops[0]:>13.1f}{mops[1]:>13.1f}")
    print(
        "\nExpected shape: Eirene leads at both lengths (paper: 5.94x vs "
        "Lock GB-tree overall); length 8 is slower than length 4 everywhere."
    )


def main() -> None:
    demonstrate_artificial_queries()
    range_throughput()


if __name__ == "__main__":
    main()
